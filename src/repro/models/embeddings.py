"""BERT input embeddings: word + position + token-type, then LayerNorm."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.models.config import BertConfig
from repro.nn.layers import Dropout, Embedding, LayerNorm
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import derive_rng


class BertEmbeddings(Module):
    """Sum of word, position and segment embeddings, normalized.

    ``config.embedding_noise_std`` adds Gaussian noise to the summed
    embeddings in training mode only.  Massively pretrained models are
    naturally robust to small embedding perturbations; the tiny from-scratch
    evaluation models acquire the same robustness through this noise, so
    their response to embedding-table quantization mirrors the paper's
    (Figure 4) instead of reflecting brittle task-specific codes.
    """

    def __init__(self, config: BertConfig, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        self.config = config
        self._noise_rng = derive_rng(rng, "noise")
        self.word_embeddings = Embedding(
            config.vocab_size,
            config.hidden_size,
            rng=derive_rng(rng, "word"),
            init_std=config.initializer_std,
        )
        self.position_embeddings = Embedding(
            config.max_position,
            config.hidden_size,
            rng=derive_rng(rng, "position"),
            init_std=config.initializer_std,
        )
        self.token_type_embeddings = Embedding(
            config.type_vocab_size,
            config.hidden_size,
            rng=derive_rng(rng, "token_type"),
            init_std=config.initializer_std,
        )
        self.norm = LayerNorm(config.hidden_size)
        self.dropout = Dropout(config.dropout_rate, rng=derive_rng(rng, "dropout"))

    def forward(
        self,
        input_ids: np.ndarray,
        token_type_ids: np.ndarray | None = None,
    ) -> Tensor:
        input_ids = np.asarray(input_ids)
        if input_ids.ndim != 2:
            raise ShapeError(f"input_ids must be (batch, seq), got {input_ids.shape}")
        batch, seq = input_ids.shape
        if seq > self.config.max_position:
            raise ShapeError(
                f"sequence length {seq} exceeds max_position {self.config.max_position}"
            )
        if token_type_ids is None:
            token_type_ids = np.zeros_like(input_ids)
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        embedded = (
            self.word_embeddings(input_ids)
            + self.position_embeddings(positions)
            + self.token_type_embeddings(np.asarray(token_type_ids))
        )
        if self.training and self.config.embedding_noise_std > 0.0:
            noise = self._noise_rng.normal(
                0.0, self.config.embedding_noise_std, size=embedded.shape
            )
            embedded = embedded + Tensor(noise)
        return self.dropout(self.norm(embedded))
