"""Wire a :class:`~repro.core.model_quantizer.QuantizedModel` into a live
network so inference runs on the compressed representation.

:func:`attach_quantized_linears` swaps every quantized FC ``Linear`` for a
:class:`~repro.nn.QuantizedLinear` routed through the lookup kernels of
:mod:`repro.kernels`.  After the swap, a forward pass never calls
``dequantize()`` — asserted in the tests via the
``quantizer.dequantize_calls`` obs counter — while everything GOBO leaves
FP32 (biases, LayerNorm, embeddings, heads) is loaded as usual.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import QuantizationError
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.qlinear import QuantizedLinear

if TYPE_CHECKING:  # imported lazily to break the models <-> core cycle
    from repro.core.model_quantizer import QuantizedModel


def _resolve(model: Module, dotted: str) -> tuple[Module, str]:
    """Walk ``dotted`` (e.g. ``encoder.0.attention.query``) to its parent
    module and final attribute name."""
    parts = dotted.split(".")
    module = model
    for part in parts[:-1]:
        child = module._modules.get(part)
        if child is None:
            raise QuantizationError(f"model has no submodule {part!r} on path {dotted!r}")
        module = child
    return module, parts[-1]


def attach_quantized_linears(model: Module, qmodel: QuantizedModel) -> Module:
    """Load ``qmodel`` into ``model`` and swap its quantized FC layers for
    :class:`~repro.nn.QuantizedLinear` modules.

    Two phases:

    1. ``qmodel.apply_to(model)`` loads the full reconstructed state dict —
       the one-time setup decode (embeddings, biases, and any layer that
       fell back to FP32).  This is the only point that dequantizes.
    2. Every FC weight present in ``qmodel.quantized`` has its ``Linear``
       replaced by a ``QuantizedLinear`` wrapping the compressed tensor, so
       subsequent forwards compute via lookup kernels with no FP32 weight
       matrix resident.

    Returns ``model`` in eval mode (``QuantizedLinear`` is inference-only).
    """
    qmodel.apply_to(model)
    for name in qmodel.fc_names:
        tensor = qmodel.quantized.get(name)
        if tensor is None:  # fp32-fallback or dropped layer: leave the Linear.
            continue
        if not name.endswith(".weight"):
            raise QuantizationError(f"FC parameter {name!r} is not a .weight tensor")
        parent, attr = _resolve(model, name[: -len(".weight")])
        linear = parent._modules.get(attr)
        if not isinstance(linear, Linear):
            raise QuantizationError(
                f"expected a Linear at {name[: -len('.weight')]!r}, got "
                f"{type(linear).__name__}"
            )
        setattr(parent, attr, QuantizedLinear.from_linear(linear, tensor))
    return model.eval()
