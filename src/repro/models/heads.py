"""Task heads: sequence classification (MNLI), regression (STS-B), span QA
(SQuAD)."""

from __future__ import annotations

import numpy as np

from repro.models.bert import BertModel
from repro.models.config import BertConfig
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import derive_rng


class BertForSequenceClassification(Module):
    """BERT + linear classifier over the pooled output (GLUE classification)."""

    def __init__(
        self,
        config: BertConfig,
        num_labels: int,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.num_labels = num_labels
        self.bert = BertModel(config, rng=derive_rng(rng, "bert"))
        self.dropout = Dropout(config.dropout_rate, rng=derive_rng(rng, "dropout"))
        self.classifier = Linear(config.hidden_size, num_labels, rng=derive_rng(rng, "cls"))

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: np.ndarray | None = None,
        token_type_ids: np.ndarray | None = None,
    ) -> Tensor:
        _, pooled = self.bert(input_ids, attention_mask, token_type_ids)
        return self.classifier(self.dropout(pooled))

    def predict(self, input_ids, attention_mask=None, token_type_ids=None) -> np.ndarray:
        """Argmax class predictions (inference mode)."""
        logits = self(input_ids, attention_mask, token_type_ids)
        return np.argmax(logits.data, axis=-1)


class BertForRegression(Module):
    """BERT + scalar regression head over the pooled output (STS-B)."""

    def __init__(self, config: BertConfig, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        self.config = config
        self.bert = BertModel(config, rng=derive_rng(rng, "bert"))
        self.dropout = Dropout(config.dropout_rate, rng=derive_rng(rng, "dropout"))
        self.regressor = Linear(config.hidden_size, 1, rng=derive_rng(rng, "reg"))

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: np.ndarray | None = None,
        token_type_ids: np.ndarray | None = None,
    ) -> Tensor:
        _, pooled = self.bert(input_ids, attention_mask, token_type_ids)
        return self.regressor(self.dropout(pooled)).reshape(-1)

    def predict(self, input_ids, attention_mask=None, token_type_ids=None) -> np.ndarray:
        """Predicted similarity scores."""
        return self(input_ids, attention_mask, token_type_ids).data.copy()


class BertForSpanPrediction(Module):
    """BERT + start/end span logits over the sequence output (SQuAD)."""

    def __init__(self, config: BertConfig, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        self.config = config
        self.bert = BertModel(config, rng=derive_rng(rng, "bert"))
        self.span_head = Linear(config.hidden_size, 2, rng=derive_rng(rng, "span"))

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: np.ndarray | None = None,
        token_type_ids: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        sequence, _ = self.bert(input_ids, attention_mask, token_type_ids)
        logits = self.span_head(sequence)
        return logits[:, :, 0], logits[:, :, 1]

    def predict(self, input_ids, attention_mask=None, token_type_ids=None) -> np.ndarray:
        """Predicted (start, end) index pairs, shape (batch, 2)."""
        start_logits, end_logits = self(input_ids, attention_mask, token_type_ids)
        starts = np.argmax(start_logits.data, axis=-1)
        ends = np.argmax(end_logits.data, axis=-1)
        # A span must not end before it starts; fall back to the start token.
        ends = np.maximum(starts, ends)
        return np.stack([starts, ends], axis=1)
