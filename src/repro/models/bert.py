"""The BERT encoder model: embeddings, encoder stack, pooler.

The parameter naming follows the HuggingFace layout that GOBO's per-layer
quantization keys on, e.g. ``encoder.2.attention.value.weight`` or
``embeddings.word_embeddings.weight``.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import BertConfig
from repro.models.embeddings import BertEmbeddings
from repro.nn.layers import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor
from repro.nn.transformer import BertEncoderLayer
from repro.utils.rng import derive_rng


class BertModel(Module):
    """Encoder-only transformer with a tanh pooler over the [CLS] position."""

    def __init__(self, config: BertConfig, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        self.config = config
        self.embeddings = BertEmbeddings(config, rng=derive_rng(rng, "embeddings"))
        self.encoder = ModuleList(
            [
                BertEncoderLayer(
                    config.hidden_size,
                    config.intermediate_size,
                    config.num_heads,
                    config.dropout_rate,
                    rng=derive_rng(rng, "layer", index),
                    init_std=config.initializer_std,
                )
                for index in range(config.num_layers)
            ]
        )
        self.pooler = Linear(
            config.hidden_size,
            config.hidden_size,
            rng=derive_rng(rng, "pooler"),
            init_std=config.initializer_std,
        )

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: np.ndarray | None = None,
        token_type_ids: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Encode token ids.

        Returns
        -------
        (sequence_output, pooled_output):
            ``(batch, seq, hidden)`` final hidden states, and the pooled
            ``(batch, hidden)`` representation of the first ([CLS]) token.
        """
        hidden = self.embeddings(input_ids, token_type_ids)
        for layer in self.encoder:
            hidden = layer(hidden, attention_mask)
        pooled = self.pooler(hidden[:, 0, :]).tanh()
        return hidden, pooled

    # ----------------------------------------------------------- introspection
    def fc_parameter_names(self) -> list[str]:
        """Dotted names of all FC weight matrices (the tensors GOBO quantizes).

        Matches the paper's census: 6 per encoder layer plus the pooler.
        Biases, LayerNorm parameters and embeddings are excluded.
        """
        names = []
        for index in range(self.config.num_layers):
            prefix = f"encoder.{index}"
            names.extend(
                [
                    f"{prefix}.attention.query.weight",
                    f"{prefix}.attention.key.weight",
                    f"{prefix}.attention.value.weight",
                    f"{prefix}.attention.output.weight",
                    f"{prefix}.intermediate.weight",
                    f"{prefix}.output.weight",
                ]
            )
        names.append("pooler.weight")
        return names

    def embedding_parameter_names(self) -> list[str]:
        """Dotted names of the embedding tables (quantized in Table VII)."""
        return [
            "embeddings.word_embeddings.weight",
            "embeddings.position_embeddings.weight",
            "embeddings.token_type_embeddings.weight",
        ]
