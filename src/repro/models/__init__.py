"""BERT-family models: configs, encoder, task heads, footprint, synthetic zoo."""

from repro.models.bert import BertModel
from repro.models.config import (
    BERT_BASE,
    BERT_LARGE,
    DISTILBERT,
    ROBERTA_BASE,
    ROBERTA_LARGE,
    TINY_BERT_BASE,
    TINY_BERT_LARGE,
    TINY_COUNTERPART,
    TINY_DISTILBERT,
    TINY_ROBERTA,
    TINY_ROBERTA_LARGE,
    BertConfig,
    available_configs,
    get_config,
)
from repro.models.footprint import (
    MemoryFootprint,
    architecture_table,
    embedding_table_count,
    fc_weight_count,
    memory_footprint,
    total_parameter_count,
)
from repro.models.heads import (
    BertForRegression,
    BertForSequenceClassification,
    BertForSpanPrediction,
)
from repro.models.quantized import attach_quantized_linears
from repro.models.zoo import (
    SyntheticWeightSpec,
    build_model,
    embedding_shapes,
    fc_layer_shapes,
    layer_spec_for,
    synthetic_layer_for,
    synthetic_layer_weights,
    synthetic_model_weights,
)

__all__ = [
    "BERT_BASE",
    "BERT_LARGE",
    "BertConfig",
    "BertForRegression",
    "BertForSequenceClassification",
    "BertForSpanPrediction",
    "BertModel",
    "DISTILBERT",
    "MemoryFootprint",
    "ROBERTA_BASE",
    "ROBERTA_LARGE",
    "SyntheticWeightSpec",
    "TINY_BERT_BASE",
    "TINY_BERT_LARGE",
    "TINY_COUNTERPART",
    "TINY_DISTILBERT",
    "TINY_ROBERTA",
    "TINY_ROBERTA_LARGE",
    "architecture_table",
    "attach_quantized_linears",
    "available_configs",
    "build_model",
    "embedding_shapes",
    "embedding_table_count",
    "fc_layer_shapes",
    "fc_weight_count",
    "get_config",
    "memory_footprint",
    "layer_spec_for",
    "synthetic_layer_for",
    "synthetic_layer_weights",
    "synthetic_model_weights",
    "total_parameter_count",
]
