"""Model zoo: builders plus synthetic full-scale weight generation.

Two kinds of model stand in for the paper's pre-trained checkpoints:

* **Tiny trained models** (``build_model`` on a ``tiny-*`` config, then
  fine-tuned with :mod:`repro.training`) drive every accuracy experiment.
* **Synthetic full-scale weight sets** reproduce the *distributional* facts
  of trained transformer layers that GOBO exploits — a Gaussian bulk with a
  tiny heavy-tail fringe (Figure 1b/1c) — at the exact dimensions of
  BERT-Base/-Large etc., and drive the footprint / outlier-census /
  convergence experiments.  They are generated lazily layer by layer so a
  full BERT-Large never has to be resident at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.models.bert import BertModel
from repro.models.config import BertConfig, get_config
from repro.models.heads import (
    BertForRegression,
    BertForSequenceClassification,
    BertForSpanPrediction,
)
from repro.utils.rng import derive_rng, ensure_rng


def build_model(
    config: BertConfig | str,
    task: str = "encoder",
    num_labels: int = 3,
    rng: int | np.random.Generator | None = 0,
):
    """Instantiate a model for ``task``: encoder, classification, regression, span."""
    if isinstance(config, str):
        config = get_config(config)
    if task == "encoder":
        return BertModel(config, rng=rng)
    if task == "classification":
        return BertForSequenceClassification(config, num_labels=num_labels, rng=rng)
    if task == "regression":
        return BertForRegression(config, rng=rng)
    if task == "span":
        return BertForSpanPrediction(config, rng=rng)
    raise ValueError(f"unknown task {task!r}")


# --------------------------------------------------------------------------
# Synthetic full-scale weights
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SyntheticWeightSpec:
    """Distributional profile of one synthetic layer.

    ``outlier_fraction`` of the weights are drawn from a wide uniform fringe
    (``outlier_lo``..``outlier_hi`` sigmas in magnitude, random sign), the
    rest from ``N(mean, std^2)`` — matching the paper's Figure 1c picture.
    """

    mean: float = 0.0
    std: float = 0.04
    outlier_fraction: float = 0.001
    outlier_lo_sigma: float = 4.5
    outlier_hi_sigma: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.outlier_fraction < 1.0:
            raise ValueError(f"outlier_fraction must be in [0, 1), got {self.outlier_fraction}")
        if self.std <= 0:
            raise ValueError(f"std must be positive, got {self.std}")
        if self.outlier_hi_sigma <= self.outlier_lo_sigma:
            raise ValueError("outlier_hi_sigma must exceed outlier_lo_sigma")


def synthetic_layer_weights(
    shape: tuple[int, ...],
    spec: SyntheticWeightSpec | None = None,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Generate one layer's weights: Gaussian bulk plus heavy-tail outliers."""
    spec = spec or SyntheticWeightSpec()
    gen = ensure_rng(rng)
    count = int(np.prod(shape))
    values = gen.normal(spec.mean, spec.std, size=count).astype(np.float32)
    n_outliers = int(round(count * spec.outlier_fraction))
    if n_outliers:
        idx = gen.choice(count, size=n_outliers, replace=False)
        magnitudes = gen.uniform(spec.outlier_lo_sigma, spec.outlier_hi_sigma, size=n_outliers)
        signs = gen.choice([-1.0, 1.0], size=n_outliers)
        values[idx] = (spec.mean + signs * magnitudes * spec.std).astype(np.float32)
    return values.reshape(shape)


def fc_layer_shapes(config: BertConfig | str) -> list[tuple[str, tuple[int, int]]]:
    """(name, shape) of every FC weight matrix, in network order.

    For BERT-Base this enumerates the 73 layers of the paper's Figure 3
    (12 encoder layers x 6 FC each, plus the pooler).
    """
    if isinstance(config, str):
        config = get_config(config)
    h, i = config.hidden_size, config.intermediate_size
    shapes: list[tuple[str, tuple[int, int]]] = []
    for layer in range(config.num_layers):
        prefix = f"encoder.{layer}"
        shapes.extend(
            [
                (f"{prefix}.attention.query.weight", (h, h)),
                (f"{prefix}.attention.key.weight", (h, h)),
                (f"{prefix}.attention.value.weight", (h, h)),
                (f"{prefix}.attention.output.weight", (h, h)),
                (f"{prefix}.intermediate.weight", (i, h)),
                (f"{prefix}.output.weight", (h, i)),
            ]
        )
    shapes.append(("pooler.weight", (h, h)))
    return shapes


def embedding_shapes(config: BertConfig | str) -> list[tuple[str, tuple[int, int]]]:
    """(name, shape) of the embedding tables (word table first)."""
    if isinstance(config, str):
        config = get_config(config)
    h = config.hidden_size
    return [
        ("embeddings.word_embeddings.weight", (config.vocab_size, h)),
        ("embeddings.position_embeddings.weight", (config.max_position, h)),
        ("embeddings.token_type_embeddings.weight", (config.type_vocab_size, h)),
    ]


def _layer_spec(name: str, base: SyntheticWeightSpec, is_last: bool) -> SyntheticWeightSpec:
    """Per-layer profile: std varies slightly per layer; the final (pooler)
    layer carries a larger fringe, matching Figure 3's last-layer bump."""
    if is_last:
        return SyntheticWeightSpec(
            mean=base.mean,
            std=base.std,
            outlier_fraction=min(0.009, base.outlier_fraction * 6),
            outlier_lo_sigma=base.outlier_lo_sigma,
            outlier_hi_sigma=base.outlier_hi_sigma,
        )
    return base


def layer_spec_for(
    config: BertConfig | str,
    position: int,
    base: SyntheticWeightSpec | None = None,
) -> SyntheticWeightSpec:
    """The distribution profile of FC layer ``position`` within ``config``.

    Stds vary in a deterministic +/-30% band across layers (Figure 1b shows
    per-layer distributions share shape but not scale), and the final
    (pooler) layer carries a larger fringe (Figure 3's last-layer bump).
    """
    if isinstance(config, str):
        config = get_config(config)
    base = base or SyntheticWeightSpec()
    num_layers = config.num_fc_layers
    if not 0 <= position < num_layers:
        raise IndexError(f"layer position {position} out of range [0, {num_layers})")
    spec = _layer_spec("", base, is_last=(position == num_layers - 1))
    wobble = 1.0 + 0.3 * np.sin(0.7 * position)
    return SyntheticWeightSpec(
        mean=spec.mean,
        std=spec.std * wobble,
        outlier_fraction=spec.outlier_fraction,
        outlier_lo_sigma=spec.outlier_lo_sigma,
        outlier_hi_sigma=spec.outlier_hi_sigma,
    )


def synthetic_layer_for(
    config: BertConfig | str,
    position: int,
    base: SyntheticWeightSpec | None = None,
    rng: int | np.random.Generator | None = 0,
) -> tuple[str, np.ndarray]:
    """Generate one FC layer of the synthetic full-scale model."""
    if isinstance(config, str):
        config = get_config(config)
    name, shape = fc_layer_shapes(config)[position]
    spec = layer_spec_for(config, position, base)
    layer_rng = derive_rng(rng, config.name, name)
    return name, synthetic_layer_weights(shape, spec, rng=layer_rng)


def synthetic_model_weights(
    config: BertConfig | str,
    spec: SyntheticWeightSpec | None = None,
    rng: int | np.random.Generator | None = 0,
    include_embeddings: bool = False,
) -> Iterator[tuple[str, np.ndarray]]:
    """Lazily yield (name, weights) for every FC layer of ``config``.

    Layer statistics vary deterministically per layer (different std per
    layer, as in Figure 1b) while the overall Gaussian-plus-fringe shape is
    preserved.  Pass ``include_embeddings=True`` to also yield the embedding
    tables at the end.
    """
    if isinstance(config, str):
        config = get_config(config)
    base = spec or SyntheticWeightSpec()
    for position in range(config.num_fc_layers):
        yield synthetic_layer_for(config, position, base, rng=rng)
    if include_embeddings:
        for name, shape in embedding_shapes(config):
            layer_rng = derive_rng(rng, config.name, name)
            yield name, synthetic_layer_weights(shape, base, rng=layer_rng)
