"""Parameter census and memory-footprint accounting (Tables I and II).

The paper's footprint numbers count:

* *Embedding Tables*: the word-embedding table only (``vocab x hidden`` FP32),
  which is what both BERT releases ship as "the" embedding matrix
  (89.42 MB for BERT-Base = 30522 x 768 x 4 bytes).
* *Weights*: all FC weight matrices (4 attention + intermediate + output per
  layer, plus the pooler), excluding biases and LayerNorm parameters
  (326.26 MB for BERT-Base).
* *Activations*: the largest layer's activation per word (``intermediate x 4``
  bytes) times the sequence length.

These conventions are encoded here so the Table I/II benchmarks print the
paper's exact rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import BertConfig

BYTES_PER_FP32 = 4
MIB = float(1 << 20)


@dataclass(frozen=True)
class FcLayerSpec:
    """One FC layer in the census: its dotted role and weight shape."""

    component: str
    count_per_layer: int
    rows: int
    cols: int

    @property
    def params_per_layer(self) -> int:
        return self.count_per_layer * self.rows * self.cols


def architecture_table(config: BertConfig) -> list[FcLayerSpec]:
    """Table I rows: FC layer inventory of one BERT layer plus the pooler."""
    h, i = config.hidden_size, config.intermediate_size
    return [
        FcLayerSpec("Attention", 4, h, h),
        FcLayerSpec("Intermediate", 1, h, i),
        FcLayerSpec("Output", 1, i, h),
        FcLayerSpec("Pooler", 1, h, h),
    ]


def fc_weight_count(config: BertConfig) -> int:
    """Total FC weight parameters (matches the paper's 'Weights')."""
    h, i = config.hidden_size, config.intermediate_size
    per_layer = 4 * h * h + 2 * h * i
    return config.num_layers * per_layer + h * h


def embedding_table_count(config: BertConfig) -> int:
    """Word-embedding table parameter count."""
    return config.vocab_size * config.hidden_size


def all_embedding_count(config: BertConfig) -> int:
    """All embedding tables: word + position + token-type."""
    return (
        config.vocab_size + config.max_position + config.type_vocab_size
    ) * config.hidden_size


def total_parameter_count(config: BertConfig) -> int:
    """Full parameter count incl. biases and LayerNorm (~110M for BERT-Base)."""
    h, i = config.hidden_size, config.intermediate_size
    per_layer = (
        4 * (h * h + h)        # attention Q/K/V/O weight+bias
        + (h * i + i)          # intermediate
        + (i * h + h)          # output
        + 2 * 2 * h            # two LayerNorms (weight+bias each)
    )
    embeddings = all_embedding_count(config) + 2 * h  # + embedding LayerNorm
    pooler = h * h + h
    return config.num_layers * per_layer + embeddings + pooler


@dataclass(frozen=True)
class MemoryFootprint:
    """Table II row set for one model at a given sequence length."""

    model: str
    embedding_bytes: int
    weight_bytes: int
    input_bytes_per_word: int
    largest_act_bytes_per_word: int
    sequence_length: int
    activation_bytes: int

    @property
    def embedding_mib(self) -> float:
        return self.embedding_bytes / MIB

    @property
    def weight_mib(self) -> float:
        return self.weight_bytes / MIB

    @property
    def activation_mib(self) -> float:
        return self.activation_bytes / MIB

    @property
    def total_bytes(self) -> int:
        return self.embedding_bytes + self.weight_bytes + self.activation_bytes


def memory_footprint(config: BertConfig, sequence_length: int = 128) -> MemoryFootprint:
    """Compute the Table II footprint for ``config``."""
    if sequence_length <= 0:
        raise ValueError(f"sequence_length must be positive, got {sequence_length}")
    input_per_word = config.hidden_size * BYTES_PER_FP32
    act_per_word = config.intermediate_size * BYTES_PER_FP32
    return MemoryFootprint(
        model=config.name,
        embedding_bytes=embedding_table_count(config) * BYTES_PER_FP32,
        weight_bytes=fc_weight_count(config) * BYTES_PER_FP32,
        input_bytes_per_word=input_per_word,
        largest_act_bytes_per_word=act_per_word,
        sequence_length=sequence_length,
        activation_bytes=act_per_word * sequence_length,
    )
