"""BERT-family model configurations.

Full-scale presets reproduce the exact dimensions of Table I (BERT-Base,
BERT-Large) plus the derivative models the paper evaluates (DistilBERT,
RoBERTa, RoBERTa-Large).  Tiny presets share the architecture but are small
enough to fine-tune on one CPU; all *accuracy* experiments run on those, while
footprint/compression experiments use the full-scale shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class BertConfig:
    """Architecture hyperparameters of a BERT-family encoder."""

    name: str
    vocab_size: int
    hidden_size: int
    num_layers: int
    num_heads: int
    intermediate_size: int
    max_position: int = 512
    type_vocab_size: int = 2
    dropout_rate: float = 0.1
    family: str = "bert"
    initializer_std: float = 0.02
    # Training-time Gaussian noise on the summed input embeddings.  Massively
    # pretrained models are robust to small embedding perturbations; tiny
    # from-scratch models acquire that robustness through this noise so that
    # embedding-table quantization behaves as in the paper (Figure 4).
    embedding_noise_std: float = 0.0

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ConfigError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        for field in ("vocab_size", "hidden_size", "num_layers", "num_heads",
                      "intermediate_size", "max_position", "type_vocab_size"):
            if getattr(self, field) <= 0:
                raise ConfigError(f"{self.name}: {field} must be positive")

    # ------------------------------------------------------------ census facts
    @property
    def fc_layers_per_encoder(self) -> int:
        """FC layers per BERT layer: 4 attention + intermediate + output."""
        return 6

    @property
    def num_fc_layers(self) -> int:
        """Total FC layers incl. the pooler (Table I: 12*6+1=73 for Base)."""
        return self.num_layers * self.fc_layers_per_encoder + 1

    def scaled(self, name: str, **overrides) -> "BertConfig":
        """A copy with ``overrides`` applied and a new name."""
        return replace(self, name=name, **overrides)


BERT_BASE = BertConfig(
    name="bert-base",
    vocab_size=30522,
    hidden_size=768,
    num_layers=12,
    num_heads=12,
    intermediate_size=3072,
)

BERT_LARGE = BertConfig(
    name="bert-large",
    vocab_size=30522,
    hidden_size=1024,
    num_layers=24,
    num_heads=16,
    intermediate_size=4096,
)

DISTILBERT = BertConfig(
    name="distilbert",
    vocab_size=30522,
    hidden_size=768,
    num_layers=6,
    num_heads=12,
    intermediate_size=3072,
    family="distilbert",
)

ROBERTA_BASE = BertConfig(
    name="roberta-base",
    vocab_size=50265,
    hidden_size=768,
    num_layers=12,
    num_heads=12,
    intermediate_size=3072,
    family="roberta",
)

ROBERTA_LARGE = BertConfig(
    name="roberta-large",
    vocab_size=50265,
    hidden_size=1024,
    num_layers=24,
    num_heads=16,
    intermediate_size=4096,
    family="roberta",
)

# Tiny, trainable-on-CPU counterparts used for the accuracy experiments.
# They keep each model's distinguishing structure: DistilBERT has half the
# layers of its base model; RoBERTa has a larger vocabulary; Large variants
# are deeper and wider than Base variants.  The wider initializer (0.06 vs
# BERT's 0.02) gives the weights the pronounced Gaussian bulk the paper
# observes in pretrained checkpoints, so fine-tuned task deltas land inside
# the bulk rather than forming an artificial functional tail.
TINY_BERT_BASE = BertConfig(
    name="tiny-bert-base",
    vocab_size=160,
    hidden_size=64,
    num_layers=4,
    num_heads=4,
    intermediate_size=128,
    max_position=64,
    dropout_rate=0.0,
    initializer_std=0.06,
    embedding_noise_std=0.035,
)

TINY_BERT_LARGE = TINY_BERT_BASE.scaled(
    "tiny-bert-large", hidden_size=96, num_layers=6, num_heads=6, intermediate_size=192
)

TINY_DISTILBERT = TINY_BERT_BASE.scaled("tiny-distilbert", num_layers=2, family="distilbert")

TINY_ROBERTA = TINY_BERT_BASE.scaled("tiny-roberta", vocab_size=224, family="roberta")

TINY_ROBERTA_LARGE = TINY_BERT_LARGE.scaled(
    "tiny-roberta-large", vocab_size=224, family="roberta"
)

_PRESETS = {
    cfg.name: cfg
    for cfg in (
        BERT_BASE,
        BERT_LARGE,
        DISTILBERT,
        ROBERTA_BASE,
        ROBERTA_LARGE,
        TINY_BERT_BASE,
        TINY_BERT_LARGE,
        TINY_DISTILBERT,
        TINY_ROBERTA,
        TINY_ROBERTA_LARGE,
    )
}

# Mapping from full-scale model to the tiny stand-in used for accuracy runs.
TINY_COUNTERPART = {
    "bert-base": "tiny-bert-base",
    "bert-large": "tiny-bert-large",
    "distilbert": "tiny-distilbert",
    "roberta-base": "tiny-roberta",
    "roberta-large": "tiny-roberta-large",
}


def get_config(name: str) -> BertConfig:
    """Look up a named preset configuration."""
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise ConfigError(f"unknown model config {name!r}; known: {known}") from None


def available_configs() -> list[str]:
    """Names of all preset configurations."""
    return sorted(_PRESETS)
