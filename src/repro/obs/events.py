"""Event model and JSONL schema for the observability layer.

One trace is a sequence of flat JSON objects, one per line (JSONL).  Every
event carries the same envelope::

    {"v": 1, "event": <type>, "name": <str>, "ts": <float>,
     "parent": <str|null>, "attrs": {<str>: <str|int|float|bool|null>}}

plus one type-specific payload field:

========== ==================================================================
``span``      ``duration`` (seconds, float >= 0) — a timed region; ``parent``
              is the name of the enclosing span in the same thread.
``counter``   ``value`` (finite number) — a monotonic increment.
``gauge``     ``value`` (finite number) — a point-in-time level.
``histogram`` ``value`` (finite number) — one observation of a distribution.
``trace``     ``values`` (list of finite numbers) — an ordered series, e.g.
              the per-iteration L1-norm trajectory of one clustering run.
========== ==================================================================

``ts`` is wall-clock seconds since the epoch; ``duration`` comes from the
monotonic clock.  Both are *volatile*: two otherwise identical runs differ
only in these fields, which is why :func:`canonical_event` strips them —
determinism tests compare canonicalized traces, not raw files.

The schema is validated structurally (:func:`validate_event`) with zero
dependencies; ``repro profile --check`` and the CI observability job fail on
the first violating line.
"""

from __future__ import annotations

import json
import math
from typing import Iterable

SCHEMA_VERSION = 1
EVENT_TYPES = ("span", "counter", "gauge", "histogram", "trace")
#: Fields whose values legitimately differ between two identical runs.
VOLATILE_FIELDS = ("ts", "duration")

_ATTR_TYPES = (str, bool, int, float, type(None))


class TraceFormatError(ValueError):
    """A trace file or event violates the documented JSONL schema."""


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_finite_number(value: object) -> bool:
    return _is_number(value) and math.isfinite(value)


def validate_event(event: object) -> list[str]:
    """Structural schema check; returns a list of violations (empty = valid)."""
    if not isinstance(event, dict):
        return [f"event must be a JSON object, got {type(event).__name__}"]
    errors: list[str] = []
    if event.get("v") != SCHEMA_VERSION:
        errors.append(f"'v' must be {SCHEMA_VERSION}, got {event.get('v')!r}")
    kind = event.get("event")
    if kind not in EVENT_TYPES:
        errors.append(f"'event' must be one of {EVENT_TYPES}, got {kind!r}")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"'name' must be a non-empty string, got {name!r}")
    if not _is_finite_number(event.get("ts")):
        errors.append(f"'ts' must be a finite number, got {event.get('ts')!r}")
    parent = event.get("parent")
    if parent is not None and (not isinstance(parent, str) or not parent):
        errors.append(f"'parent' must be null or a non-empty string, got {parent!r}")
    attrs = event.get("attrs")
    if not isinstance(attrs, dict):
        errors.append(f"'attrs' must be an object, got {attrs!r}")
    else:
        for key, value in attrs.items():
            if not isinstance(key, str):
                errors.append(f"attr key {key!r} is not a string")
            if not isinstance(value, _ATTR_TYPES):
                errors.append(
                    f"attr {key!r} has unsupported type {type(value).__name__}"
                )
            elif _is_number(value) and not math.isfinite(value):
                errors.append(f"attr {key!r} is not finite: {value!r}")

    payload_field = "values" if kind == "trace" else "duration" if kind == "span" else "value"
    expected = {"v", "event", "name", "ts", "parent", "attrs", payload_field}
    if kind in EVENT_TYPES:
        for key in event:
            if key not in expected:
                errors.append(f"unexpected field {key!r} for a {kind} event")
        if kind == "span":
            duration = event.get("duration")
            if not _is_finite_number(duration) or duration < 0:
                errors.append(
                    f"'duration' must be a finite number >= 0, got {duration!r}"
                )
        elif kind == "trace":
            values = event.get("values")
            if not isinstance(values, list) or not all(
                _is_finite_number(v) for v in values
            ):
                errors.append("'values' must be a list of finite numbers")
        else:
            if not _is_finite_number(event.get("value")):
                errors.append(
                    f"'value' must be a finite number, got {event.get('value')!r}"
                )
    return errors


def validate_events(events: Iterable[object]) -> list[str]:
    """Validate a sequence of events; violations are prefixed ``event N:``."""
    errors = []
    for index, event in enumerate(events):
        errors.extend(f"event {index}: {problem}" for problem in validate_event(event))
    return errors


def validate_trace_file(path) -> list[str]:
    """Validate a JSONL trace on disk; violations are prefixed ``line N:``."""
    errors: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {number}: not valid JSON ({exc})")
                continue
            errors.extend(f"line {number}: {problem}" for problem in validate_event(event))
    return errors


def read_trace(path) -> list[dict]:
    """Load a JSONL trace, raising :class:`TraceFormatError` on violations."""
    errors = validate_trace_file(path)
    if errors:
        preview = "; ".join(errors[:3])
        raise TraceFormatError(
            f"{path}: {len(errors)} schema violation(s): {preview}"
        )
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def read_trace_lenient(path) -> tuple[list[dict], int]:
    """Load the schema-valid prefix-tolerant view of a JSONL trace.

    Unlike :func:`read_trace`, a malformed line does not raise: it is
    skipped and counted.  This is the reader for worker-local traces of a
    process fleet — a SIGKILLed worker legitimately leaves a torn final
    line (each line is flushed whole, so at most the tail is damaged), and
    the supervisor still wants every intact event before it.  Returns
    ``(events, skipped_lines)``.
    """
    events: list[dict] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if validate_event(event):
                skipped += 1
                continue
            events.append(event)
    return events, skipped


def canonical_event(event: dict) -> dict:
    """Strip the volatile fields (timestamps, durations) from one event."""
    return {key: value for key, value in event.items() if key not in VOLATILE_FIELDS}


def canonical_events(
    events: Iterable[dict], exclude_names: Iterable[str] = ()
) -> list[dict]:
    """Canonical form of a trace for determinism comparisons.

    Volatile fields are stripped and events are sorted by their canonical
    JSON encoding, so thread-interleaving differences between runs vanish.
    ``exclude_names`` drops events whose payload intentionally varies between
    the runs under comparison (e.g. the ``engine.workers`` gauge when
    comparing a 1-worker run against a 4-worker run).
    """
    excluded = frozenset(exclude_names)
    stripped = [
        canonical_event(event)
        for event in events
        if event.get("name") not in excluded
    ]
    return sorted(stripped, key=lambda event: json.dumps(event, sort_keys=True))
