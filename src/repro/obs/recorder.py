"""Process-wide recorder: spans, metric emits, sinks and scopes.

The recorder is a module-level broadcast point.  Instrumented code calls the
emit helpers (:func:`span`, :func:`counter`, :func:`gauge`,
:func:`histogram`, :func:`trace_event`); each call builds one schema-valid
event dict and hands it to every installed sink plus every active scope.

Design constraints (see ISSUE 4 / DESIGN.md §5c):

* **Default-off-cheap.** With no sinks and no scopes installed every emit
  helper returns after one truth test; no event dict is built.  Spans still
  measure their duration (callers like the parallel engine consume it
  directly), but a :func:`time.perf_counter` pair is all they cost.
* **Zero perturbation.** Nothing here touches the quantization numerics;
  instrumentation only observes.  Quantized output is bit-identical with
  tracing on or off.
* **Thread-aware nesting.** The span stack is thread-local, so a span opened
  in a worker thread nests under that thread's spans only.  Events inherit
  the merged ``attrs`` of their enclosing spans (innermost wins), which is
  how a ``clustering.l1`` trace emitted deep inside ``quantize_tensor``
  carries the ``layer=...`` attribute that only the engine knows.
* **Scopes.** :func:`scope` attaches a temporary in-memory collector that
  sees every event recorded while it is active (all threads).  The parallel
  engine uses one per run to attach a :class:`~repro.obs.metrics.MetricsSnapshot`
  to its report even when no sink is installed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import SCHEMA_VERSION
from repro.obs.metrics import MetricsSnapshot
from repro.obs.sinks import MemorySink, Sink

_lock = threading.RLock()
_sinks: list[Sink] = []
_scopes: list[MemorySink] = []
_local = threading.local()


def recording_active() -> bool:
    """True when at least one sink or scope will receive events."""
    return bool(_sinks or _scopes)


def install(sink: Sink) -> Sink:
    """Attach ``sink`` to the process-wide recorder; returns it."""
    with _lock:
        _sinks.append(sink)
    return sink


def uninstall(sink: Sink) -> None:
    """Detach ``sink``; unknown sinks are ignored."""
    with _lock:
        try:
            _sinks.remove(sink)
        except ValueError:
            pass


def installed_sinks() -> tuple[Sink, ...]:
    with _lock:
        return tuple(_sinks)


@contextmanager
def recording(sink: Sink) -> Iterator[Sink]:
    """Install ``sink`` for the duration of a ``with`` block, then close it."""
    install(sink)
    try:
        yield sink
    finally:
        uninstall(sink)
        sink.close()


@contextmanager
def scope() -> Iterator[MemorySink]:
    """Collect every event recorded inside the block into a MemorySink.

    Scopes stack and see events from all threads; they are how callers get a
    :class:`MetricsSnapshot` of one region without installing a global sink.
    """
    collector = MemorySink()
    with _lock:
        _scopes.append(collector)
    try:
        yield collector
    finally:
        with _lock:
            try:
                _scopes.remove(collector)
            except ValueError:
                pass


def _record(event: dict) -> None:
    with _lock:
        for sink in _sinks:
            sink.emit(event)
        for collector in _scopes:
            collector.emit(event)


def replay(events) -> int:
    """Feed prebuilt event dicts to every installed sink and active scope.

    The merge path for multi-process runs: fleet workers record to
    worker-local JSONL files (their sinks live in another process), and the
    supervisor replays the recovered events into its own recorder so one
    trace — and one :class:`~repro.obs.metrics.MetricsSnapshot` — covers the
    whole run.  Events are forwarded verbatim (timestamps included); callers
    are expected to pass schema-valid events, e.g. from
    :func:`repro.obs.events.read_trace_lenient`.  Returns the number of
    events forwarded (0 when the recorder is inactive).
    """
    if not recording_active():
        return 0
    count = 0
    for event in events:
        _record(event)
        count += 1
    return count


def reset() -> None:
    """Detach every sink and scope and clear this thread's span stack.

    For forked worker processes (:mod:`repro.jobs.fleet`): a fork inherits
    the parent's installed sinks — whose underlying file descriptors are
    shared with the parent — and its active scopes and span stack.  A
    worker must shed them before installing its own sink, or its events
    would interleave into the parent's trace file and nest under the
    parent's spans.  Sinks are *not* closed: the parent still owns them.
    """
    with _lock:
        _sinks.clear()
        _scopes.clear()
    _local.stack = []


def _span_stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span() -> "Span | None":
    """The innermost active span on this thread, or None."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def capture_context() -> tuple["Span", ...]:
    """Snapshot this thread's span stack for re-attachment elsewhere.

    Thread pools break span nesting by default — a span opened on the
    submitting thread is invisible to the worker.  Capture the context at
    submission time and wrap the worker body in :func:`use_context` so
    events keep their parent and inherited attrs at any worker count.
    """
    return tuple(_span_stack())


@contextmanager
def use_context(spans: tuple["Span", ...]) -> Iterator[None]:
    """Make ``spans`` this thread's ambient span stack for the block."""
    previous = getattr(_local, "stack", None)
    _local.stack = list(spans)
    try:
        yield
    finally:
        _local.stack = previous if previous is not None else []


def _context() -> tuple[str | None, dict]:
    """(parent span name, merged ancestor attrs) for this thread."""
    stack = getattr(_local, "stack", None)
    if not stack:
        return None, {}
    merged: dict = {}
    for span_ in stack:
        merged.update(span_.attrs)
    return stack[-1].name, merged


def _event(kind: str, name: str, attrs: dict, **payload) -> dict:
    parent, inherited = _context()
    if inherited:
        inherited = dict(inherited)
        inherited.update(attrs)
        attrs = inherited
    return {
        "v": SCHEMA_VERSION,
        "event": kind,
        "name": name,
        "ts": time.time(),
        "parent": parent,
        "attrs": attrs,
        **payload,
    }


def counter(name: str, value: float = 1.0, **attrs) -> None:
    """Record a monotonic increment of ``value`` on counter ``name``."""
    if not recording_active():
        return
    _record(_event("counter", name, attrs, value=float(value)))


def gauge(name: str, value: float, **attrs) -> None:
    """Record the current level of gauge ``name``.

    Non-finite values are dropped silently: NaN/Inf have no JSON encoding
    and no meaningful aggregation (e.g. the compression ratio of an empty
    model is infinite by convention, not observably infinite).
    """
    if not recording_active():
        return
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return
    _record(_event("gauge", name, attrs, value=value))


def histogram(name: str, value: float, **attrs) -> None:
    """Record one observation of histogram ``name``."""
    if not recording_active():
        return
    _record(_event("histogram", name, attrs, value=float(value)))


def trace_event(name: str, values, **attrs) -> None:
    """Record an ordered numeric series (e.g. an L1-norm trajectory)."""
    if not recording_active():
        return
    _record(_event("trace", name, attrs, values=[float(v) for v in values]))


class Span:
    """A timed, nestable region.

    Use as a context manager::

        with span("engine.layer", layer=name, bits=3) as sp:
            ...work...
            sp.set(iterations=7)          # attach attrs discovered mid-span
        report_seconds = sp.duration      # valid after exit, recorder or not

    The span *always* measures its duration (callers consume it even with
    tracing off) but only emits an event — at exit, so late attrs are
    included — when the recorder is active.  If the body raises, the event
    still fires with an ``error`` attr naming the exception type.
    """

    __slots__ = ("name", "attrs", "duration", "_start")

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs
        self.duration = 0.0
        self._start = 0.0

    def set(self, **attrs) -> "Span":
        """Merge ``attrs`` into the span before it is emitted."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        _span_stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start
        stack = _span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover — unbalanced nesting
            stack.remove(self)
        if recording_active():
            if exc_type is not None:
                self.attrs.setdefault("error", exc_type.__name__)
            _record(_event("span", self.name, dict(self.attrs), duration=self.duration))
        return None


def span(name: str, **attrs) -> Span:
    """Create a :class:`Span`; open it with ``with``."""
    return Span(name, **attrs)


def snapshot_of(events) -> MetricsSnapshot:
    """Aggregate a list of event dicts into a :class:`MetricsSnapshot`."""
    return MetricsSnapshot.from_events(events)
