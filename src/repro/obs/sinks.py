"""Sinks: where recorded events go.

The sink contract is two methods — ``emit(event: dict)`` and ``close()`` —
called under the recorder's lock, so implementations need no locking of
their own.  ``emit`` must not mutate the event (sinks share one dict per
event) and must not raise on well-formed events; ``close`` is idempotent.

Three implementations cover the three consumers named in ISSUE 4:

* :class:`MemorySink` — in-memory list plus live aggregation, for tests and
  for the engine's per-run metrics snapshot;
* :class:`JsonlSink` — one JSON object per line on disk, the ``--trace``
  format that ``repro profile`` replays;
* :class:`SummarySink` — aggregates silently and prints a human table on
  close, for CLI runs that want a profile without a file.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Protocol

from repro.obs.metrics import MetricsSnapshot


class Sink(Protocol):
    """Anything that can receive observability events."""

    def emit(self, event: dict) -> None: ...

    def close(self) -> None: ...


class MemorySink:
    """Collects events in memory and aggregates them on the fly."""

    def __init__(self):
        self.events: list[dict] = []
        self._snapshot = MetricsSnapshot()

    def emit(self, event: dict) -> None:
        self.events.append(event)
        self._snapshot.ingest(event)

    def close(self) -> None:
        pass

    def snapshot(self) -> MetricsSnapshot:
        """The aggregate view of everything seen so far."""
        return self._snapshot

    def __len__(self) -> int:
        return len(self.events)


class SnapshotSink:
    """Aggregates into a :class:`MetricsSnapshot` without retaining events.

    :class:`MemorySink` keeps every event — right for tests and bounded
    runs, wrong for a long-lived server where the list grows without limit.
    This sink keeps only the running aggregate, so memory is O(metric
    names), not O(events); the serving layer's ``/metrics`` endpoint reads
    it for the process lifetime.
    """

    def __init__(self):
        self._snapshot = MetricsSnapshot()

    def emit(self, event: dict) -> None:
        self._snapshot.ingest(event)

    def close(self) -> None:
        pass

    def snapshot(self) -> MetricsSnapshot:
        return self._snapshot


class JsonlSink:
    """Appends each event as one JSON line to a file (the ``--trace`` format).

    Lines are written with sorted keys and compact separators so the output
    is byte-stable for identical event streams.  Each line is flushed as it
    is written: a crashed run leaves a valid prefix, never a torn line.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = open(self.path, "w", encoding="utf-8")
        self.lines = 0

    def emit(self, event: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        self.lines += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class SummarySink:
    """Aggregates events and renders a human summary table on close."""

    def __init__(self, stream: IO[str] | None = None):
        self._memory = MemorySink()
        self._stream = stream
        self._closed = False

    def emit(self, event: dict) -> None:
        self._memory.emit(event)

    def snapshot(self) -> MetricsSnapshot:
        return self._memory.snapshot()

    @property
    def events(self) -> list[dict]:
        return self._memory.events

    def render(self) -> str:
        from repro.obs.profile import summarize

        return summarize(self._memory.events)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        stream = self._stream if self._stream is not None else sys.stdout
        print(self.render(), file=stream)
