"""Metric instruments and aggregate snapshots.

:class:`Counter`, :class:`Gauge` and :class:`Histogram` are thin named
handles over the module-level emit functions in :mod:`repro.obs.recorder` —
they record *events*; aggregation happens at read time so every sink sees
the raw stream.  :class:`MetricsSnapshot` is that aggregation: counters sum,
gauges keep their last value, histograms and spans keep count/total/min/max.
`QuantizationReport.metrics` is one of these, so experiments and benchmarks
can assert on observed behaviour (cache hits, bytes written, layer spans)
without parsing a trace file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.utils.tables import format_table


@dataclass
class HistogramStats:
    """Streaming summary of one histogram's observations."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class SpanStats:
    """Count and cumulative duration of one span name."""

    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class MetricsSnapshot:
    """Aggregated view over a stream of observability events."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramStats] = field(default_factory=dict)
    spans: dict[str, SpanStats] = field(default_factory=dict)
    events: int = 0

    @classmethod
    def from_events(cls, events: Iterable[dict]) -> "MetricsSnapshot":
        snapshot = cls()
        for event in events:
            snapshot.ingest(event)
        return snapshot

    def ingest(self, event: dict) -> None:
        kind, name = event.get("event"), event.get("name", "")
        self.events += 1
        if kind == "counter":
            self.counters[name] = self.counters.get(name, 0.0) + float(event["value"])
        elif kind == "gauge":
            self.gauges[name] = float(event["value"])
        elif kind == "histogram":
            self.histograms.setdefault(name, HistogramStats()).observe(
                float(event["value"])
            )
        elif kind == "span":
            stats = self.spans.setdefault(name, SpanStats())
            stats.count += 1
            stats.total_seconds += float(event["duration"])

    # -------------------------------------------------------------- accessors
    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def gauge(self, name: str, default: float | None = None) -> float | None:
        return self.gauges.get(name, default)

    def histogram(self, name: str) -> HistogramStats:
        return self.histograms.get(name, HistogramStats())

    def span(self, name: str) -> SpanStats:
        return self.spans.get(name, SpanStats())

    def render(self) -> str:
        """Aligned text tables: spans, counters, gauges, histograms."""
        parts = []
        if self.spans:
            parts.append(format_table(
                ["Span", "Count", "Total ms", "Mean ms"],
                [
                    [name, stats.count,
                     f"{stats.total_seconds * 1000:.1f}",
                     f"{stats.mean_seconds * 1000:.2f}"]
                    for name, stats in sorted(self.spans.items())
                ],
                title="Spans",
            ))
        if self.counters:
            parts.append(format_table(
                ["Counter", "Total"],
                [[name, f"{value:g}"] for name, value in sorted(self.counters.items())],
                title="Counters",
            ))
        if self.gauges:
            parts.append(format_table(
                ["Gauge", "Last value"],
                [[name, f"{value:g}"] for name, value in sorted(self.gauges.items())],
                title="Gauges",
            ))
        if self.histograms:
            parts.append(format_table(
                ["Histogram", "Count", "Mean", "Min", "Max"],
                [
                    [name, stats.count, f"{stats.mean:g}",
                     f"{stats.minimum:g}", f"{stats.maximum:g}"]
                    for name, stats in sorted(self.histograms.items())
                ],
                title="Histograms",
            ))
        if not parts:
            return "(no metrics recorded)"
        return "\n\n".join(parts)


class _Instrument:
    """Base for named instruments: binds a name and default attrs."""

    __slots__ = ("name", "attrs")

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs

    def _merged(self, attrs: dict) -> dict:
        if not self.attrs:
            return attrs
        return {**self.attrs, **attrs}


class Counter(_Instrument):
    """A monotonically accumulating count (cache hits, bytes written)."""

    def inc(self, value: float = 1.0, **attrs) -> None:
        from repro.obs import recorder

        recorder.counter(self.name, value, **self._merged(attrs))


class Gauge(_Instrument):
    """A point-in-time level (queue depth, compression ratio)."""

    def set(self, value: float, **attrs) -> None:
        from repro.obs import recorder

        recorder.gauge(self.name, value, **self._merged(attrs))


class Histogram(_Instrument):
    """A distribution of observations (per-layer outlier fractions)."""

    def observe(self, value: float, **attrs) -> None:
        from repro.obs import recorder

        recorder.histogram(self.name, value, **self._merged(attrs))
