"""Observability: tracing spans, metrics and pluggable event sinks.

A zero-dependency substrate for *seeing* what the quantization pipeline does
while it runs — the convergence behaviour and compression ratios the paper
headlines (Figure 2, Tables II/VII) as live, per-layer measurements instead
of end-to-end numbers.

Quickstart::

    from repro import obs

    with obs.recording(obs.JsonlSink("run.jsonl")):
        quantize_model(model, workers=4)          # instrumented internally

    # later / elsewhere
    print(obs.profile_trace("run.jsonl"))         # per-layer summary table

Instrumented code emits through the module-level helpers — :func:`span`,
:func:`counter`, :func:`gauge`, :func:`histogram`, :func:`trace_event` —
which are no-ops (one truth test) until a sink or scope is installed, and
never perturb results: quantized output is bit-identical with tracing on or
off, at any worker count.  See DESIGN.md §5c for the event schema and the
sink contract.
"""

from repro.obs.events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    TraceFormatError,
    canonical_event,
    canonical_events,
    read_trace,
    read_trace_lenient,
    validate_event,
    validate_events,
    validate_trace_file,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramStats,
    MetricsSnapshot,
    SpanStats,
)
from repro.obs.profile import layer_rows, layer_table, profile_trace, summarize
from repro.obs.recorder import (
    Span,
    capture_context,
    counter,
    current_span,
    gauge,
    histogram,
    install,
    installed_sinks,
    recording,
    recording_active,
    replay,
    reset,
    scope,
    span,
    trace_event,
    uninstall,
    use_context,
)
from repro.obs.sinks import JsonlSink, MemorySink, Sink, SnapshotSink, SummarySink

__all__ = [
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "TraceFormatError",
    "canonical_event",
    "canonical_events",
    "read_trace",
    "read_trace_lenient",
    "validate_event",
    "validate_events",
    "validate_trace_file",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricsSnapshot",
    "SpanStats",
    "layer_rows",
    "layer_table",
    "profile_trace",
    "summarize",
    "Span",
    "capture_context",
    "counter",
    "current_span",
    "gauge",
    "histogram",
    "install",
    "installed_sinks",
    "recording",
    "recording_active",
    "replay",
    "reset",
    "scope",
    "span",
    "trace_event",
    "uninstall",
    "use_context",
    "JsonlSink",
    "MemorySink",
    "Sink",
    "SnapshotSink",
    "SummarySink",
]
