"""Replay a trace into human-readable summary tables (``repro profile``).

The profiler is a pure function of the event stream: it joins the
``engine.layer`` spans (one per quantized layer, carrying layer/bits/
iterations/outlier-fraction/byte attrs) with the ``clustering.l1``
convergence traces nested under them, and renders

* a per-layer table — the observability twin of
  ``QuantizationReport.render()``, reconstructed entirely from the trace
  file after the fact, and
* the aggregate metrics tables (spans, counters, gauges, histograms) from
  :class:`~repro.obs.metrics.MetricsSnapshot`.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.events import read_trace
from repro.obs.metrics import MetricsSnapshot
from repro.utils.tables import format_table

LAYER_SPAN = "engine.layer"
ENGINE_SPAN = "engine.run"
CONVERGENCE_TRACE = "clustering.l1"


def layer_rows(events: list[dict]) -> list[dict]:
    """One record per ``engine.layer`` span, joined with its L1 trajectory.

    Layers appear in file order.  The join key is the inherited ``layer``
    attr, which the recorder stamps on every event nested under a layer
    span, so the association survives thread interleaving in the file.
    """
    trajectories: dict[str, list[float]] = {}
    for event in events:
        if event.get("event") == "trace" and event.get("name") == CONVERGENCE_TRACE:
            layer = event.get("attrs", {}).get("layer")
            if isinstance(layer, str):
                trajectories[layer] = event.get("values", [])
    rows = []
    for event in events:
        if event.get("event") != "span" or event.get("name") != LAYER_SPAN:
            continue
        attrs = event.get("attrs", {})
        layer = attrs.get("layer")
        trajectory = trajectories.get(layer, [])
        rows.append({
            "layer": layer,
            "bits": attrs.get("bits"),
            "iterations": attrs.get("iterations"),
            "converged": attrs.get("converged"),
            "outlier_fraction": attrs.get("outlier_fraction"),
            "original_bytes": attrs.get("original_bytes"),
            "compressed_bytes": attrs.get("compressed_bytes"),
            "error": attrs.get("error"),
            "seconds": event.get("duration", 0.0),
            "l1_trajectory": trajectory,
        })
    return rows


def layer_table(events: list[dict]) -> str:
    """Render the per-layer summary table from a trace's events."""
    rows = layer_rows(events)
    if not rows:
        return "(no engine.layer spans in trace)"

    def fmt_ratio(row: dict) -> str:
        original, compressed = row["original_bytes"], row["compressed_bytes"]
        if not original or not compressed:
            return "-"
        return f"{original / compressed:.2f}x"

    def fmt_l1(row: dict) -> str:
        trajectory = row["l1_trajectory"]
        if not trajectory:
            return "-"
        return f"{min(trajectory):.4g}"

    def fmt_outliers(row: dict) -> str:
        fraction = row["outlier_fraction"]
        return "-" if fraction is None else f"{fraction * 100:.3f}%"

    table_rows = [
        [
            row["layer"] if row["layer"] is not None else "?",
            "-" if row["bits"] is None else row["bits"],
            "-" if row["iterations"] is None else row["iterations"],
            fmt_outliers(row),
            fmt_ratio(row),
            fmt_l1(row),
            f"{row['seconds'] * 1000:.1f}",
            row["error"] or "",
        ]
        for row in rows
    ]
    return format_table(
        ["Layer", "Bits", "Iter", "Outlier %", "CR", "Final L1", "ms", "Error"],
        table_rows,
        title="Per-layer trace profile",
    )


def summarize(events: list[dict]) -> str:
    """Full profile: per-layer table, engine totals, aggregate metrics."""
    parts = [layer_table(events)]
    engine_spans = [
        event for event in events
        if event.get("event") == "span" and event.get("name") == ENGINE_SPAN
    ]
    if engine_spans:
        wall = sum(event.get("duration", 0.0) for event in engine_spans)
        parts.append(
            f"engine runs: {len(engine_spans)}, total wall {wall:.3f}s"
        )
    parts.append(MetricsSnapshot.from_events(events).render())
    return "\n\n".join(parts)


def profile_trace(path: str | Path) -> str:
    """Validate and summarize a JSONL trace file."""
    return summarize(read_trace(path))
