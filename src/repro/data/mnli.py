"""Synthetic MNLI: 3-way sentence-pair classification by weighted-sum order.

Structure mirrors GLUE MNLI — a premise/hypothesis pair labelled with one of
three relations, scored by accuracy.  The relation here is the order of the
two sentences' weighted value sums: the premise "dominates" (label 0, the
entailment slot), the sums are "equal" (label 1, neutral), or the hypothesis
dominates (label 2, contradiction).  Sum differences are small (0, +/-1,
+/-2), so the decision boundaries are tight: the model must aggregate value
tokens across both segments precisely, which makes this — like the paper's
MNLI — the most quantization-sensitive task in the suite.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic_language import SyntheticLanguage, default_language
from repro.data.task import TaskData, TaskSplits
from repro.tokenization.tokenizer import Tokenizer
from repro.utils.rng import derive_rng, ensure_rng

LABELS = ("premise_dominates", "equal", "hypothesis_dominates")
# Sum differences and their sampling weights: +/-1 dominates so most examples
# sit next to a decision boundary.
_DIFFERENCES = np.array([-2, -1, -1, 0, 0, 1, 1, 2])

MIN_SCORE = 2
MAX_SCORE = 10


def _make_example(
    language: SyntheticLanguage, rng: np.random.Generator
) -> tuple[str, str, int]:
    premise_score = int(rng.integers(MIN_SCORE, MAX_SCORE - 1))
    difference = int(rng.choice(_DIFFERENCES))
    hypothesis_score = int(np.clip(premise_score + difference, 0, MAX_SCORE))
    if premise_score > hypothesis_score:
        label = 0
    elif premise_score == hypothesis_score:
        label = 1
    else:
        label = 2
    return (
        language.value_sentence(premise_score, rng),
        language.value_sentence(hypothesis_score, rng),
        label,
    )


def generate_mnli(
    num_train: int = 3500,
    num_eval: int = 400,
    max_length: int = 32,
    language: SyntheticLanguage | None = None,
    rng: int | np.random.Generator | None = 0,
) -> TaskSplits:
    """Generate train/eval splits of the synthetic MNLI task."""
    language = language or default_language()
    tokenizer = Tokenizer(language.build_vocabulary())
    base = ensure_rng(rng)

    def build(count: int, split: str) -> TaskData:
        gen = derive_rng(base, "mnli", split)
        pairs, labels = [], []
        for _ in range(count):
            premise, hypothesis, label = _make_example(language, gen)
            pairs.append((premise, hypothesis))
            labels.append(label)
        return TaskData(
            name="mnli",
            task_type="classification",
            encodings=tokenizer.encode_batch(pairs, max_length=max_length),
            labels=np.array(labels, dtype=np.int64),
            num_labels=len(LABELS),
        )

    return TaskSplits(
        train=build(num_train, "train"),
        eval=build(num_eval, "eval"),
        tokenizer=tokenizer,
    )
