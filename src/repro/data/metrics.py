"""Evaluation metrics: accuracy (MNLI), Spearman rho (STS-B), span F1 (SQuAD)."""

from __future__ import annotations

import numpy as np
from scipy import stats as sp_stats

from repro.errors import ShapeError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches — GLUE's MNLI matched-accuracy metric."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        raise ShapeError("cannot compute accuracy of zero predictions")
    return float((predictions == labels).mean())


def spearman(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Spearman rank correlation — GLUE's STS-B metric.

    Returns 0.0 when either input is constant (correlation undefined),
    which is the conservative convention for a degenerate model.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if predictions.shape != labels.shape:
        raise ShapeError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size < 2:
        raise ShapeError("spearman needs at least 2 samples")
    if np.all(predictions == predictions[0]) or np.all(labels == labels[0]):
        return 0.0
    rho, _ = sp_stats.spearmanr(predictions, labels)
    return float(rho)


def span_f1(predicted_spans: np.ndarray, gold_spans: np.ndarray) -> float:
    """Mean token-overlap F1 between predicted and gold spans (SQuAD F1).

    Spans are inclusive ``(start, end)`` index pairs.
    """
    predicted_spans = np.asarray(predicted_spans)
    gold_spans = np.asarray(gold_spans)
    if predicted_spans.shape != gold_spans.shape or predicted_spans.ndim != 2:
        raise ShapeError(
            f"spans must both be (n, 2): {predicted_spans.shape} vs {gold_spans.shape}"
        )
    scores = []
    for (p_start, p_end), (g_start, g_end) in zip(predicted_spans, gold_spans):
        predicted = set(range(int(p_start), int(p_end) + 1))
        gold = set(range(int(g_start), int(g_end) + 1))
        overlap = len(predicted & gold)
        if overlap == 0:
            scores.append(0.0)
            continue
        precision = overlap / len(predicted)
        recall = overlap / len(gold)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))


def metric_for_task(task_type: str):
    """The paper's metric for each task type."""
    table = {
        "classification": accuracy,
        "regression": spearman,
        "span": span_f1,
    }
    try:
        return table[task_type]
    except KeyError:
        raise ValueError(f"unknown task_type {task_type!r}") from None
