"""Synthetic SQuAD: extractive span prediction, scored by token-overlap F1.

Structure mirrors SQuAD v1.1 — a question (segment A) and a context
(segment B); the model predicts a start/end token span in the context.  The
context hides one answer span — a run of 1-3 entity tokens introduced by the
unique ``ans`` marker — among distractor markers that also precede entity
runs, plus filler.  The model must detect the answer marker and delimit the
entity run (find where entities stop), so both boundaries carry positional
precision; partial-overlap F1 then degrades gradually under quantization
rather than all-or-nothing.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic_language import SyntheticLanguage, default_language
from repro.data.task import TaskData, TaskSplits
from repro.tokenization.tokenizer import Tokenizer
from repro.utils.rng import derive_rng, ensure_rng

MAX_ANSWER_LENGTH = 3


def _make_example(
    language: SyntheticLanguage, rng: np.random.Generator
) -> tuple[str, str, int, int]:
    """Returns (question, context, answer_start, answer_end) in word offsets."""
    words = [str(w) for w in rng.choice(language.fillers, size=int(rng.integers(3, 6)))]
    # Distractor markers, each introducing its own entity run.
    n_distractors = int(rng.integers(1, min(3, len(language.distractor_markers)) + 1))
    for marker in rng.choice(language.distractor_markers, size=n_distractors, replace=False):
        position = int(rng.integers(len(words) + 1))
        run = [str(e) for e in rng.choice(language.entities, size=int(rng.integers(1, 3)))]
        words[position:position] = [str(marker)] + run
    # The answer: the unique `ans` marker followed by 1-3 entities.
    position = int(rng.integers(len(words) + 1))
    span_length = int(rng.integers(1, MAX_ANSWER_LENGTH + 1))
    answer = [str(e) for e in rng.choice(language.entities, size=span_length)]
    words[position:position] = [language.answer_marker] + answer
    start = position + 1
    question = language.answer_marker
    return question, " ".join(words), start, start + span_length - 1


def generate_squad(
    num_train: int = 3500,
    num_eval: int = 400,
    max_length: int = 28,
    language: SyntheticLanguage | None = None,
    rng: int | np.random.Generator | None = 0,
) -> TaskSplits:
    """Generate train/eval splits of the synthetic SQuAD task."""
    language = language or default_language()
    tokenizer = Tokenizer(language.build_vocabulary())
    base = ensure_rng(rng)

    def build(count: int, split: str) -> TaskData:
        gen = derive_rng(base, "squad", split)
        pairs, spans = [], []
        for _ in range(count):
            question, context, start, end = _make_example(language, gen)
            pairs.append((question, context))
            # Encoded layout: [CLS] question [SEP] context..., so context word
            # offsets shift by 2 + len(question words).
            offset = 2 + len(question.split())
            spans.append((offset + start, offset + end))
        return TaskData(
            name="squad",
            task_type="span",
            encodings=tokenizer.encode_batch(pairs, max_length=max_length),
            labels=np.array(spans, dtype=np.int64),
        )

    return TaskSplits(
        train=build(num_train, "train"),
        eval=build(num_eval, "eval"),
        tokenizer=tokenizer,
    )
