"""A closed synthetic language for the evaluation tasks.

The paper evaluates pre-trained BERT checkpoints on MNLI, STS-B and SQuAD.
Offline — with no pre-trained checkpoints and no GLUE data — we substitute
tasks with the same *structure* (sentence-pair 3-way classification scored by
accuracy; sentence-pair regression scored by Spearman; span extraction scored
by F1) built over a closed language that tiny from-scratch transformers can
learn to the high-90s, while remaining *gradably* sensitive to weight
quantization.  The load-bearing mechanism is **counting**: transformer
attention aggregates token evidence, so task outputs depend on precise sums
over many weights, and quantization noise produces smooth, measurable
degradation (catastrophic at 2 bits, ~1% at 3 bits, lossless at 4+ — the
paper's headline trend).

Word families:

* **value words** — two weight classes (several surface forms each, so the
  model must learn class membership rather than memorize one token):
  light forms count 1, heavy forms count 2.  MNLI/STS-B compare weighted sums.
* **entities** — answer vocabulary for the span task.
* **answer/distractor markers** — the span task's cue structure.
* **fillers** — content-free padding so lengths vary.
"""

from __future__ import annotations

import numpy as np

from repro.tokenization.vocab import Vocabulary
from repro.utils.rng import ensure_rng

LIGHT_WEIGHT = 1
HEAVY_WEIGHT = 2


class SyntheticLanguage:
    """The closed world the synthetic tasks are generated from."""

    def __init__(
        self,
        num_light_forms: int = 4,
        num_heavy_forms: int = 4,
        num_entities: int = 20,
        num_fillers: int = 30,
        num_distractor_markers: int = 3,
    ) -> None:
        if num_light_forms < 1 or num_heavy_forms < 1:
            raise ValueError("need at least one surface form per value class")
        if num_entities < 2:
            raise ValueError(f"need at least 2 entities, got {num_entities}")
        if num_fillers < 1:
            raise ValueError(f"need at least 1 filler, got {num_fillers}")
        self.light_forms = [f"one{i}" for i in range(num_light_forms)]
        self.heavy_forms = [f"two{i}" for i in range(num_heavy_forms)]
        self.entities = [f"ent{i}" for i in range(num_entities)]
        self.fillers = [f"word{i}" for i in range(num_fillers)]
        self.answer_marker = "ans"
        self.distractor_markers = [f"mark{i}" for i in range(num_distractor_markers)]

    # ----------------------------------------------------------------- tokens
    def tokens(self) -> list[str]:
        """Every surface form, in deterministic order."""
        return (
            self.light_forms
            + self.heavy_forms
            + self.entities
            + self.fillers
            + [self.answer_marker]
            + self.distractor_markers
        )

    def build_vocabulary(self) -> Vocabulary:
        return Vocabulary(self.tokens())

    def vocabulary_size(self) -> int:
        """Token count including the 5 special tokens."""
        return len(self.tokens()) + 5

    def word_weight(self, word: str) -> int:
        """The counting weight of a word (0 for non-value words)."""
        if word in self.light_forms:
            return LIGHT_WEIGHT
        if word in self.heavy_forms:
            return HEAVY_WEIGHT
        return 0

    # -------------------------------------------------------------- sampling
    def value_sentence(
        self,
        score: int,
        rng: int | np.random.Generator | None,
        min_fillers: int = 3,
        max_fillers: int = 7,
    ) -> str:
        """A sentence whose value words sum exactly to ``score``.

        Heavy (weight-2) and light (weight-1) forms are mixed at random, then
        shuffled with filler words, so neither token count nor position leaks
        the score.
        """
        if score < 0:
            raise ValueError(f"score must be non-negative, got {score}")
        gen = ensure_rng(rng)
        words: list[str] = []
        remaining = score
        while remaining > 0:
            if remaining >= HEAVY_WEIGHT and gen.random() < 0.5:
                words.append(str(gen.choice(self.heavy_forms)))
                remaining -= HEAVY_WEIGHT
            else:
                words.append(str(gen.choice(self.light_forms)))
                remaining -= LIGHT_WEIGHT
        n_fillers = int(gen.integers(min_fillers, max_fillers + 1))
        words.extend(str(w) for w in gen.choice(self.fillers, size=n_fillers))
        gen.shuffle(words)
        return " ".join(words)

    def sentence_score(self, sentence: str) -> int:
        """The weighted value sum of a sentence (inverse of value_sentence)."""
        return sum(self.word_weight(word) for word in sentence.split())


def default_language() -> SyntheticLanguage:
    """The standard language (~67 tokens incl. specials)."""
    return SyntheticLanguage()
