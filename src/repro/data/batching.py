"""Minibatch iteration over :class:`~repro.data.task.TaskData`."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.task import TaskData
from repro.utils.rng import ensure_rng


def iterate_batches(
    data: TaskData,
    batch_size: int,
    shuffle: bool = False,
    rng: int | np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[TaskData]:
    """Yield :class:`TaskData` minibatches of ``batch_size``."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    count = len(data)
    order = np.arange(count)
    if shuffle:
        ensure_rng(rng).shuffle(order)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        if drop_last and index.size < batch_size:
            return
        yield data.subset(index)
