"""Task dataset containers shared by all synthetic benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.tokenization.tokenizer import Encoding, Tokenizer

TASK_TYPES = ("classification", "regression", "span")


@dataclass(frozen=True)
class TaskData:
    """A fully encoded split of one task.

    ``labels`` is ``(n,)`` int for classification, ``(n,)`` float for
    regression, and ``(n, 2)`` int start/end positions for span tasks.
    """

    name: str
    task_type: str
    encodings: Encoding
    labels: np.ndarray
    num_labels: int = 0

    def __post_init__(self) -> None:
        if self.task_type not in TASK_TYPES:
            raise ValueError(f"unknown task_type {self.task_type!r}")
        n = self.encodings.input_ids.shape[0]
        if self.labels.shape[0] != n:
            raise ShapeError(
                f"{self.name}: {n} encodings but {self.labels.shape[0]} labels"
            )
        if self.task_type == "span" and (self.labels.ndim != 2 or self.labels.shape[1] != 2):
            raise ShapeError(f"{self.name}: span labels must be (n, 2), got {self.labels.shape}")

    def __len__(self) -> int:
        return int(self.encodings.input_ids.shape[0])

    @property
    def max_length(self) -> int:
        return int(self.encodings.input_ids.shape[1])

    def subset(self, indices: np.ndarray) -> "TaskData":
        """A new :class:`TaskData` restricted to ``indices``."""
        return TaskData(
            name=self.name,
            task_type=self.task_type,
            encodings=Encoding(
                input_ids=self.encodings.input_ids[indices],
                attention_mask=self.encodings.attention_mask[indices],
                token_type_ids=self.encodings.token_type_ids[indices],
            ),
            labels=self.labels[indices],
            num_labels=self.num_labels,
        )


@dataclass(frozen=True)
class TaskSplits:
    """Train/eval splits plus the tokenizer that encoded them."""

    train: TaskData
    eval: TaskData
    tokenizer: Tokenizer
