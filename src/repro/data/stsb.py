"""Synthetic STS-B: graded sentence-pair similarity, scored by Spearman rho.

Structure mirrors GLUE STS-B — a sentence pair with a continuous similarity
score in [0, 5] and Spearman rank correlation as the metric.  Similarity is
defined from the two sentences' weighted value sums: identical sums score
5.0, and the score decreases linearly with the absolute sum difference.
Because rank correlation tolerates monotone distortions of the predictions,
this task — like the paper's STS-B — degrades *less* under quantization than
the accuracy-scored MNLI.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic_language import SyntheticLanguage, default_language
from repro.data.task import TaskData, TaskSplits
from repro.tokenization.tokenizer import Tokenizer
from repro.utils.rng import derive_rng, ensure_rng

MAX_SCORE = 5.0
MAX_SUM = 8


def _make_example(
    language: SyntheticLanguage, rng: np.random.Generator
) -> tuple[str, str, float]:
    sum_a = int(rng.integers(0, MAX_SUM + 1))
    sum_b = int(rng.integers(0, MAX_SUM + 1))
    similarity = MAX_SCORE * (1.0 - abs(sum_a - sum_b) / MAX_SUM)
    return (
        language.value_sentence(sum_a, rng),
        language.value_sentence(sum_b, rng),
        similarity,
    )


def generate_stsb(
    num_train: int = 3000,
    num_eval: int = 400,
    max_length: int = 28,
    language: SyntheticLanguage | None = None,
    rng: int | np.random.Generator | None = 0,
) -> TaskSplits:
    """Generate train/eval splits of the synthetic STS-B task."""
    language = language or default_language()
    tokenizer = Tokenizer(language.build_vocabulary())
    base = ensure_rng(rng)

    def build(count: int, split: str) -> TaskData:
        gen = derive_rng(base, "stsb", split)
        pairs, scores = [], []
        for _ in range(count):
            text_a, text_b, score = _make_example(language, gen)
            pairs.append((text_a, text_b))
            scores.append(score)
        return TaskData(
            name="stsb",
            task_type="regression",
            encodings=tokenizer.encode_batch(pairs, max_length=max_length),
            labels=np.array(scores, dtype=np.float64),
        )

    return TaskSplits(
        train=build(num_train, "train"),
        eval=build(num_eval, "eval"),
        tokenizer=tokenizer,
    )
