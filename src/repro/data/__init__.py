"""Synthetic evaluation tasks: MNLI-like, STS-B-like, SQuAD-like."""

from repro.data.batching import iterate_batches
from repro.data.metrics import accuracy, metric_for_task, span_f1, spearman
from repro.data.mnli import LABELS as MNLI_LABELS
from repro.data.mnli import generate_mnli
from repro.data.squad import generate_squad
from repro.data.stsb import generate_stsb
from repro.data.synthetic_language import SyntheticLanguage, default_language
from repro.data.task import TaskData, TaskSplits

__all__ = [
    "MNLI_LABELS",
    "SyntheticLanguage",
    "TaskData",
    "TaskSplits",
    "accuracy",
    "default_language",
    "generate_mnli",
    "generate_squad",
    "generate_stsb",
    "iterate_batches",
    "metric_for_task",
    "span_f1",
    "spearman",
]
