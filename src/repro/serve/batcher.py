"""Micro-batching queue: amortize lookup-kernel forwards across requests.

The lookup kernels are batch-oriented — one ``np.add.reduceat`` sweep costs
nearly the same for 1 row as for 16 (the gather dominates, and the prepared
permutation is reused) — so a serving path that forwards each HTTP request
alone leaves most of the kernel's throughput on the floor.
:class:`MicroBatcher` collects concurrent requests for up to
``batch_window`` seconds (or ``max_batch`` items, whichever comes first),
pads them into one ``(batch, seq)`` tensor with an attention mask, runs a
single model forward per model, and fans the pooled outputs back to the
waiting handler threads.

Threading contract:

* HTTP handler threads call :meth:`submit` (admission-gated, non-blocking)
  then :meth:`wait` (blocks until the batch completes or the request's
  deadline expires → :class:`~repro.errors.RequestTimeoutError`).
* One worker thread drains the queue.  A single worker serializes forwards
  deliberately: NumPy kernels are already multi-core via BLAS-free
  vectorized sweeps, and one-at-a-time batches keep per-request latency
  predictable.
* Spans: the handler's ``serve.request`` span wraps :meth:`wait`, which
  nests ``serve.queue_wait`` (admission → batch start, measured on the
  handler thread).  The worker emits ``serve.batch`` under the span context
  captured from the batch's first request (see
  :func:`repro.obs.recorder.capture_context`), so batch timings attach to
  the trace tree rather than floating parentless.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.errors import RequestTimeoutError, ServeError
from repro.obs import recorder as obs
from repro.serve.admission import AdmissionController
from repro.serve.registry import ModelRegistry


class PendingRequest:
    """One admitted request traveling from handler thread to worker and back."""

    __slots__ = (
        "model", "input_ids", "token_type_ids", "context", "admitted_at",
        "deadline", "started", "done", "lock", "abandoned", "result", "error",
    )

    def __init__(self, model: str, input_ids: np.ndarray,
                 token_type_ids: np.ndarray | None, deadline: float):
        self.model = model
        self.input_ids = input_ids
        self.token_type_ids = token_type_ids
        self.context = obs.capture_context()
        self.admitted_at = time.perf_counter()
        self.deadline = deadline
        self.started = threading.Event()
        self.done = threading.Event()
        self.lock = threading.Lock()
        self.abandoned = False
        self.result: dict | None = None
        self.error: Exception | None = None


class MicroBatcher:
    """Collect requests into batches; one model forward per batch per model."""

    def __init__(self, registry: ModelRegistry, admission: AdmissionController,
                 batch_window: float = 0.005, max_batch: int = 8):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        self.registry = registry
        self.admission = admission
        self.batch_window = batch_window
        self.max_batch = max_batch
        self._queue: deque[PendingRequest] = deque()
        self._not_empty = threading.Condition()
        self._stop = False
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------ submission
    def submit(self, model: str, input_ids, token_type_ids=None) -> PendingRequest:
        """Validate, admit, and enqueue one request (non-blocking).

        Raises :class:`~repro.errors.ModelNotFoundError` for unknown models,
        :class:`~repro.errors.ShapeError`-free ``ValueError`` for malformed
        inputs, :class:`~repro.errors.QueueFullError` at the admission bound,
        and :class:`~repro.errors.ServeError` after shutdown began.
        """
        entry = self.registry.get(model)  # 404 before burning a queue slot
        ids = np.asarray(input_ids)
        if ids.ndim != 1 or ids.size == 0:
            raise ValueError(
                f"input_ids must be a non-empty 1-D token sequence, got shape {ids.shape}"
            )
        if not np.issubdtype(ids.dtype, np.integer):
            raise ValueError(f"input_ids must be integers, got dtype {ids.dtype}")
        if ids.size > entry.max_position:
            raise ValueError(
                f"sequence length {ids.size} exceeds model {model!r} "
                f"max_position {entry.max_position}"
            )
        if ids.min() < 0 or ids.max() >= entry.vocab_size:
            raise ValueError(
                f"token ids must be in [0, {entry.vocab_size}) for model {model!r}"
            )
        types = None
        if token_type_ids is not None:
            types = np.asarray(token_type_ids)
            if types.shape != ids.shape:
                raise ValueError(
                    f"token_type_ids shape {types.shape} must match "
                    f"input_ids shape {ids.shape}"
                )
        self.admission.admit()
        pending = PendingRequest(
            model, ids.astype(np.int64), types,
            deadline=time.perf_counter() + self.admission.request_timeout,
        )
        with self._not_empty:
            if self._stop:
                self.admission.release()
                raise ServeError("server is shutting down")
            self._queue.append(pending)
            self._not_empty.notify()
        obs.counter("serve.submitted", model=model)
        return pending

    def wait(self, pending: PendingRequest) -> dict:
        """Block until ``pending`` completes; its deadline bounds the wait.

        Call inside the handler's ``serve.request`` span: the queue wait is
        emitted here as a nested ``serve.queue_wait`` span.
        """
        with obs.span("serve.queue_wait", model=pending.model):
            pending.started.wait(max(0.0, pending.deadline - time.perf_counter()))
        pending.done.wait(max(0.0, pending.deadline - time.perf_counter()))
        with pending.lock:
            if not pending.done.is_set():
                # Handler gives up; the worker must not touch this request
                # (and must not release its admission slot — we do, here).
                pending.abandoned = True
        if pending.done.is_set():
            if pending.error is not None:
                raise pending.error
            assert pending.result is not None
            return pending.result
        self.admission.release()
        obs.counter("serve.timeouts", model=pending.model)
        raise RequestTimeoutError(
            f"request deadline of {self.admission.request_timeout:.3f}s expired "
            f"before its batch completed"
        )

    # ---------------------------------------------------------------- worker
    def _run(self) -> None:
        while True:
            with self._not_empty:
                while not self._queue and not self._stop:
                    self._not_empty.wait(timeout=0.05)
                if not self._queue:
                    if self._stop:
                        return
                    continue
                batch = [self._queue.popleft()]
            window_end = time.perf_counter() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = window_end - time.perf_counter()
                if remaining <= 0:
                    break
                with self._not_empty:
                    if not self._queue:
                        self._not_empty.wait(timeout=remaining)
                    if self._queue:
                        batch.append(self._queue.popleft())
            groups: dict[str, list[PendingRequest]] = {}
            for pending in batch:
                groups.setdefault(pending.model, []).append(pending)
            for model, group in groups.items():
                self._run_group(model, group)

    def _claim(self, pending: PendingRequest) -> bool:
        """True if the request is still live (not abandoned, not expired)."""
        now = time.perf_counter()
        with pending.lock:
            if pending.abandoned:
                return False
            if now >= pending.deadline:
                pending.error = RequestTimeoutError(
                    "request expired in queue before a batch slot opened"
                )
                pending.done.set()
                self.admission.release()
                obs.counter("serve.expired_in_queue", model=pending.model)
                return False
        pending.started.set()
        return True

    def _complete(self, pending: PendingRequest, result: dict | None,
                  error: Exception | None) -> None:
        with pending.lock:
            if pending.abandoned:
                return  # handler timed out mid-batch and released the slot
            pending.result = result
            pending.error = error
            pending.done.set()
        self.admission.release()

    def _run_group(self, model: str, group: list[PendingRequest]) -> None:
        live = [pending for pending in group if self._claim(pending)]
        if not live:
            return
        # Attach the batch span to the first member's request trace; a batch
        # has many parents but the schema has one, and an arbitrary-but-
        # deterministic choice beats a parentless span.
        with obs.use_context(live[0].context):
            with obs.span("serve.batch", model=model, batch_size=len(live)):
                try:
                    result_rows = self._forward(model, live)
                    for pending, row in zip(live, result_rows):
                        self._complete(pending, row, None)
                except Exception as exc:  # noqa: BLE001 — fan the error out
                    for pending in live:
                        self._complete(pending, None, exc)
        obs.counter("serve.batches", model=model)
        obs.histogram("serve.batch_size", len(live), model=model)

    def _forward(self, model: str, live: list[PendingRequest]) -> list[dict]:
        lengths = [pending.input_ids.size for pending in live]
        width = max(lengths)
        input_ids = np.zeros((len(live), width), dtype=np.int64)
        attention_mask = np.zeros((len(live), width), dtype=np.int64)
        token_type_ids = np.zeros((len(live), width), dtype=np.int64)
        for row, pending in enumerate(live):
            size = pending.input_ids.size
            input_ids[row, :size] = pending.input_ids
            attention_mask[row, :size] = 1
            if pending.token_type_ids is not None:
                token_type_ids[row, :size] = pending.token_type_ids
        with self.registry.lease(model) as entry:
            _, pooled = entry.model(input_ids, attention_mask, token_type_ids)
            version = entry.version
        pooled_rows = np.asarray(pooled.data, dtype=np.float64)
        now = time.perf_counter()
        return [
            {
                "model": model,
                "version": version,
                "pooled": pooled_rows[row, :].tolist(),
                "batch_size": len(live),
                "latency_ms": round((now - pending.admitted_at) * 1000.0, 3),
            }
            for row, pending in enumerate(live)
        ]

    # -------------------------------------------------------------- shutdown
    def close(self, drain: bool = True) -> None:
        """Stop the worker.  ``drain=True`` finishes queued requests first;
        ``drain=False`` fails them with :class:`ServeError`."""
        with self._not_empty:
            self._stop = True
            if not drain:
                dropped = list(self._queue)
                self._queue.clear()
            else:
                dropped = []
            self._not_empty.notify_all()
        for pending in dropped:
            if self._claim(pending):
                self._complete(pending, None, ServeError("server shut down"))
        self._worker.join(timeout=30.0)
