"""Micro-batching queue: amortize lookup-kernel forwards across requests.

The lookup kernels are batch-oriented — one ``np.add.reduceat`` sweep costs
nearly the same for 1 row as for 16 (the gather dominates, and the prepared
permutation is reused) — so a serving path that forwards each HTTP request
alone leaves most of the kernel's throughput on the floor.
:class:`MicroBatcher` collects concurrent requests for up to
``batch_window`` seconds (or ``max_batch`` items, whichever comes first),
pads them into one ``(batch, seq)`` tensor with an attention mask, runs a
single model forward per model, and fans the pooled outputs back to the
waiting handler threads.

Threading contract:

* HTTP handler threads call :meth:`submit` (admission-gated, non-blocking)
  then :meth:`wait` (blocks until the batch completes or the request's
  deadline expires → :class:`~repro.errors.RequestTimeoutError`).
* One worker thread drains the queue.  A single worker serializes forwards
  deliberately: NumPy kernels are already multi-core via BLAS-free
  vectorized sweeps, and one-at-a-time batches keep per-request latency
  predictable.
* A **watchdog thread** supervises the worker (DESIGN.md §5i).  Every
  forward registers an in-flight record with a deadline
  (``forward_timeout`` seconds); the watchdog failing that deadline — or
  finding the worker thread dead — fails the in-flight batch with a
  *transient* :class:`~repro.errors.ForwardTimeoutError` /
  :class:`~repro.errors.BatchWorkerError`, reports it to the health
  monitor, and starts a replacement worker under a new generation.  A
  superseded worker that eventually un-wedges sees its generation is stale,
  discards its late results, and exits — so one hung mmap read stalls the
  process for at most ``forward_timeout``, not forever.
* Spans: the handler's ``serve.request`` span wraps :meth:`wait`, which
  nests ``serve.queue_wait`` (admission → batch start, measured on the
  handler thread).  The worker emits ``serve.batch`` under the span context
  captured from the batch's first request (see
  :func:`repro.obs.recorder.capture_context`), so batch timings attach to
  the trace tree rather than floating parentless.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.errors import (
    BatchWorkerError,
    ForwardTimeoutError,
    RequestTimeoutError,
    ServeError,
)
from repro.obs import recorder as obs
from repro.serve.admission import AdmissionController
from repro.serve.registry import ModelRegistry

#: How often the watchdog sweeps for a wedged forward or a dead worker.
WATCHDOG_POLL_INTERVAL = 0.05


class PendingRequest:
    """One admitted request traveling from handler thread to worker and back."""

    __slots__ = (
        "model", "input_ids", "token_type_ids", "context", "admitted_at",
        "deadline", "started", "done", "lock", "abandoned", "result", "error",
    )

    def __init__(self, model: str, input_ids: np.ndarray,
                 token_type_ids: np.ndarray | None, deadline: float):
        self.model = model
        self.input_ids = input_ids
        self.token_type_ids = token_type_ids
        self.context = obs.capture_context()
        self.admitted_at = time.perf_counter()
        self.deadline = deadline
        self.started = threading.Event()
        self.done = threading.Event()
        self.lock = threading.Lock()
        self.abandoned = False
        self.result: dict | None = None
        self.error: Exception | None = None


class _InflightBatch:
    """One forward in progress, visible to the watchdog.

    ``aborted`` is the handoff bit: whoever sets it first (the watchdog on
    deadline/death, under ``MicroBatcher._inflight_lock``) owns failing the
    batch's requests; the worker checks it after the forward returns and
    discards late results instead of double-completing.
    """

    __slots__ = ("model", "live", "started_at", "deadline", "aborted")

    def __init__(self, model: str, live: list[PendingRequest],
                 started_at: float, deadline: float | None):
        self.model = model
        self.live = live
        self.started_at = started_at
        self.deadline = deadline
        self.aborted = False


class MicroBatcher:
    """Collect requests into batches; one model forward per batch per model.

    ``forward_timeout`` arms the watchdog's per-forward deadline (None
    disables it; dead-worker detection runs either way).  ``health`` is an
    optional :class:`~repro.serve.health.HealthMonitor`: quarantined models
    are rejected at :meth:`submit` and every batch outcome is reported.
    ``fault`` is an optional serve-path fault injector
    (:func:`repro.testing.faults.serve_injector_from_env`) called as
    ``fault("forward", model)`` before each forward.
    """

    def __init__(self, registry: ModelRegistry, admission: AdmissionController,
                 batch_window: float = 0.005, max_batch: int = 8,
                 forward_timeout: float | None = None, health=None,
                 fault=None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if forward_timeout is not None and forward_timeout <= 0:
            raise ValueError(
                f"forward_timeout must be > 0 or None, got {forward_timeout}")
        self.registry = registry
        self.admission = admission
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.forward_timeout = forward_timeout
        self.health = health
        self.fault = fault
        self._queue: deque[PendingRequest] = deque()
        self._not_empty = threading.Condition()
        self._stop = False
        self._generation = 0
        self._inflight_lock = threading.Lock()
        self._inflight: _InflightBatch | None = None
        self._watchdog_stop = threading.Event()
        self._worker = self._spawn_worker()
        poll = WATCHDOG_POLL_INTERVAL
        if forward_timeout is not None:
            poll = min(poll, max(forward_timeout / 4.0, 0.001))
        self._watchdog_poll = poll
        self._watchdog = threading.Thread(
            target=self._watch, name="repro-serve-batch-watchdog", daemon=True
        )
        self._watchdog.start()

    def _spawn_worker(self) -> threading.Thread:
        """Start a worker thread for the next generation (caller must hold
        ``_not_empty`` or be the constructor)."""
        self._generation += 1
        worker = threading.Thread(
            target=self._run, args=(self._generation,),
            name=f"repro-serve-batcher-{self._generation}", daemon=True,
        )
        worker.start()
        return worker

    # ------------------------------------------------------------ submission
    def submit(self, model: str, input_ids, token_type_ids=None) -> PendingRequest:
        """Validate, admit, and enqueue one request (non-blocking).

        Raises :class:`~repro.errors.ModelNotFoundError` for unknown models,
        :class:`~repro.errors.ModelQuarantinedError` for quarantined ones
        (503 + Retry-After before any queue slot is burned),
        :class:`~repro.errors.ShapeError`-free ``ValueError`` for malformed
        inputs, :class:`~repro.errors.QueueFullError` at the admission bound,
        and :class:`~repro.errors.ServeError` after shutdown began.
        """
        entry = self.registry.get(model)  # 404 before burning a queue slot
        if self.health is not None:
            self.health.admit(model)  # 503 + Retry-After while quarantined
        ids = np.asarray(input_ids)
        if ids.ndim != 1 or ids.size == 0:
            raise ValueError(
                f"input_ids must be a non-empty 1-D token sequence, got shape {ids.shape}"
            )
        if not np.issubdtype(ids.dtype, np.integer):
            raise ValueError(f"input_ids must be integers, got dtype {ids.dtype}")
        if ids.size > entry.max_position:
            raise ValueError(
                f"sequence length {ids.size} exceeds model {model!r} "
                f"max_position {entry.max_position}"
            )
        if ids.min() < 0 or ids.max() >= entry.vocab_size:
            raise ValueError(
                f"token ids must be in [0, {entry.vocab_size}) for model {model!r}"
            )
        types = None
        if token_type_ids is not None:
            types = np.asarray(token_type_ids)
            if types.shape != ids.shape:
                raise ValueError(
                    f"token_type_ids shape {types.shape} must match "
                    f"input_ids shape {ids.shape}"
                )
        self.admission.admit()
        pending = PendingRequest(
            model, ids.astype(np.int64), types,
            deadline=time.perf_counter() + self.admission.request_timeout,
        )
        with self._not_empty:
            if self._stop:
                self.admission.release()
                raise ServeError("server is shutting down")
            self._queue.append(pending)
            self._not_empty.notify()
        obs.counter("serve.submitted", model=model)
        return pending

    def wait(self, pending: PendingRequest) -> dict:
        """Block until ``pending`` completes; its deadline bounds the wait.

        Call inside the handler's ``serve.request`` span: the queue wait is
        emitted here as a nested ``serve.queue_wait`` span.
        """
        with obs.span("serve.queue_wait", model=pending.model):
            pending.started.wait(max(0.0, pending.deadline - time.perf_counter()))
        pending.done.wait(max(0.0, pending.deadline - time.perf_counter()))
        with pending.lock:
            if not pending.done.is_set():
                # Handler gives up; the worker must not touch this request
                # (and must not release its admission slot — we do, here).
                pending.abandoned = True
        if pending.done.is_set():
            if pending.error is not None:
                raise pending.error
            assert pending.result is not None
            return pending.result
        self.admission.release()
        obs.counter("serve.timeouts", model=pending.model)
        raise RequestTimeoutError(
            f"request deadline of {self.admission.request_timeout:.3f}s expired "
            f"before its batch completed"
        )

    # ---------------------------------------------------------------- worker
    def _run(self, generation: int) -> None:
        while True:
            with self._not_empty:
                if self._generation != generation:
                    return  # superseded by the watchdog; a successor drains
                while not self._queue and not self._stop:
                    self._not_empty.wait(timeout=0.05)
                    if self._generation != generation:
                        return
                if not self._queue:
                    if self._stop:
                        return
                    continue
                batch = [self._queue.popleft()]
            window_end = time.perf_counter() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = window_end - time.perf_counter()
                if remaining <= 0:
                    break
                with self._not_empty:
                    if not self._queue:
                        self._not_empty.wait(timeout=remaining)
                    if self._queue:
                        batch.append(self._queue.popleft())
            groups: dict[str, list[PendingRequest]] = {}
            for pending in batch:
                groups.setdefault(pending.model, []).append(pending)
            for model, group in groups.items():
                self._run_group(model, group)

    def _claim(self, pending: PendingRequest) -> bool:
        """True if the request is still live (not abandoned, not expired)."""
        now = time.perf_counter()
        with pending.lock:
            if pending.abandoned:
                return False
            if now >= pending.deadline:
                pending.error = RequestTimeoutError(
                    "request expired in queue before a batch slot opened"
                )
                pending.done.set()
                self.admission.release()
                obs.counter("serve.expired_in_queue", model=pending.model)
                return False
        pending.started.set()
        return True

    def _complete(self, pending: PendingRequest, result: dict | None,
                  error: Exception | None) -> None:
        with pending.lock:
            if pending.abandoned:
                return  # handler timed out mid-batch and released the slot
            if pending.done.is_set():
                return  # the watchdog already failed this request
            pending.result = result
            pending.error = error
            pending.done.set()
        self.admission.release()

    def _run_group(self, model: str, group: list[PendingRequest]) -> None:
        live = [pending for pending in group if self._claim(pending)]
        if not live:
            return
        # Attach the batch span to the first member's request trace; a batch
        # has many parents but the schema has one, and an arbitrary-but-
        # deterministic choice beats a parentless span.
        with obs.use_context(live[0].context):
            with obs.span("serve.batch", model=model, batch_size=len(live)):
                inflight = self._begin_forward(model, live)
                try:
                    result_rows, error = self._forward(model, live), None
                except Exception as exc:  # noqa: BLE001 — fan the error out
                    result_rows, error = None, exc
                if self._end_forward(inflight):
                    return  # aborted: the watchdog failed + reported this batch
                if error is None:
                    for pending, row in zip(live, result_rows):
                        self._complete(pending, row, None)
                    if self.health is not None:
                        self.health.report_success(model)
                else:
                    for pending in live:
                        self._complete(pending, None, error)
                    if self.health is not None:
                        self.health.report_failure(model, error)
        obs.counter("serve.batches", model=model)
        obs.histogram("serve.batch_size", len(live), model=model)

    def _begin_forward(self, model: str,
                       live: list[PendingRequest]) -> _InflightBatch:
        now = time.perf_counter()
        deadline = None if self.forward_timeout is None else now + self.forward_timeout
        inflight = _InflightBatch(model, live, now, deadline)
        with self._inflight_lock:
            self._inflight = inflight
        return inflight

    def _end_forward(self, inflight: _InflightBatch) -> bool:
        """Clear the in-flight record; True if the watchdog aborted it."""
        with self._inflight_lock:
            if self._inflight is inflight:
                self._inflight = None
            return inflight.aborted

    def _forward(self, model: str, live: list[PendingRequest]) -> list[dict]:
        if self.fault is not None:
            self.fault("forward", model)
        lengths = [pending.input_ids.size for pending in live]
        width = max(lengths)
        input_ids = np.zeros((len(live), width), dtype=np.int64)
        attention_mask = np.zeros((len(live), width), dtype=np.int64)
        token_type_ids = np.zeros((len(live), width), dtype=np.int64)
        for row, pending in enumerate(live):
            size = pending.input_ids.size
            input_ids[row, :size] = pending.input_ids
            attention_mask[row, :size] = 1
            if pending.token_type_ids is not None:
                token_type_ids[row, :size] = pending.token_type_ids
        with self.registry.lease(model) as entry:
            _, pooled = entry.model(input_ids, attention_mask, token_type_ids)
            version = entry.version
        pooled_rows = np.asarray(pooled.data, dtype=np.float64)
        now = time.perf_counter()
        return [
            {
                "model": model,
                "version": version,
                "pooled": pooled_rows[row, :].tolist(),
                "batch_size": len(live),
                "latency_ms": round((now - pending.admitted_at) * 1000.0, 3),
            }
            for row, pending in enumerate(live)
        ]

    # -------------------------------------------------------------- watchdog
    def _watch(self) -> None:
        while not self._watchdog_stop.wait(self._watchdog_poll):
            self.check_worker()

    def check_worker(self, now: float | None = None) -> str | None:
        """One watchdog sweep: replace a wedged or dead worker.

        Clock-injectable for tests (``now`` in ``time.perf_counter``
        terms).  Returns the replacement reason (``"forward-timeout"`` /
        ``"worker-died"``) or None when the worker is fine.
        """
        now = time.perf_counter() if now is None else now
        with self._not_empty:
            if self._stop:
                return None
            worker = self._worker
            generation = self._generation
        with self._inflight_lock:
            inflight = self._inflight
            wedged = (
                inflight is not None
                and not inflight.aborted
                and inflight.deadline is not None
                and now >= inflight.deadline
            )
            if wedged:
                inflight.aborted = True  # we own failing this batch now
        if wedged:
            error = ForwardTimeoutError(
                f"forward for model {inflight.model!r} exceeded the "
                f"{self.forward_timeout:g}s forward timeout; the batch "
                f"worker was replaced"
            )
            self._abort_batch(inflight, error, "forward-timeout", generation)
            return "forward-timeout"
        if not worker.is_alive():
            # The worker died outside close() — a BaseException escaped, or
            # the interpreter killed the thread.  Fail whatever it had in
            # flight and hand the queue to a fresh worker.
            with self._inflight_lock:
                inflight = self._inflight
                if inflight is not None and not inflight.aborted:
                    inflight.aborted = True
                else:
                    inflight = None
            error = BatchWorkerError(
                "batch worker died mid-forward; the batch was failed and "
                "the worker replaced"
            )
            self._abort_batch(inflight, error, "worker-died", generation)
            return "worker-died"
        return None

    def _abort_batch(self, inflight: _InflightBatch | None, error: Exception,
                     reason: str, generation: int) -> None:
        """Fail an aborted batch, report health, and respawn the worker."""
        if inflight is not None:
            for pending in inflight.live:
                self._complete(pending, None, error)
            if self.health is not None:
                self.health.report_failure(inflight.model, error)
        with self._not_empty:
            if self._stop or self._generation != generation:
                return  # already replaced (or shutting down)
            self._worker = self._spawn_worker()
            self._not_empty.notify_all()
        obs.counter(
            "serve.worker_replaced", reason=reason,
            model=inflight.model if inflight is not None else None,
        )

    # -------------------------------------------------------------- shutdown
    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the worker.  ``drain=True`` finishes queued requests first;
        ``drain=False`` fails them with :class:`ServeError`.

        A worker that is already dead cannot drain, so its queue is failed
        rather than left waiting out request deadlines; a worker that fails
        to join within ``timeout`` raises :class:`ServeError` after failing
        whatever it left queued (callers still tearing down other resources
        should wrap this call).
        """
        self._watchdog_stop.set()
        with self._not_empty:
            self._stop = True
            worker = self._worker
            if not drain or not worker.is_alive():
                dropped = list(self._queue)
                self._queue.clear()
            else:
                dropped = []
            self._not_empty.notify_all()
        self._watchdog.join(timeout=5.0)
        shutdown_error = ServeError(
            "server shut down" if drain is False or worker.is_alive()
            else "batch worker died before shutdown; request abandoned"
        )
        for pending in dropped:
            if self._claim(pending):
                self._complete(pending, None, shutdown_error)
        worker.join(timeout=timeout)
        if worker.is_alive():
            # Wedged mid-forward with no watchdog left to replace it: the
            # queue will never drain, so fail it loudly instead of letting
            # requests wait out their deadlines in silence.
            with self._not_empty:
                stuck = list(self._queue)
                self._queue.clear()
            for pending in stuck:
                if self._claim(pending):
                    self._complete(pending, None, ServeError(
                        "batch worker failed to stop; request abandoned"
                    ))
            obs.counter("serve.worker_join_timeouts")
            raise ServeError(
                f"batch worker failed to stop within {timeout:g}s of close(); "
                f"{len(stuck)} queued request(s) were failed"
            )
