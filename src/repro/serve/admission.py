"""Admission control: bound the pending queue, deadline every request.

A micro-batching server has exactly two overload failure modes and this
module maps each to an HTTP-shaped outcome *before* any compute is spent:

* **Queue full** — more requests are pending than :attr:`max_pending`.
  Admission raises :class:`~repro.errors.QueueFullError` carrying a
  ``retry_after`` estimate (queue depth / drain rate), which the HTTP layer
  turns into ``429`` + ``Retry-After``.  Rejecting at the door keeps queue
  wait bounded instead of letting latency grow without limit.
* **Deadline expired** — a request waited longer than
  :attr:`request_timeout`.  The waiting handler gets
  :class:`~repro.errors.RequestTimeoutError` (→ ``504``), and the batcher
  skips expired requests at dequeue so a stale backlog never occupies a
  batch slot.

The controller is a counting gate, not a queue: the batcher owns the queue,
admission owns the bound.  ``slots`` are acquired at submit and released
when the request leaves the system (completed, rejected, or expired), so
``depth`` is the live number of requests anywhere between admission and
response.
"""

from __future__ import annotations

import math
import threading

from repro.errors import QueueFullError
from repro.obs import recorder as obs


class AdmissionController:
    """Counting gate in front of the batch queue.

    Parameters
    ----------
    max_pending:
        Bound on concurrently admitted requests (queued + in-batch).
    request_timeout:
        Per-request deadline in seconds, measured from admission.
    drain_rate:
        Estimated requests/second the batcher retires; only used to shape
        the ``Retry-After`` hint on rejection.
    """

    def __init__(self, max_pending: int, request_timeout: float,
                 drain_rate: float = 64.0):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {request_timeout}")
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self.drain_rate = drain_rate
        self._lock = threading.Lock()
        self._depth = 0

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def retry_after(self, depth: int) -> float:
        """Whole seconds until a full queue plausibly has room again."""
        return float(max(1, math.ceil(depth / max(self.drain_rate, 1e-9))))

    def admit(self) -> None:
        """Take one slot or raise :class:`QueueFullError` (→ 429)."""
        with self._lock:
            if self._depth >= self.max_pending:
                depth = self._depth
                obs.counter("serve.rejected", reason="queue_full")
                raise QueueFullError(
                    f"queue full: {depth} request(s) pending "
                    f"(bound {self.max_pending})",
                    retry_after=self.retry_after(depth),
                )
            self._depth += 1
            depth = self._depth
        obs.gauge("serve.queue_depth", depth)

    def release(self) -> None:
        """Return a slot (request completed, expired, or failed)."""
        with self._lock:
            self._depth = max(0, self._depth - 1)
            depth = self._depth
        obs.gauge("serve.queue_depth", depth)
