"""HTTP front: JSON request path over the registry and micro-batcher.

Stdlib-only (``http.server``): a :class:`~http.server.ThreadingHTTPServer`
where each connection's handler thread submits into the shared
:class:`~repro.serve.batcher.MicroBatcher` and blocks for its result, so
concurrency is bounded by admission control rather than by thread count.

Routes::

    GET  /healthz                  # 200 once all models are live
    GET  /metrics                  # aggregated MetricsSnapshot as JSON
    POST /models/<name>/predict    # {"input_ids": [..]} -> pooled vector
    POST /models/<name>/reload     # hot-swap <name> from its archive path

Status mapping (the admission contract): unknown model → 404, malformed
body → 400, queue full → 429 with ``Retry-After``, request deadline → 504,
model load failure on reload → 500 *with the old model still serving*.
Quarantined models (see :mod:`repro.serve.health`) answer 503 with
``Retry-After`` at admission; a batch failed by the worker watchdog
(wedged or dead worker) also maps to 503 + ``Retry-After: 1`` because a
replacement worker is already running.

Every request runs inside a ``serve.request`` span (model, route, status)
with a nested ``serve.queue_wait`` span; batches emit ``serve.batch`` from
the worker (see :mod:`repro.serve.batcher`).  :func:`run_server` is the
``repro serve`` entrypoint: it wires :class:`~repro.jobs.signals.
GracefulInterrupt` so the first SIGINT/SIGTERM drains in-flight requests
and exits :data:`~repro.jobs.signals.EXIT_INTERRUPTED` (75), the same
contract as durable quantization jobs.
"""

from __future__ import annotations

import functools
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import obs
from repro.errors import (
    BatchWorkerError,
    ConfigError,
    ModelNotFoundError,
    ModelQuarantinedError,
    QueueFullError,
    RequestTimeoutError,
    ReproError,
    SerializationError,
    ServeError,
)
from repro.obs import recorder as obs_recorder
from repro.serve.admission import AdmissionController
from repro.serve.batcher import MicroBatcher
from repro.serve.health import HEALTHY, HealthMonitor, HealthPolicy
from repro.serve.registry import ModelRegistry

#: Request bodies above this are rejected outright (413) before parsing.
MAX_BODY_BYTES = 1 << 20


class _HttpListener(ThreadingHTTPServer):
    daemon_threads = True
    # The stdlib default backlog (5) resets connections under the exact
    # burst pattern micro-batching exists for; admission control — not the
    # kernel's accept queue — is where overload is supposed to be decided.
    request_queue_size = 128


def _snapshot_payload(snapshot) -> dict:
    return {
        "events": snapshot.events,
        "counters": dict(sorted(snapshot.counters.items())),
        "gauges": dict(sorted(snapshot.gauges.items())),
        "histograms": {
            name: {"count": stats.count, "mean": stats.mean,
                   "min": stats.minimum, "max": stats.maximum}
            for name, stats in sorted(snapshot.histograms.items())
        },
        "spans": {
            name: {"count": stats.count,
                   "total_ms": stats.total_seconds * 1000.0,
                   "mean_ms": stats.mean_seconds * 1000.0}
            for name, stats in sorted(snapshot.spans.items())
        },
    }


class QuantServer:
    """Bundles registry + admission + batcher behind one HTTP listener."""

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.005,
        max_batch: int = 8,
        max_pending: int = 64,
        request_timeout: float = 10.0,
        forward_timeout: float | None = 30.0,
        health_policy: HealthPolicy | None = None,
        fault=None,
    ):
        self.registry = registry
        if fault is not None and registry.fault is None:
            registry.fault = fault  # slow-load reaches reloads too
        self.admission = AdmissionController(
            max_pending=max_pending, request_timeout=request_timeout
        )
        self.health = HealthMonitor(registry, policy=health_policy)
        self.batcher = MicroBatcher(
            registry, self.admission,
            batch_window=batch_window, max_batch=max_batch,
            forward_timeout=forward_timeout, health=self.health, fault=fault,
        )
        # /metrics reads this; bounded memory for an unbounded request count.
        self.metrics_sink = obs.install(obs.SnapshotSink())
        handler = _make_handler(self)
        self._httpd = _HttpListener((host, port), handler)
        self.host, self.port = self._httpd.server_address[:2]

    # ------------------------------------------------------------- lifecycle
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` is called."""
        self._httpd.serve_forever(poll_interval=0.1)

    def serve_in_background(self) -> threading.Thread:
        """Run the accept loop on a daemon thread (tests, embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop accepting, drain queued requests, release every archive."""
        self._httpd.shutdown()
        self._httpd.server_close()
        try:
            self.batcher.close(drain=True)
        finally:
            # A wedged worker makes close() raise; archives and background
            # reloaders must still be released on the way out.
            self.health.close()
            self.registry.close()
            obs.uninstall(self.metrics_sink)

    def __enter__(self) -> "QuantServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()


def _make_handler(server: QuantServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        # ------------------------------------------------------------ plumbing
        def log_message(self, format, *args):  # noqa: A002 — stdlib signature
            pass  # request logging goes through obs spans, not stderr

        def _respond(self, status: int, payload: dict,
                     headers: dict | None = None) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            try:
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to salvage

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise ValueError(f"request body of {length} bytes exceeds "
                                 f"{MAX_BODY_BYTES}")
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            return payload

        # -------------------------------------------------------------- routes
        def do_GET(self) -> None:  # noqa: N802 — stdlib casing
            if self.path == "/healthz":
                models = server.registry.describe()
                for name in models:
                    models[name]["health"] = server.health.model(name).describe()
                degraded = any(
                    entry["health"]["state"] != HEALTHY
                    for entry in models.values()
                )
                self._respond(200, {
                    "status": "degraded" if degraded else "ok",
                    "models": models,
                    "queue_depth": server.admission.depth,
                })
            elif self.path == "/metrics":
                self._respond(
                    200, _snapshot_payload(server.metrics_sink.snapshot())
                )
            else:
                self._respond(404, {"error": f"no route {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 — stdlib casing
            parts = self.path.strip("/").split("/")
            if len(parts) == 3 and parts[0] == "models" and parts[2] == "predict":
                self._predict(parts[1])
            elif len(parts) == 3 and parts[0] == "models" and parts[2] == "reload":
                self._reload(parts[1])
            else:
                self._respond(404, {"error": f"no route {self.path!r}"})

        def _predict(self, model: str) -> None:
            with obs_recorder.span(
                "serve.request", model=model, route="predict"
            ) as sp:
                status, payload, headers = self._predict_inner(model)
                sp.set(status=status)
            obs_recorder.counter("serve.requests", model=model, status=status)
            self._respond(status, payload, headers)

        def _predict_inner(self, model: str) -> tuple[int, dict, dict | None]:
            try:
                body = self._read_body()
            except (ValueError, json.JSONDecodeError) as exc:
                return 400, {"error": f"bad request body: {exc}"}, None
            if "input_ids" not in body:
                return 400, {"error": "missing required field 'input_ids'"}, None
            try:
                pending = server.batcher.submit(
                    model, body["input_ids"], body.get("token_type_ids")
                )
            except ModelNotFoundError as exc:
                return 404, {"error": str(exc)}, None
            except ModelQuarantinedError as exc:
                return (503, {"error": str(exc), "retry_after": exc.retry_after,
                              "state": exc.state},
                        {"Retry-After": str(int(exc.retry_after))})
            except QueueFullError as exc:
                return (429, {"error": str(exc), "retry_after": exc.retry_after},
                        {"Retry-After": str(int(exc.retry_after))})
            except (ValueError, TypeError) as exc:
                return 400, {"error": str(exc)}, None
            except ServeError as exc:
                return 503, {"error": str(exc)}, None
            try:
                return 200, server.batcher.wait(pending), None
            except RequestTimeoutError as exc:
                return 504, {"error": str(exc)}, None
            except BatchWorkerError as exc:
                # The watchdog failed this batch (wedged or dead worker) and
                # already started a replacement — safe to retry immediately.
                return (503, {"error": str(exc), "retry_after": 1.0},
                        {"Retry-After": "1"})
            except ReproError as exc:
                return 500, {"error": str(exc)}, None

        def _reload(self, model: str) -> None:
            with obs_recorder.span(
                "serve.request", model=model, route="reload"
            ) as sp:
                try:
                    entry = server.registry.reload(model)
                    server.health.note_manual_reload(model)
                    status, payload = 200, {
                        "status": "reloaded",
                        "model": model,
                        "version": entry.version,
                    }
                except ModelNotFoundError as exc:
                    status, payload = 404, {"error": str(exc)}
                except (SerializationError, ConfigError, OSError,
                        ValueError, ReproError) as exc:
                    # Load or build failure (torn archive, drifted weights,
                    # shape mismatch): the old entry was never swapped out,
                    # so the model keeps serving its previous weights.
                    status, payload = 500, {
                        "error": f"reload failed, previous version still "
                                 f"serving: {exc}"
                    }
                sp.set(status=status)
            obs_recorder.counter("serve.requests", model=model, status=status)
            self._respond(status, payload)

    return Handler


def run_server(
    models: dict[str, tuple[str, str | None]],
    host: str = "127.0.0.1",
    port: int = 8080,
    batch_window: float = 0.005,
    max_batch: int = 8,
    max_pending: int = 64,
    request_timeout: float = 10.0,
    verify: str = "lazy",
    forward_timeout: float | None = 30.0,
    breaker_window: float = 30.0,
    breaker_threshold: int = 5,
    quarantine_reloads: int = 5,
    announce=functools.partial(print, flush=True),  # unbuffered: supervisors
    # and the CI harness watch stdout for the "serving ..." line.
) -> int:
    """Load ``models`` ({name: (path, config-or-None)}), serve until signaled.

    Returns the process exit code: 75 (:data:`EXIT_INTERRUPTED`) after a
    graceful drain, matching the durable-jobs contract.  Must run on the
    main thread (signal handlers).
    """
    from repro.jobs.signals import EXIT_INTERRUPTED, GracefulInterrupt
    from repro.testing.faults import serve_injector_from_env

    fault = serve_injector_from_env()
    policy = HealthPolicy(
        breaker_window=breaker_window,
        breaker_threshold=breaker_threshold,
        quarantine_reloads=quarantine_reloads,
    )
    registry = ModelRegistry(verify=verify, fault=fault)
    for name, (path, config) in models.items():
        entry = registry.register(name, path, config=config)
        announce(
            f"model {name!r}: {entry.path} (config {entry.config_name}, "
            f"{len(entry.qmodel.fc_names)} FC layers, version {entry.version})"
        )
    server = QuantServer(
        registry, host=host, port=port,
        batch_window=batch_window, max_batch=max_batch,
        max_pending=max_pending, request_timeout=request_timeout,
        forward_timeout=forward_timeout, health_policy=policy, fault=fault,
    )
    announce(
        f"serving {len(models)} model(s) on http://{server.host}:{server.port} "
        f"(batch window {batch_window * 1000:g}ms, max batch {max_batch}, "
        f"queue bound {max_pending})"
    )
    with GracefulInterrupt() as interrupt:
        stopper = threading.Thread(
            target=lambda: (interrupt.event.wait(), server._httpd.shutdown()),
            name="repro-serve-stopper", daemon=True,
        )
        stopper.start()
        try:
            server.serve_forever()
        finally:
            server.shutdown()
    if interrupt.triggered:
        announce("drained in-flight requests; archives closed")
        return EXIT_INTERRUPTED
    return 0
