"""Serving layer: compressed-representation inference behind HTTP.

The GOBO argument is about *serving*: latency and energy at inference time,
on weights that never leave their compressed form.  This package is the
system-level realization over the repo's software kernels —

* :mod:`repro.serve.registry` — named, hot-swappable models loaded lazily
  from checksummed archives (``verify="lazy"``) with lookup-kernel Linears
  attached;
* :mod:`repro.serve.batcher` — the micro-batching queue that amortizes one
  kernel forward across concurrent requests, plus the worker watchdog that
  fails wedged batches and replaces dead workers;
* :mod:`repro.serve.admission` — bounded queue depth (429 + Retry-After)
  and per-request deadlines (504);
* :mod:`repro.serve.health` — per-model health state machine (circuit
  breaker, integrity quarantine, automatic reload, half-open probes);
* :mod:`repro.serve.server` — the stdlib ``ThreadingHTTPServer`` JSON front
  and the ``repro serve`` entrypoint with graceful drain (exit 75).

See DESIGN.md §5f (serving) and §5i (self-healing).
"""

from repro.serve.admission import AdmissionController
from repro.serve.batcher import MicroBatcher, PendingRequest
from repro.serve.health import (
    DEGRADED,
    HEALTHY,
    PROBING,
    QUARANTINED,
    HealthMonitor,
    HealthPolicy,
    ModelHealth,
    classify_failure,
)
from repro.serve.registry import ModelEntry, ModelRegistry
from repro.serve.server import QuantServer, run_server

__all__ = [
    "AdmissionController",
    "DEGRADED",
    "HEALTHY",
    "HealthMonitor",
    "HealthPolicy",
    "MicroBatcher",
    "ModelEntry",
    "ModelHealth",
    "ModelRegistry",
    "PROBING",
    "PendingRequest",
    "QUARANTINED",
    "QuantServer",
    "classify_failure",
    "run_server",
]
