"""Per-model health: circuit breaker, quarantine, and self-healing reloads.

The serving layer's failure modes split cleanly in two, and conflating them
is how one bad batch turns into an outage:

* **Transient** — a wedged forward the watchdog killed, a replaced batch
  worker, an I/O blip.  These say nothing durable about the model, so they
  count against a sliding-window circuit breaker: a model accumulating
  ``breaker_threshold`` of them within ``breaker_window`` seconds is
  quarantined for ``cooldown`` seconds, then *probed* (half-open: one
  request at a time) back to health.
* **Integrity** — :class:`~repro.errors.ChecksumMismatchError` or
  :class:`~repro.errors.TruncatedArchiveError` surfacing from a lazy-CRC
  read mid-forward.  The archive backing the model is provably bad, so the
  model quarantines *immediately* and a background reloader re-reads it
  from disk (bounded attempts with the same deterministic jittered backoff
  the job subsystem uses) — the recovery path for "the producer repaired /
  redeployed the file".  A successful reload moves the model to PROBING,
  and probe traffic decides whether it is really back.

State machine (per model)::

    HEALTHY ──transient──► DEGRADED ──breaker trips──► QUARANTINED
       ▲                      │                            │
       │                      └──window drains─────► HEALTHY
       │                                                   │ cooldown /
       │                                                   │ reload OK
       └──────probe successes────── PROBING ◄──────────────┘
                                       │
                                       └──any failure──► QUARANTINED

While QUARANTINED, admission answers :class:`~repro.errors.
ModelQuarantinedError` (→ 503 + ``Retry-After``) instead of letting every
request reach a kernel that will 500 it.  All bookkeeping is
clock-injectable (every method takes an optional ``now``) in the same style
as :class:`~repro.jobs.watchdog.LivenessMonitor`, so the whole machine is
testable without sleeping.  Every transition emits a
``serve.health_transition`` counter event carrying ``from_state``/
``to_state``/``reason`` attrs.

See DESIGN.md §5i.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import (
    ChecksumMismatchError,
    ModelQuarantinedError,
    TruncatedArchiveError,
)
from repro.jobs.retry import backoff_delay
from repro.obs import recorder as obs

#: Health states, in roughly decreasing order of goodness.
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"
PROBING = "probing"

STATES = (HEALTHY, DEGRADED, QUARANTINED, PROBING)

#: Errors that prove the archive behind a model is bad: quarantine now,
#: recover by reloading from disk — retrying the forward cannot help.
INTEGRITY_ERRORS: tuple[type[BaseException], ...] = (
    ChecksumMismatchError,
    TruncatedArchiveError,
)


def classify_failure(exc: BaseException) -> str:
    """``"integrity"`` for archive-is-bad errors, ``"transient"`` otherwise."""
    return "integrity" if isinstance(exc, INTEGRITY_ERRORS) else "transient"


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for one model's health machine (all models share one)."""

    #: Sliding window (seconds) over which transient failures are counted.
    breaker_window: float = 30.0
    #: Transient failures within the window that trip the breaker.
    breaker_threshold: int = 5
    #: Seconds a breaker-tripped quarantine lasts before probing begins.
    cooldown: float = 5.0
    #: Consecutive successful probe batches required to close the breaker.
    probe_successes: int = 2
    #: Seconds after which an unreported probe slot is reclaimed (the probe
    #: request expired in queue, or its handler died).
    probe_timeout: float = 30.0
    #: Bounded background reload attempts per integrity quarantine.
    quarantine_reloads: int = 5
    #: Backoff between reload attempts (jittered exponentially, like the
    #: job subsystem's transient retries).
    reload_backoff_base: float = 0.25
    reload_backoff_cap: float = 2.0

    def __post_init__(self):
        if self.breaker_window <= 0:
            raise ValueError(
                f"breaker_window must be > 0, got {self.breaker_window}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}")
        if self.probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {self.probe_successes}")
        if self.quarantine_reloads < 0:
            raise ValueError(
                f"quarantine_reloads must be >= 0, got {self.quarantine_reloads}")


class ModelHealth:
    """One model's health ledger.  Thread-safe; clock passed per call."""

    def __init__(self, name: str, policy: HealthPolicy | None = None):
        self.name = name
        self.policy = policy or HealthPolicy()
        self._lock = threading.Lock()
        self._state = HEALTHY
        self._failures: deque[float] = deque()  # transient failure timestamps
        self._quarantined_at: float | None = None
        self._quarantine_reason: str | None = None
        self._reload_pending = False  # integrity quarantine awaiting reload
        self._reload_attempts = 0
        self._probe_taken_at: float | None = None
        self._probe_successes = 0
        self._trips = 0  # breaker trips, lifetime
        self._quarantines = 0  # quarantine entries, lifetime
        self._last_error: str | None = None

    # ----------------------------------------------------------- transitions
    def _transition(self, to_state: str, reason: str) -> None:
        """Move to ``to_state`` (caller holds the lock) and emit the event."""
        from_state = self._state
        if from_state == to_state:
            return
        self._state = to_state
        obs.counter(
            "serve.health_transition", model=self.name,
            from_state=from_state, to_state=to_state, reason=reason,
        )

    def _enter_quarantine(self, reason: str, now: float) -> None:
        self._quarantined_at = now
        self._quarantine_reason = reason
        self._quarantines += 1
        self._probe_taken_at = None
        self._probe_successes = 0
        self._failures.clear()  # the trip consumed the window
        self._transition(QUARANTINED, reason)

    def _prune(self, now: float) -> None:
        cutoff = now - self.policy.breaker_window
        while self._failures and self._failures[0] <= cutoff:
            self._failures.popleft()

    # ------------------------------------------------------------- admission
    def admit(self, now: float | None = None) -> None:
        """Gate one request, or raise :class:`ModelQuarantinedError` (503).

        A breaker-tripped quarantine whose cooldown has elapsed converts
        this call into the first probe (half-open); while PROBING, one
        probe request is admitted at a time and the rest are told to retry.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            if self._state in (HEALTHY, DEGRADED):
                return
            if self._state == QUARANTINED:
                if self._reload_pending or self._quarantine_reason in (
                    "integrity", "reload-exhausted"
                ):
                    raise ModelQuarantinedError(
                        f"model {self.name!r} is quarantined "
                        f"({self._quarantine_reason}: {self._last_error}); "
                        f"a reload from disk must succeed before it serves",
                        retry_after=self._integrity_retry_after(),
                        state=QUARANTINED,
                    )
                quarantined_at = (
                    now if self._quarantined_at is None else self._quarantined_at
                )
                elapsed = now - quarantined_at
                if elapsed < self.policy.cooldown:
                    raise ModelQuarantinedError(
                        f"model {self.name!r} is quarantined (circuit breaker "
                        f"tripped); probing begins in "
                        f"{self.policy.cooldown - elapsed:.1f}s",
                        retry_after=max(1.0, self.policy.cooldown - elapsed),
                        state=QUARANTINED,
                    )
                self._transition(PROBING, "cooldown-elapsed")
            # PROBING: one probe in flight at a time; stale slots reclaimed.
            if (self._probe_taken_at is not None
                    and now - self._probe_taken_at <= self.policy.probe_timeout):
                raise ModelQuarantinedError(
                    f"model {self.name!r} is probing; a probe request is "
                    f"already in flight",
                    retry_after=1.0,
                    state=PROBING,
                )
            self._probe_taken_at = now

    def _integrity_retry_after(self) -> float:
        """Hint derived from the reload backoff still ahead of us."""
        remaining = max(0, self.policy.quarantine_reloads - self._reload_attempts)
        if remaining == 0:
            return max(1.0, self.policy.cooldown)
        return max(1.0, backoff_delay(
            self._reload_attempts,
            base=self.policy.reload_backoff_base,
            cap=self.policy.reload_backoff_cap,
            key=self.name,
        ))

    # --------------------------------------------------------------- reports
    def record_success(self, now: float | None = None) -> None:
        """One batch touching this model completed cleanly."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if self._state == PROBING:
                self._probe_taken_at = None
                self._probe_successes += 1
                if self._probe_successes >= self.policy.probe_successes:
                    self._failures.clear()
                    self._last_error = None
                    self._transition(HEALTHY, "probes-passed")
                return
            self._prune(now)
            if self._state == DEGRADED and not self._failures:
                self._transition(HEALTHY, "window-drained")

    def record_failure(self, exc: BaseException,
                       now: float | None = None) -> str:
        """Classify and record one batch failure; returns the kind.

        Integrity errors quarantine immediately (the caller should start a
        background reload); transient errors count against the breaker.
        """
        now = time.monotonic() if now is None else now
        kind = classify_failure(exc)
        with self._lock:
            self._last_error = f"{type(exc).__name__}: {exc}"
            if kind == "integrity":
                self._reload_pending = True
                self._reload_attempts = 0
                self._enter_quarantine("integrity", now)
                return kind
            if self._state == PROBING:
                self._probe_taken_at = None
                self._enter_quarantine("probe-failed", now)
                return kind
            if self._state == QUARANTINED:
                return kind  # already out of service; nothing to count
            self._failures.append(now)
            self._prune(now)
            if len(self._failures) >= self.policy.breaker_threshold:
                self._trips += 1
                self._enter_quarantine("breaker-tripped", now)
            else:
                self._transition(DEGRADED, "transient-failure")
        return kind

    # --------------------------------------------------------------- reloads
    def reload_wanted(self) -> bool:
        """True while an integrity quarantine still wants a reload."""
        with self._lock:
            return (self._state == QUARANTINED and self._reload_pending
                    and self._reload_attempts < self.policy.quarantine_reloads)

    def note_reload_failed(self, exc: BaseException) -> None:
        with self._lock:
            self._reload_attempts += 1
            self._last_error = f"{type(exc).__name__}: {exc}"
            if self._reload_attempts >= self.policy.quarantine_reloads:
                self._quarantine_reason = "reload-exhausted"
        obs.counter("serve.quarantine_reload", model=self.name, outcome="failed")

    def note_reloaded(self, now: float | None = None) -> None:
        """A reload (automatic or manual) swapped in a fresh archive."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if self._state not in (QUARANTINED, PROBING):
                return  # healthy models reload for deploys, not recovery
            self._reload_pending = False
            self._probe_taken_at = None
            self._probe_successes = 0
            self._quarantined_at = now
            self._transition(PROBING, "reloaded")
        obs.counter("serve.quarantine_reload", model=self.name, outcome="ok")

    # ------------------------------------------------------------ inspection
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def describe(self, now: float | None = None) -> dict:
        """JSON-friendly health summary for ``/healthz``."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._prune(now)
            return {
                "state": self._state,
                "breaker": {
                    "window_seconds": self.policy.breaker_window,
                    "threshold": self.policy.breaker_threshold,
                    "recent_failures": len(self._failures),
                    "trips": self._trips,
                },
                "quarantines": self._quarantines,
                "quarantine_reason": self._quarantine_reason
                if self._state in (QUARANTINED, PROBING) else None,
                "reload_attempts": self._reload_attempts,
                "last_error": self._last_error,
            }


class HealthMonitor:
    """Health machines for every served model, plus the reload worker.

    The monitor owns one :class:`ModelHealth` per model (created on first
    touch, so registering a model needs no ceremony) and one background
    reloader thread per integrity quarantine: bounded attempts at
    ``registry.reload(name)`` separated by deterministic jittered backoff,
    stopping the moment the archive on disk reads clean again.
    """

    def __init__(self, registry, policy: HealthPolicy | None = None):
        self.registry = registry
        self.policy = policy or HealthPolicy()
        self._lock = threading.Lock()
        self._models: dict[str, ModelHealth] = {}
        self._reloaders: dict[str, threading.Thread] = {}
        self._closed = threading.Event()

    def model(self, name: str) -> ModelHealth:
        with self._lock:
            health = self._models.get(name)
            if health is None:
                health = self._models[name] = ModelHealth(name, self.policy)
            return health

    # ----------------------------------------------------------- batch hooks
    def admit(self, name: str, now: float | None = None) -> None:
        self.model(name).admit(now)

    def report_success(self, name: str, now: float | None = None) -> None:
        self.model(name).record_success(now)

    def report_failure(self, name: str, exc: BaseException,
                       now: float | None = None) -> str:
        kind = self.model(name).record_failure(exc, now)
        if kind == "integrity":
            self._start_reloader(name)
        return kind

    def note_manual_reload(self, name: str) -> None:
        """A ``POST /models/<name>/reload`` succeeded: quarantined models
        move to PROBING; healthy models are untouched."""
        self.model(name).note_reloaded()

    # ------------------------------------------------------------- reloading
    def _start_reloader(self, name: str) -> None:
        with self._lock:
            existing = self._reloaders.get(name)
            if existing is not None and existing.is_alive():
                return  # one reloader per model at a time
            thread = threading.Thread(
                target=self._reload_loop, args=(name,),
                name=f"repro-serve-reloader-{name}", daemon=True,
            )
            self._reloaders[name] = thread
        thread.start()

    def _reload_loop(self, name: str) -> None:
        health = self.model(name)
        for attempt in range(self.policy.quarantine_reloads):
            delay = backoff_delay(
                attempt,
                base=self.policy.reload_backoff_base,
                cap=self.policy.reload_backoff_cap,
                key=name,
            )
            if self._closed.wait(delay):
                return
            if not health.reload_wanted():
                return  # recovered some other way (manual reload), or closed
            try:
                self.registry.reload(name)
            except Exception as exc:  # noqa: BLE001 — any load failure retries
                health.note_reload_failed(exc)
                continue
            health.note_reloaded()
            return

    # -------------------------------------------------------------- lifecycle
    def describe(self, now: float | None = None) -> dict:
        with self._lock:
            models = dict(self._models)
        return {name: health.describe(now)
                for name, health in sorted(models.items())}

    def close(self) -> None:
        """Stop background reloaders (best-effort join)."""
        self._closed.set()
        with self._lock:
            threads = list(self._reloaders.values())
        for thread in threads:
            thread.join(timeout=5.0)
