"""Multi-model registry: checksummed archives → live compressed models.

Each registered model is one :class:`ModelEntry`: a lazily-loaded
:class:`~repro.core.model_quantizer.QuantizedModel` (``verify="lazy"``, so
every archive member is CRC-checked on first touch) attached into a
:class:`~repro.models.bert.BertModel` via
:func:`~repro.models.quantized.attach_quantized_linears` — after which the
request path computes on the compressed representation through lookup
kernels and never calls ``dequantize()``.

Hot-swap discipline (the part worth getting right):

* :meth:`ModelRegistry.lease` hands the batcher a refcounted entry.  The
  lease pins the entry's archive map for the duration of one batch.
* :meth:`ModelRegistry.reload` builds the *new* entry first (load errors
  leave the old model serving), then swaps the registry pointer atomically
  under the lock and retires the old entry.  Retired entries close their
  archive reader when the last lease drains — in-flight requests finish on
  the weights they started with, and the old file descriptor is released
  (not leaked) thanks to the unconditional close in
  :meth:`~repro.core.npzmap.MmapNpzReader.close`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import ConfigError, ModelNotFoundError, ServeError
from repro.models import (
    available_configs,
    build_model,
    embedding_shapes,
    fc_layer_shapes,
    get_config,
)
from repro.models.quantized import attach_quantized_linears
from repro.obs import recorder as obs


@dataclass
class ModelEntry:
    """One servable model: archive + config + attached network."""

    name: str
    path: Path
    config: object  # the BertConfig the network was built from
    model: object  # BertModel with QuantizedLinears attached
    qmodel: object  # QuantizedModel (lazy; owns the archive reader)
    version: int  # reload generation, starting at 1
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _leases: int = 0
    _retired: bool = False

    @property
    def config_name(self) -> str:
        return self.config.name

    @property
    def max_position(self) -> int:
        return self.config.max_position

    @property
    def vocab_size(self) -> int:
        return self.config.vocab_size

    def _acquire(self) -> None:
        with self._lock:
            if self._retired:
                raise ServeError(f"model {self.name!r} entry is retired")
            self._leases += 1

    def _release(self) -> None:
        close = False
        with self._lock:
            self._leases -= 1
            close = self._retired and self._leases == 0
        if close:
            self._close()

    def _retire(self) -> None:
        close = False
        with self._lock:
            self._retired = True
            close = self._leases == 0
        if close:
            self._close()

    def _close(self) -> None:
        closer = getattr(self.qmodel.quantized, "close", None)
        if closer is not None:
            closer()
        obs.counter("serve.entries_closed", model=self.name)

    def describe(self) -> dict:
        """JSON-friendly summary for ``/healthz``."""
        return {
            "path": str(self.path),
            "config": self.config_name,
            "version": self.version,
            "max_position": self.max_position,
            "vocab_size": self.vocab_size,
        }


def _archive_shape(qmodel, name: str) -> tuple[int, ...] | None:
    """Stored shape of parameter ``name``, wherever the archive keeps it."""
    if name in qmodel.quantized:
        return tuple(qmodel.quantized[name].shape)
    if name in qmodel.fp32:
        return tuple(qmodel.fp32[name].shape)
    return None


def _infer_config(qmodel) -> str:
    """Name the preset whose FC *and* embedding census matches the archive.

    FC shapes alone are ambiguous — BERT and RoBERTa variants share encoder
    geometry and differ only in vocabulary — so the embedding tables (which
    every archive carries, quantized or FP32 pass-through) break the tie.
    """
    for candidate in available_configs():
        expected_fc = dict(fc_layer_shapes(candidate))
        if set(expected_fc) != set(qmodel.fc_names):
            continue
        if any(
            _archive_shape(qmodel, name) not in (shape, None)
            for name, shape in expected_fc.items()
        ):
            continue
        if all(
            _archive_shape(qmodel, name) == shape
            for name, shape in embedding_shapes(candidate)
        ):
            return candidate
    raise ConfigError(
        "archive matches no preset config "
        f"({len(qmodel.fc_names)} FC layers); pass name=path:config explicitly"
    )


def _build_entry(name: str, path: Path, config,
                 version: int, verify: str, fault=None) -> ModelEntry:
    # Imported here, not at module top: serialization pulls in the archive
    # stack only when a model is actually registered.
    from repro.core.serialization import load_quantized_model

    if fault is not None:
        fault("load", name)
    with obs.span("serve.model_load", model=name, generation=version) as sp:
        qmodel = load_quantized_model(path, lazy=True, verify=verify)
        try:
            if config is None:
                config = get_config(_infer_config(qmodel))
            elif isinstance(config, str):
                config = get_config(config)
            model = build_model(config, task="encoder", rng=0)
            attach_quantized_linears(model, qmodel)
        except BaseException:
            # A failed build must not leak the archive reader the lazy load
            # just opened — close it before the error propagates (the entry
            # that would own it is never constructed).
            closer = getattr(qmodel.quantized, "close", None)
            if closer is not None:
                closer()
            raise
        sp.set(config=config.name, layers=len(qmodel.fc_names))
    return ModelEntry(
        name=name,
        path=Path(path),
        config=config,
        model=model,
        qmodel=qmodel,
        version=version,
    )


class ModelRegistry:
    """Named, hot-swappable collection of :class:`ModelEntry`."""

    def __init__(self, verify: str = "lazy", fault=None):
        self.verify = verify
        self.fault = fault  # serve-path injector, called as fault("load", name)
        self._lock = threading.Lock()
        self._entries: dict[str, ModelEntry] = {}

    # ------------------------------------------------------------- lifecycle
    def register(self, name: str, path: str | Path,
                 config=None) -> ModelEntry:
        """Load ``path`` and serve it as ``name``; replaces any prior entry.

        ``config`` is a zoo preset name, a ``BertConfig``, or ``None`` to
        infer the preset from the archive's FC census.
        """
        entry = _build_entry(name, Path(path), config, version=1,
                             verify=self.verify, fault=self.fault)
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None:
                entry.version = previous.version + 1
            self._entries[name] = entry
        if previous is not None:
            previous._retire()
        obs.counter("serve.models_registered", model=name)
        return entry

    def reload(self, name: str) -> ModelEntry:
        """Re-read ``name``'s archive from disk and swap it in atomically.

        The new entry is fully built *before* the swap: a load failure
        (missing file, checksum mismatch, config drift) raises and the old
        model keeps serving.  In-flight leases on the old entry finish on
        the old weights; the old archive closes when they drain.
        """
        with self._lock:
            current = self._entries.get(name)
            if current is None:
                raise ModelNotFoundError(f"no model registered as {name!r}")
            path, config, version = current.path, current.config, current.version
        entry = _build_entry(name, path, config, version + 1, self.verify,
                             fault=self.fault)
        with self._lock:
            old = self._entries.get(name)
            self._entries[name] = entry
        if old is not None:
            old._retire()
        obs.counter("serve.reloads", model=name)
        return entry

    def close(self) -> None:
        """Retire every entry (archives close as their leases drain)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry._retire()

    # --------------------------------------------------------------- access
    def get(self, name: str) -> ModelEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(sorted(self.names())) or "none"
            raise ModelNotFoundError(f"no model registered as {name!r}; known: {known}")
        return entry

    @contextmanager
    def lease(self, name: str) -> Iterator[ModelEntry]:
        """Pin ``name``'s current entry for the duration of the block.

        A concurrent reload can retire the entry between :meth:`get` and
        the acquire — a routine hot-swap, not a failure — so a retired
        entry is retried once against the freshly swapped-in one.  Only a
        second retirement in the same race window (or a genuinely removed
        model) propagates.
        """
        entry = self.get(name)
        try:
            entry._acquire()
        except ServeError:
            entry = self.get(name)
            entry._acquire()
        try:
            yield entry
        finally:
            entry._release()

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> dict:
        with self._lock:
            entries = dict(self._entries)
        return {name: entry.describe() for name, entry in sorted(entries.items())}
