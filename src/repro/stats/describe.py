"""Descriptive statistics of weight tensors.

Used by the Figure 1 reproduction to show that per-layer transformer weights
closely follow a Gaussian distribution with a small heavy-tail fringe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats

from repro.errors import ShapeError


@dataclass(frozen=True)
class WeightSummary:
    """Summary statistics of one weight tensor."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    skewness: float
    excess_kurtosis: float

    @property
    def range_in_sigmas(self) -> float:
        """Full value range expressed in standard deviations."""
        if self.std == 0.0:
            return 0.0
        return (self.maximum - self.minimum) / self.std


def summarize_weights(values: np.ndarray) -> WeightSummary:
    """Compute :class:`WeightSummary` for ``values`` (any shape)."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        raise ShapeError("cannot summarize an empty array")
    std = float(flat.std())
    # Higher moments are undefined for (near-)constant data; report 0.
    skewness = float(sp_stats.skew(flat)) if std > 0 else 0.0
    excess_kurtosis = float(sp_stats.kurtosis(flat)) if std > 0 else 0.0
    return WeightSummary(
        count=int(flat.size),
        mean=float(flat.mean()),
        std=std,
        minimum=float(flat.min()),
        maximum=float(flat.max()),
        skewness=skewness,
        excess_kurtosis=excess_kurtosis,
    )


def gaussian_overlap(values: np.ndarray, bins: int = 64) -> float:
    """Histogram overlap between ``values`` and their fitted Gaussian, in [0, 1].

    1.0 means the empirical distribution matches the Gaussian fit exactly;
    transformer layers typically score above ~0.9, which is the paper's
    "weights closely follow a Gaussian distribution" observation made
    quantitative.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        raise ShapeError("cannot compare an empty array")
    std = flat.std()
    if std == 0.0:
        return 1.0
    mean = flat.mean()
    lo, hi = mean - 5 * std, mean + 5 * std
    clipped = np.clip(flat, lo, hi)
    counts, edges = np.histogram(clipped, bins=bins, range=(lo, hi))
    empirical = counts / flat.size
    cdf = sp_stats.norm(loc=mean, scale=std).cdf(edges)
    gaussian = np.diff(cdf)
    return float(np.minimum(empirical, gaussian).sum())
