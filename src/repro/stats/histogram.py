"""Weight-distribution histograms (Figure 1b of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError


@dataclass(frozen=True)
class Histogram:
    """A 1-D histogram: bin edges (length ``n+1``) and counts (length ``n``)."""

    edges: np.ndarray
    counts: np.ndarray

    @property
    def centers(self) -> np.ndarray:
        """Bin center coordinates."""
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    @property
    def total(self) -> int:
        """Total number of counted samples."""
        return int(self.counts.sum())

    def normalized(self) -> np.ndarray:
        """Counts as fractions summing to 1 (zeros if the histogram is empty)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def as_series(self) -> list[tuple[float, int]]:
        """(center, count) pairs, the series a plotting tool would consume."""
        return [(float(c), int(n)) for c, n in zip(self.centers, self.counts)]


def weight_histogram(
    values: np.ndarray,
    bins: int = 100,
    value_range: tuple[float, float] | None = None,
) -> Histogram:
    """Histogram of a weight tensor, matching Figure 1b's rendering inputs."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        raise ShapeError("cannot histogram an empty array")
    counts, edges = np.histogram(flat, bins=bins, range=value_range)
    return Histogram(edges=edges, counts=counts)


def layer_histograms(
    named_weights: dict[str, np.ndarray],
    bins: int = 100,
) -> dict[str, Histogram]:
    """Per-layer histograms over a common symmetric range (Figure 1b)."""
    if not named_weights:
        return {}
    span = max(float(np.abs(w).max()) for w in named_weights.values())
    if span == 0.0:
        span = 1.0
    return {
        name: weight_histogram(w, bins=bins, value_range=(-span, span))
        for name, w in named_weights.items()
    }
