"""Statistics: Gaussian fitting, weight summaries, histograms."""

from repro.stats.describe import WeightSummary, gaussian_overlap, summarize_weights
from repro.stats.gaussian import GaussianFit
from repro.stats.histogram import Histogram, layer_histograms, weight_histogram

__all__ = [
    "GaussianFit",
    "Histogram",
    "WeightSummary",
    "gaussian_overlap",
    "layer_histograms",
    "summarize_weights",
    "weight_histogram",
]
