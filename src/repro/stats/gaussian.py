"""Single-component Gaussian fitting, replacing ``sklearn.GaussianMixture``.

The paper fits ``scikit-learn.GaussianMixture`` with **one** component to each
layer's weights and then calls ``score_samples`` to get per-weight
log-probabilities.  A one-component GMM fit is exactly the maximum-likelihood
Gaussian fit (sample mean, sample variance), so :class:`GaussianFit` computes
it in closed form with identical numerics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import NonFiniteWeightError, ShapeError

_LOG_2PI = math.log(2.0 * math.pi)


@dataclass(frozen=True)
class GaussianFit:
    """A fitted 1-D Gaussian ``N(mean, std^2)``.

    Attributes
    ----------
    mean:
        Sample mean of the fitted data.
    std:
        Sample standard deviation (maximum-likelihood, i.e. ``ddof=0``,
        matching ``GaussianMixture``'s variance estimate).
    """

    mean: float
    std: float

    @classmethod
    def fit(cls, values: np.ndarray) -> "GaussianFit":
        """Fit the maximum-likelihood Gaussian to ``values`` (any shape)."""
        flat = np.asarray(values, dtype=np.float64).ravel()
        if flat.size == 0:
            raise ShapeError("cannot fit a Gaussian to an empty array")
        if not np.all(np.isfinite(flat)):
            raise NonFiniteWeightError("values contain NaN or infinity")
        mean = float(flat.mean())
        std = float(flat.std())
        return cls(mean=mean, std=std)

    def log_pdf(self, values: np.ndarray) -> np.ndarray:
        """Log probability density of ``values`` under the fitted Gaussian.

        Mirrors ``GaussianMixture.score_samples`` for a single component
        (the mixture weight is 1, so the mixture log-likelihood is the
        component log-pdf).  A degenerate fit (``std == 0``, e.g. from a
        constant or single-element tensor) assigns ``+inf`` at the mean and
        ``-inf`` elsewhere instead of dividing by zero; a near-degenerate
        ``std`` whose ``z`` overflows yields ``-inf`` (the correct limit)
        without emitting a RuntimeWarning, so the suite stays clean under
        ``-W error::RuntimeWarning``.
        """
        x = np.asarray(values, dtype=np.float64)
        if self.std == 0.0:
            return np.where(x == self.mean, np.inf, -np.inf)
        with np.errstate(over="ignore"):
            z = (x - self.mean) / self.std
            return -0.5 * (z * z + _LOG_2PI) - math.log(self.std)

    def score_samples(self, values: np.ndarray) -> np.ndarray:
        """Alias for :meth:`log_pdf`, matching the scikit-learn name."""
        return self.log_pdf(values)

    def pdf(self, values: np.ndarray) -> np.ndarray:
        """Probability density of ``values`` (Eq. 1 of the paper).

        A degenerate or near-degenerate fit saturates to ``inf`` at the
        mean without emitting an overflow RuntimeWarning.
        """
        with np.errstate(over="ignore"):
            return np.exp(self.log_pdf(values))

    def interval(self, coverage: float) -> tuple[float, float]:
        """Symmetric interval around the mean containing ``coverage`` mass."""
        if not 0.0 < coverage < 1.0:
            raise ValueError(f"coverage must be in (0, 1), got {coverage}")
        from scipy.stats import norm

        half = float(norm.ppf(0.5 + coverage / 2.0))
        return (self.mean - half * self.std, self.mean + half * self.std)
