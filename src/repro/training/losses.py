"""Loss functions for the three task heads."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``labels`` under ``logits``."""
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (batch, classes), got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ShapeError(f"labels must be ({logits.shape[0]},), got {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= logits.shape[1]):
        raise ValueError("labels out of range for the number of classes")
    log_probs = F.log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def mse(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error for the regression head."""
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ShapeError(f"shape mismatch: {predictions.shape} vs {targets.shape}")
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()


def span_loss(start_logits: Tensor, end_logits: Tensor, spans: np.ndarray) -> Tensor:
    """SQuAD loss: mean of the start and end cross-entropies."""
    spans = np.asarray(spans)
    if spans.ndim != 2 or spans.shape[1] != 2:
        raise ShapeError(f"spans must be (batch, 2), got {spans.shape}")
    start = cross_entropy(start_logits, spans[:, 0])
    end = cross_entropy(end_logits, spans[:, 1])
    return (start + end) * 0.5
