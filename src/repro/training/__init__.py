"""Fine-tuning: optimizers, schedules, losses, trainer, distillation."""

from repro.training.distill import DistillationTrainer, soft_cross_entropy
from repro.training.losses import cross_entropy, mse, span_loss
from repro.training.optim import SGD, Adam, Optimizer
from repro.training.schedule import ConstantSchedule, LinearWarmupSchedule
from repro.training.trainer import Trainer, TrainingLog, evaluate

__all__ = [
    "Adam",
    "ConstantSchedule",
    "DistillationTrainer",
    "LinearWarmupSchedule",
    "Optimizer",
    "SGD",
    "Trainer",
    "TrainingLog",
    "cross_entropy",
    "evaluate",
    "mse",
    "soft_cross_entropy",
    "span_loss",
]
