"""Learning-rate schedules (BERT fine-tuning uses linear warmup + decay)."""

from __future__ import annotations


class ConstantSchedule:
    """The trivial schedule: always ``lr``."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr

    def lr_at(self, step: int) -> float:
        return self.lr


class LinearWarmupSchedule:
    """Linear warmup to ``peak_lr`` then linear decay to zero.

    The schedule BERT's fine-tuning recipe uses.
    """

    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int) -> None:
        if peak_lr <= 0:
            raise ValueError(f"peak_lr must be positive, got {peak_lr}")
        if not 0 <= warmup_steps <= total_steps:
            raise ValueError(
                f"need 0 <= warmup_steps <= total_steps, got {warmup_steps}, {total_steps}"
            )
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        step = max(0, min(step, self.total_steps))
        if self.warmup_steps and step < self.warmup_steps:
            return self.peak_lr * step / self.warmup_steps
        remaining = self.total_steps - self.warmup_steps
        if remaining == 0:
            return self.peak_lr
        progress = (step - self.warmup_steps) / remaining
        return self.peak_lr * (1.0 - progress)
