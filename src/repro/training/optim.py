"""Optimizers: SGD with momentum, and Adam (BERT fine-tuning's default)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class: holds parameters, applies updates from their gradients."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``."""
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float(np.square(param.grad).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW), as used for BERT."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * np.square(grad)
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update
