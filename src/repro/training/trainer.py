"""Fine-tuning loop for the tiny evaluation models.

Replicates the paper's "pre-training and fine-tuning" usage at laptop scale:
a model is fine-tuned on a synthetic task with Adam, then handed — frozen —
to the quantizers.  The trainer handles all three task types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.batching import iterate_batches
from repro.data.metrics import metric_for_task
from repro.data.task import TaskData
from repro.nn.module import Module
from repro.training.losses import cross_entropy, mse, span_loss
from repro.training.optim import Adam, Optimizer
from repro.training.schedule import ConstantSchedule, LinearWarmupSchedule
from repro.utils.rng import derive_rng, ensure_rng


@dataclass
class TrainingLog:
    """Per-epoch record of a fine-tuning run."""

    losses: list[float] = field(default_factory=list)
    eval_scores: list[float] = field(default_factory=list)


def _batch_loss(model: Module, batch: TaskData):
    encodings = batch.encodings
    if batch.task_type == "classification":
        logits = model(encodings.input_ids, encodings.attention_mask, encodings.token_type_ids)
        return cross_entropy(logits, batch.labels)
    if batch.task_type == "regression":
        predictions = model(
            encodings.input_ids, encodings.attention_mask, encodings.token_type_ids
        )
        return mse(predictions, batch.labels)
    if batch.task_type == "span":
        start_logits, end_logits = model(
            encodings.input_ids, encodings.attention_mask, encodings.token_type_ids
        )
        return span_loss(start_logits, end_logits, batch.labels)
    raise ValueError(f"unknown task_type {batch.task_type!r}")


def evaluate(model: Module, data: TaskData, batch_size: int = 64) -> float:
    """Task metric of ``model`` on ``data`` (accuracy / Spearman / span F1)."""
    model.eval()
    metric = metric_for_task(data.task_type)
    predictions = []
    for batch in iterate_batches(data, batch_size):
        encodings = batch.encodings
        predictions.append(
            model.predict(encodings.input_ids, encodings.attention_mask, encodings.token_type_ids)
        )
    stacked = np.concatenate(predictions, axis=0)
    return metric(stacked, data.labels)


class Trainer:
    """Mini-batch fine-tuning with gradient clipping and LR scheduling."""

    def __init__(
        self,
        model: Module,
        lr: float = 3e-3,
        batch_size: int = 32,
        max_grad_norm: float = 1.0,
        weight_decay: float = 0.0,
        warmup_fraction: float = 0.1,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.model = model
        self.batch_size = batch_size
        self.max_grad_norm = max_grad_norm
        self.warmup_fraction = warmup_fraction
        self.base_lr = lr
        self.optimizer: Optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
        self._rng = ensure_rng(rng)

    def fit(
        self,
        train: TaskData,
        eval_data: TaskData | None = None,
        epochs: int = 3,
        log: TrainingLog | None = None,
    ) -> TrainingLog:
        """Fine-tune for ``epochs`` and return the training log."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        log = log or TrainingLog()
        steps_per_epoch = max(1, (len(train) + self.batch_size - 1) // self.batch_size)
        total_steps = steps_per_epoch * epochs
        if self.warmup_fraction > 0:
            schedule = LinearWarmupSchedule(
                peak_lr=self.base_lr,
                warmup_steps=int(self.warmup_fraction * total_steps),
                total_steps=total_steps,
            )
        else:
            schedule = ConstantSchedule(self.base_lr)
        step = 0
        for epoch in range(epochs):
            self.model.train()
            epoch_rng = derive_rng(self._rng, "epoch", epoch)
            epoch_loss = 0.0
            batches = 0
            for batch in iterate_batches(
                train, self.batch_size, shuffle=True, rng=epoch_rng
            ):
                step += 1
                self.optimizer.lr = schedule.lr_at(step)
                self.optimizer.zero_grad()
                loss = _batch_loss(self.model, batch)
                loss.backward()
                self.optimizer.clip_grad_norm(self.max_grad_norm)
                self.optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            log.losses.append(epoch_loss / max(1, batches))
            if eval_data is not None:
                log.eval_scores.append(evaluate(self.model, eval_data))
        self.model.eval()
        return log
