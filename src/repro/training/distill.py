"""Knowledge distillation: train a small student from a teacher's logits.

Related-work context (Section III): DistilBERT — one of the models GOBO
compresses in Table V — is produced by knowledge distillation.  This module
implements the logit-matching family of KD so the repository carries the
substrate end to end: a fine-tuned teacher produces soft targets, and a
half-depth student minimizes a mixture of soft cross-entropy (at temperature
``T``) and the ordinary hard-label loss.  GOBO then stacks on top of the
student, which is how the paper reaches "20x smaller than BERT-Base".
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import iterate_batches
from repro.data.task import TaskData
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.training.losses import cross_entropy
from repro.training.optim import Adam
from repro.training.schedule import LinearWarmupSchedule
from repro.utils.rng import derive_rng, ensure_rng


def soft_cross_entropy(student_logits: Tensor, teacher_logits: np.ndarray,
                       temperature: float) -> Tensor:
    """KL-style distillation loss: teacher soft targets at ``temperature``.

    Uses the standard ``T^2`` scaling so gradients keep the same magnitude
    across temperatures.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    scaled_teacher = np.asarray(teacher_logits, dtype=np.float64) / temperature
    shifted = scaled_teacher - scaled_teacher.max(axis=-1, keepdims=True)
    teacher_probs = np.exp(shifted)
    teacher_probs /= teacher_probs.sum(axis=-1, keepdims=True)
    student_log_probs = F.log_softmax(student_logits * (1.0 / temperature), axis=-1)
    per_example = -(student_log_probs * Tensor(teacher_probs)).sum(axis=-1)
    return per_example.mean() * (temperature * temperature)


class DistillationTrainer:
    """Train ``student`` to mimic ``teacher`` on a classification task."""

    def __init__(
        self,
        student: Module,
        teacher: Module,
        lr: float = 1e-3,
        batch_size: int = 32,
        temperature: float = 2.0,
        soft_weight: float = 0.7,
        max_grad_norm: float = 1.0,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        if not 0.0 <= soft_weight <= 1.0:
            raise ValueError(f"soft_weight must be in [0, 1], got {soft_weight}")
        self.student = student
        self.teacher = teacher
        self.batch_size = batch_size
        self.temperature = temperature
        self.soft_weight = soft_weight
        self.max_grad_norm = max_grad_norm
        self.base_lr = lr
        self.optimizer = Adam(student.parameters(), lr=lr)
        self._rng = ensure_rng(rng)

    def fit(self, train: TaskData, epochs: int = 3) -> list[float]:
        """Distill for ``epochs``; returns per-epoch mean losses."""
        if train.task_type != "classification":
            raise ValueError("distillation is implemented for classification tasks")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        self.teacher.eval()
        steps_per_epoch = max(1, (len(train) + self.batch_size - 1) // self.batch_size)
        schedule = LinearWarmupSchedule(
            peak_lr=self.base_lr,
            warmup_steps=steps_per_epoch // 2,
            total_steps=steps_per_epoch * epochs,
        )
        losses = []
        step = 0
        for epoch in range(epochs):
            self.student.train()
            epoch_rng = derive_rng(self._rng, "epoch", epoch)
            total, batches = 0.0, 0
            for batch in iterate_batches(
                train, self.batch_size, shuffle=True, rng=epoch_rng
            ):
                step += 1
                self.optimizer.lr = schedule.lr_at(step)
                encodings = batch.encodings
                teacher_logits = self.teacher(
                    encodings.input_ids, encodings.attention_mask, encodings.token_type_ids
                ).data
                student_logits = self.student(
                    encodings.input_ids, encodings.attention_mask, encodings.token_type_ids
                )
                soft = soft_cross_entropy(student_logits, teacher_logits, self.temperature)
                hard = cross_entropy(student_logits, batch.labels)
                loss = soft * self.soft_weight + hard * (1.0 - self.soft_weight)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.clip_grad_norm(self.max_grad_norm)
                self.optimizer.step()
                total += loss.item()
                batches += 1
            losses.append(total / max(1, batches))
        self.student.eval()
        return losses
