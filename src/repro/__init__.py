"""GOBO reproduction: outlier-aware post-training quantization for BERT.

Reproduces "GOBO: Quantizing Attention-Based NLP Models for Low Latency and
Energy Efficient Inference" (Zadeh & Moshovos, MICRO 2020).

Quickstart::

    import numpy as np
    from repro import quantize_tensor

    weights = np.random.default_rng(0).normal(0, 0.04, size=(768, 768))
    quantized, clustering = quantize_tensor(weights, bits=3)
    print(quantized.compression_ratio(), quantized.outlier_fraction)
    restored = quantized.dequantize()        # plug-in compatible FP32 decode

Subpackages
-----------
``repro.core``
    The paper's contribution: Gaussian outlier detection, equal-population
    binning, L1 centroid iteration, packed storage, model-level policies.
``repro.quant``
    Baselines: linear quantization, K-Means, Q8BERT-like, Q-BERT-like.
``repro.nn`` / ``repro.models``
    A from-scratch NumPy transformer substrate and the BERT model family.
``repro.data`` / ``repro.training``
    Synthetic GLUE/SQuAD-like tasks and the fine-tuning loop.
``repro.experiments``
    One runner per table/figure of the paper's evaluation.
``repro.memory``
    The off-chip traffic / energy model motivating the paper.
"""

from repro.core import (
    GoboQuantizedTensor,
    LayerFailure,
    LayerPolicy,
    OutlierDetector,
    QuantizedModel,
    gobo_cluster,
    kmeans_cluster,
    mixed_precision_policy,
    quantize_model,
    quantize_state_dict,
    quantize_tensor,
    validate_tensor,
    verify_archive,
)

__version__ = "1.0.0"

__all__ = [
    "GoboQuantizedTensor",
    "LayerFailure",
    "LayerPolicy",
    "OutlierDetector",
    "QuantizedModel",
    "__version__",
    "gobo_cluster",
    "kmeans_cluster",
    "mixed_precision_policy",
    "quantize_model",
    "quantize_state_dict",
    "quantize_tensor",
    "validate_tensor",
    "verify_archive",
]
