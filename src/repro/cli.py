"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro list                      # all reproduction targets
    python -m repro run table3                # regenerate one table/figure
    python -m repro run all                   # everything (trains on first use)
    python -m repro prewarm                   # fine-tune + cache all models
    python -m repro quantize --workers 4 --report   # compress a zoo model
    python -m repro quantize --on-error fp32-fallback     # degrade, don't die
    python -m repro quantize --trace run.jsonl      # export an obs trace
    python -m repro quantize --job-dir jobs/run1    # durable: journal + shards
    python -m repro quantize --job-dir jobs/run1 --resume   # continue after a kill
    python -m repro quantize --backend process --workers 4  # crash-isolated fleet
    python -m repro jobs status jobs/run1     # completed / failed / pending
    python -m repro verify-archive a.npz b.npz      # classify archives on disk
    python -m repro profile run.jsonl         # replay a trace as tables
    python -m repro profile --check run.jsonl # schema-validate only (CI)
    python -m repro serve --model tiny=model.npz    # micro-batched HTTP serving
    python -m repro serve --model a=a.npz --model b=b.npz --port 8080

A durable ``quantize`` run exits 0 on completion, 75
(:data:`repro.jobs.signals.EXIT_INTERRUPTED`) after a graceful SIGINT/SIGTERM
drain (rerun with ``--resume``), and ``128+signum`` on a second signal.
``serve`` follows the same signal contract: the first SIGINT/SIGTERM drains
in-flight requests and exits 75.
"""

from __future__ import annotations

import argparse
import functools
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.report import render_payload


def _cmd_list(_args: argparse.Namespace) -> int:
    for identifier in list_experiments():
        experiment = EXPERIMENTS[identifier]
        marker = "*" if experiment.needs_training else " "
        print(f"{identifier:12s} {marker} {experiment.description}")
    print("\n(* = fine-tunes tiny models on first run; checkpoints are cached)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    identifiers = list_experiments() if args.target == "all" else [args.target]
    for identifier in identifiers:
        try:
            experiment = get_experiment(identifier)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        started = time.time()
        payload = experiment.runner()
        print(f"=== {identifier}: {experiment.description} "
              f"({time.time() - started:.1f}s) ===")
        print(render_payload(payload))
        print()
    return 0


def _cmd_prewarm(_args: argparse.Namespace) -> int:
    from repro.experiments.accuracy import get_finetuned

    pairs = [
        ("bert-base", "mnli"),
        ("bert-base", "stsb"),
        ("bert-large", "squad"),
        ("distilbert", "mnli"),
        ("roberta-base", "mnli"),
        ("roberta-large", "mnli"),
    ]
    for model, task in pairs:
        started = time.time()
        finetuned = get_finetuned(model, task)
        print(
            f"{model:15s} {task:6s} baseline={finetuned.baseline_score:.4f} "
            f"({time.time() - started:.0f}s)"
        )
    return 0


def _cmd_quantize(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core.model_quantizer import quantize_model
    from repro.core.serialization import save_quantized_model
    from repro.errors import ConfigError, JobStateError, QuantizationError
    from repro.jobs.signals import EXIT_INTERRUPTED, GracefulInterrupt
    from repro.models import build_model, get_config
    from repro.testing.faults import injector_from_env

    if args.method == "help":
        from repro.quant.registry import describe_specs

        print(describe_specs())
        return 0
    # Legacy tensor-method names drive the default GOBO pipeline with the
    # --weight-bits/--embedding-bits flags; anything else is a registry spec
    # (its own bit widths travel inside the spec string).
    spec_quantizer = None
    if args.method not in ("gobo", "kmeans", "linear"):
        from repro.quant.registry import build_quantizer

        try:
            spec_quantizer = build_quantizer(args.method)
        except ConfigError as exc:
            print(exc, file=sys.stderr)
            return 2
    try:
        config = get_config(args.config)
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.embedding_bits.lower() == "none":
        embedding_bits = None
    else:
        try:
            embedding_bits = int(args.embedding_bits)
        except ValueError:
            print(f"--embedding-bits must be an int or 'none', got {args.embedding_bits!r}",
                  file=sys.stderr)
            return 2
    if args.resume and not args.job_dir:
        print("--resume requires --job-dir", file=sys.stderr)
        return 2
    engine = None
    if args.job_dir:
        from repro.jobs.runner import run_durable_layers

        engine = functools.partial(
            run_durable_layers,
            job_dir=args.job_dir,
            resume=args.resume,
            fingerprint_extra={"config": args.config, "seed": args.seed},
        )
    try:
        fault_injector = injector_from_env()
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    from repro.core.parallel import resolve_backend

    try:
        backend = resolve_backend(args.backend)
    except QuantizationError as exc:
        print(exc, file=sys.stderr)
        return 2
    if backend == "process":
        # Fleet workers rebuild their injectors from REPRO_FAULTS themselves
        # (injector objects cannot cross the process boundary); the env read
        # above still validates the spec before any worker spawns.
        fault_injector = None

    sinks: list = []
    trace_sink = None
    if args.trace:
        trace_sink = obs.JsonlSink(args.trace)
        sinks.append(trace_sink)
    if args.trace_summary:
        sinks.append(obs.SummarySink())

    model = build_model(config, task="encoder", rng=args.seed)
    for sink in sinks:
        obs.install(sink)
    try:
        with GracefulInterrupt() as interrupt:
            if spec_quantizer is None:
                quantized = quantize_model(
                    model,
                    weight_bits=args.weight_bits,
                    embedding_bits=embedding_bits,
                    method=args.method,
                    workers=args.workers,
                    on_error=args.on_error,
                    validation=args.validation,
                    fault_injector=fault_injector,
                    layer_timeout=args.layer_timeout,
                    transient_retries=args.transient_retries,
                    cancel=interrupt.event,
                    backend=backend,
                    engine=engine,
                )
            else:
                from repro.core.model_quantizer import select_parameters

                selection = select_parameters(model)
                quantized = spec_quantizer.quantize(
                    model.state_dict(),
                    selection.fc_names,
                    selection.embedding_names,
                    workers=args.workers,
                    on_error=args.on_error,
                    validation=args.validation,
                    fault_injector=fault_injector,
                    layer_timeout=args.layer_timeout,
                    transient_retries=args.transient_retries,
                    cancel=interrupt.event,
                    backend=backend,
                    engine=engine,
                )
        report = quantized.report
        if not report.interrupted and args.out:
            archive_size = save_quantized_model(quantized, args.out)
        else:
            archive_size = None
    except (QuantizationError, JobStateError) as exc:
        print(exc, file=sys.stderr)
        return 2
    finally:
        for sink in sinks:
            obs.uninstall(sink)
            sink.close()  # SummarySink renders its table here
    print(
        f"{config.name}: {model.num_parameters()} parameters, "
        f"{len(report.layers)} tensors quantized in {report.wall_seconds:.3f}s "
        f"({report.workers} worker{'s' if report.workers != 1 else ''})"
    )
    print(
        f"compression {quantized.model_compression_ratio():.2f}x, "
        f"outliers {quantized.outlier_fraction() * 100:.3f}%"
    )
    if report.resumed_layers:
        print(f"resumed: {report.resumed_layers} layer(s) loaded from {args.job_dir}")
    if report.failures:
        print(
            f"WARNING: {len(report.failures)} layer(s) degraded "
            f"(on_error={report.on_error}): "
            + ", ".join(
                f"{f.name} [{f.action}]" for f in report.failures
            ),
            file=sys.stderr,
        )
    if args.report:
        print()
        print(report.render())
    if archive_size is not None:
        print(f"\narchive written: {args.out} ({archive_size / 1024:.1f} KiB)")
    if trace_sink is not None:
        print(f"trace written: {trace_sink.path} ({trace_sink.lines} events)")
    if report.interrupted:
        where = f" --job-dir {args.job_dir} --resume" if args.job_dir else ""
        print(
            f"interrupted: {len(report.pending)} layer(s) pending; "
            f"rerun with{where or ' --resume'} to continue",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    return 0


def _parse_model_spec(spec: str) -> tuple[str, str, str | None]:
    """``name=path[:config]`` → (name, path, config or None)."""
    name, _, rest = spec.partition("=")
    if not name or not rest:
        raise ValueError(f"--model expects name=path[:config], got {spec!r}")
    path, sep, config = rest.rpartition(":")
    if sep and config and "/" not in config and not config.endswith(".npz"):
        return name, path, config
    return name, rest, None


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.errors import ReproError
    from repro.serve.server import run_server

    try:
        specs = [_parse_model_spec(spec) for spec in args.model]
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    models = {name: (path, config) for name, path, config in specs}
    if len(models) != len(specs):
        print("duplicate model names in --model", file=sys.stderr)
        return 2

    sinks: list = []
    trace_sink = None
    if args.trace:
        trace_sink = obs.JsonlSink(args.trace)
        sinks.append(trace_sink)
    for sink in sinks:
        obs.install(sink)
    try:
        return run_server(
            models,
            host=args.host,
            port=args.port,
            batch_window=args.batch_window / 1000.0,
            max_batch=args.max_batch,
            max_pending=args.max_pending,
            request_timeout=args.request_timeout,
            verify=args.verify,
            forward_timeout=args.forward_timeout or None,
            breaker_window=args.breaker_window,
            breaker_threshold=args.breaker_threshold,
            quarantine_reloads=args.quarantine_reloads,
        )
    except (ReproError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    finally:
        for sink in sinks:
            obs.uninstall(sink)
            sink.close()
        if trace_sink is not None:
            print(f"trace written: {trace_sink.path} ({trace_sink.lines} events)")


def _cmd_jobs_status(args: argparse.Namespace) -> int:
    from repro.errors import JobStateError
    from repro.jobs.runner import job_status, render_status

    try:
        status = job_status(args.job_dir)
    except JobStateError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(render_status(status))
    return 0 if status.complete else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs

    try:
        errors = obs.validate_trace_file(args.path)
    except OSError as exc:
        print(f"cannot read trace {args.path}: {exc}", file=sys.stderr)
        return 2
    if errors:
        shown = errors if len(errors) <= 20 else errors[:20]
        for problem in shown:
            print(f"{args.path}: {problem}", file=sys.stderr)
        if len(errors) > len(shown):
            print(f"... and {len(errors) - len(shown)} more", file=sys.stderr)
        print(f"{args.path}: {len(errors)} schema violation(s)", file=sys.stderr)
        return 1
    events = obs.read_trace(args.path)
    if args.check:
        print(f"{args.path}: {len(events)} events, schema ok")
        return 0
    print(obs.summarize(events))
    return 0


def _cmd_verify_archive(args: argparse.Namespace) -> int:
    from repro.core.serialization import verify_archive

    failed = 0
    for path in args.paths:
        check = verify_archive(path)
        if not check.ok:
            failed += 1
        if not args.quiet:
            version = "?" if check.version is None else str(check.version)
            print(f"{check.path}: {check.status} (format version {version})")
            print(check.detail)
        elif not check.ok:
            # --quiet still names each failure; silence would hide the reason
            # the exit code is nonzero.
            print(f"{check.path}: {check.status}", file=sys.stderr)
    if not args.quiet and len(args.paths) > 1:
        print(f"{len(args.paths) - failed}/{len(args.paths)} archive(s) ok")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GOBO reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproduction targets").set_defaults(func=_cmd_list)
    run = sub.add_parser("run", help="run one target (or 'all')")
    run.add_argument("target", help="experiment id from 'list', or 'all'")
    run.set_defaults(func=_cmd_run)
    sub.add_parser(
        "prewarm", help="fine-tune and cache every evaluation model"
    ).set_defaults(func=_cmd_prewarm)
    quantize = sub.add_parser(
        "quantize",
        help="GOBO-compress a zoo model through the layer-parallel engine",
    )
    quantize.add_argument(
        "--config", default="tiny-bert-base", help="model config name (default tiny-bert-base)"
    )
    quantize.add_argument("--weight-bits", type=int, default=3, help="bits for FC weights")
    quantize.add_argument(
        "--embedding-bits", default="4",
        help="bits for embedding tables, or 'none' to leave them FP32",
    )
    quantize.add_argument(
        "--method", default="gobo",
        help="tensor method (gobo/kmeans/linear, honoring --weight-bits/"
        "--embedding-bits) or a registered method spec like 'zeroshot', "
        "'gwq-4bit' or 'mixed-12pct' (spec options override the bit flags); "
        "'help' lists every spec",
    )
    quantize.add_argument(
        "--workers", type=int, default=None,
        help="engine workers: N, 0 for all cores; default REPRO_WORKERS or 1",
    )
    quantize.add_argument(
        "--backend", default=None, choices=("thread", "process"),
        help="fan-out mechanism: threads in-process, or a supervised worker "
             "fleet (crash-isolated, heartbeat-monitored); default "
             "REPRO_BACKEND or thread",
    )
    quantize.add_argument(
        "--report", action="store_true", help="print the per-layer timing report"
    )
    quantize.add_argument(
        "--on-error", default=None,
        choices=("fail", "skip", "fp32-fallback", "retry-higher-bits"),
        help="per-layer failure policy; default REPRO_ON_ERROR or fail",
    )
    quantize.add_argument(
        "--validation", default="strict", choices=("strict", "repair", "skip"),
        help="input validation policy for NaN/Inf/degenerate tensors",
    )
    quantize.add_argument("--out", default=None, help="write the .npz archive here")
    quantize.add_argument("--seed", type=int, default=0, help="model init seed")
    quantize.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write an observability trace (JSONL) of the run to PATH",
    )
    quantize.add_argument(
        "--trace-summary", action="store_true",
        help="print the observability summary tables after the run",
    )
    quantize.add_argument(
        "--job-dir", default=None, metavar="DIR",
        help="durable mode: journal every completed layer to DIR (shards + JSONL)",
    )
    quantize.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted durable run (requires --job-dir)",
    )
    quantize.add_argument(
        "--layer-timeout", type=float, default=None, metavar="S",
        help="per-layer watchdog deadline in seconds; default REPRO_LAYER_TIMEOUT or off",
    )
    quantize.add_argument(
        "--transient-retries", type=int, default=None, metavar="N",
        help="in-place retries for transient (I/O) errors per layer; "
             "default REPRO_TRANSIENT_RETRIES or 0",
    )
    quantize.set_defaults(func=_cmd_quantize)
    jobs = sub.add_parser("jobs", help="inspect durable quantization jobs")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    jobs_status = jobs_sub.add_parser(
        "status",
        help="summarize a job directory's journal: completed / failed / pending",
    )
    jobs_status.add_argument("job_dir", help="the --job-dir of a durable run")
    jobs_status.set_defaults(func=_cmd_jobs_status)
    profile = sub.add_parser(
        "profile",
        help="replay a --trace JSONL file into per-layer and metric tables",
    )
    profile.add_argument("path", help="path to the .jsonl trace")
    profile.add_argument(
        "--check", action="store_true",
        help="only validate the trace against the event schema (exit 1 on violation)",
    )
    profile.set_defaults(func=_cmd_profile)
    serve = sub.add_parser(
        "serve",
        help="serve quantized archives over HTTP: micro-batched lookup-kernel "
             "inference with hot-swap reload",
    )
    serve.add_argument(
        "--model", action="append", required=True, metavar="NAME=PATH[:CONFIG]",
        help="archive to serve as NAME; CONFIG is a zoo config name, inferred "
             "from the archive's FC census when omitted (repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--batch-window", type=float, default=5.0, metavar="MS",
        help="micro-batch collection window in milliseconds (default 5)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8,
        help="max requests fused into one kernel forward (default 8)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64,
        help="admission bound on queued requests; beyond it requests get "
             "429 + Retry-After (default 64)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=10.0, metavar="S",
        help="per-request deadline in seconds; expiry returns 504 (default 10)",
    )
    serve.add_argument(
        "--verify", default="lazy", choices=("none", "lazy", "full"),
        help="archive integrity level: per-member CRC on first access "
             "('lazy', default), whole-archive checksum up front ('full'), "
             "or none",
    )
    serve.add_argument(
        "--forward-timeout", type=float, default=30.0, metavar="S",
        help="watchdog deadline for one batch forward in seconds; a wedged "
             "worker is replaced and its batch failed as transient "
             "(0 disables; default 30)",
    )
    serve.add_argument(
        "--breaker-window", type=float, default=30.0, metavar="S",
        help="sliding window for the per-model circuit breaker in seconds "
             "(default 30)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="transient failures inside --breaker-window that trip a model "
             "into quarantine (default 5)",
    )
    serve.add_argument(
        "--quarantine-reloads", type=int, default=5,
        help="automatic reload-from-disk attempts for an integrity-"
             "quarantined model before giving up until a manual reload "
             "(default 5)",
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write an observability trace (JSONL) of the serving run to PATH",
    )
    serve.set_defaults(func=_cmd_serve)
    verify = sub.add_parser(
        "verify-archive",
        help="classify archives: ok / missing / truncated / checksum-mismatch / version-unknown",
    )
    verify.add_argument(
        "paths", nargs="+", metavar="PATH", help="path(s) to .npz archives"
    )
    verify.add_argument(
        "--quiet", action="store_true",
        help="suppress per-archive output (failures still go to stderr); exit code only",
    )
    verify.set_defaults(func=_cmd_verify_archive)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
