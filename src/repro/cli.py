"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro list                      # all reproduction targets
    python -m repro run table3                # regenerate one table/figure
    python -m repro run all                   # everything (trains on first use)
    python -m repro prewarm                   # fine-tune + cache all models
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.report import render_payload


def _cmd_list(_args: argparse.Namespace) -> int:
    for identifier in list_experiments():
        experiment = EXPERIMENTS[identifier]
        marker = "*" if experiment.needs_training else " "
        print(f"{identifier:12s} {marker} {experiment.description}")
    print("\n(* = fine-tunes tiny models on first run; checkpoints are cached)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    identifiers = list_experiments() if args.target == "all" else [args.target]
    for identifier in identifiers:
        try:
            experiment = get_experiment(identifier)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        started = time.time()
        payload = experiment.runner()
        print(f"=== {identifier}: {experiment.description} "
              f"({time.time() - started:.1f}s) ===")
        print(render_payload(payload))
        print()
    return 0


def _cmd_prewarm(_args: argparse.Namespace) -> int:
    from repro.experiments.accuracy import get_finetuned

    pairs = [
        ("bert-base", "mnli"),
        ("bert-base", "stsb"),
        ("bert-large", "squad"),
        ("distilbert", "mnli"),
        ("roberta-base", "mnli"),
        ("roberta-large", "mnli"),
    ]
    for model, task in pairs:
        started = time.time()
        finetuned = get_finetuned(model, task)
        print(
            f"{model:15s} {task:6s} baseline={finetuned.baseline_score:.4f} "
            f"({time.time() - started:.0f}s)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GOBO reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproduction targets").set_defaults(func=_cmd_list)
    run = sub.add_parser("run", help="run one target (or 'all')")
    run.add_argument("target", help="experiment id from 'list', or 'all'")
    run.set_defaults(func=_cmd_run)
    sub.add_parser(
        "prewarm", help="fine-tune and cache every evaluation model"
    ).set_defaults(func=_cmd_prewarm)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
