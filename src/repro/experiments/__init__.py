"""Experiment harness: one runner per paper table/figure."""

from repro.experiments.accuracy import (
    RECIPES,
    FinetunedModel,
    TrainRecipe,
    error_vs_baseline,
    get_finetuned,
    quantized_score,
    task_splits,
)
from repro.experiments.fidelity import (
    POLICIES,
    FidelityResult,
    fidelity_sweep,
    policy_fidelity,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.tables import TableResult

__all__ = [
    "EXPERIMENTS",
    "FidelityResult",
    "FinetunedModel",
    "POLICIES",
    "RECIPES",
    "TableResult",
    "TrainRecipe",
    "error_vs_baseline",
    "fidelity_sweep",
    "get_experiment",
    "get_finetuned",
    "list_experiments",
    "policy_fidelity",
    "quantized_score",
    "task_splits",
]
