"""Accuracy experiments: fine-tune tiny models, quantize, re-evaluate.

This is the engine behind Tables III-VI and Figure 4.  Each (model, task)
pair is fine-tuned once (checkpoint cached on disk) and then evaluated under
every quantization configuration an experiment asks for — mirroring the
paper's workflow, where one fine-tuned checkpoint feeds all quantization
variants because GOBO needs no retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.model_quantizer import quantize_model
from repro.core.policy import LayerPolicy
from repro.data import generate_mnli, generate_squad, generate_stsb
from repro.data.task import TaskSplits
from repro.experiments import cache
from repro.models import TINY_COUNTERPART, build_model, get_config
from repro.nn.module import Module
from repro.training import Trainer, evaluate

DATA_SEED = 0
MODEL_SEED = 1
TRAIN_SEED = 2


@dataclass(frozen=True)
class TrainRecipe:
    """Fine-tuning hyperparameters for one task."""

    task: str
    head: str
    num_labels: int
    num_train: int
    num_eval: int
    epochs: int
    lr: float
    batch_size: int = 32


RECIPES = {
    "mnli": TrainRecipe("mnli", "classification", 3, 3500, 800, 7, 1e-3),
    # STS-B needs more epochs than the classification tasks: the regression
    # head must average away the training-time embedding noise.
    "stsb": TrainRecipe("stsb", "regression", 0, 3000, 800, 10, 1e-3),
    "squad": TrainRecipe("squad", "span", 0, 3500, 800, 6, 1e-3),
}

_GENERATORS = {
    "mnli": generate_mnli,
    "stsb": generate_stsb,
    "squad": generate_squad,
}


@lru_cache(maxsize=8)
def task_splits(task: str) -> TaskSplits:
    """Deterministic train/eval splits for ``task`` (cached in-process)."""
    recipe = RECIPES[task]
    return _GENERATORS[task](
        num_train=recipe.num_train, num_eval=recipe.num_eval, rng=DATA_SEED
    )


def resolve_model_name(model_name: str) -> str:
    """Map a full-scale model name to its tiny trained counterpart."""
    return TINY_COUNTERPART.get(model_name, model_name)


@dataclass
class FinetunedModel:
    """A fine-tuned evaluation model plus its data and baseline score."""

    model: Module
    splits: TaskSplits
    baseline_score: float
    config_name: str
    task: str


def _build(config_name: str, recipe: TrainRecipe) -> Module:
    config = get_config(config_name)
    return build_model(
        config, task=recipe.head, num_labels=max(recipe.num_labels, 1), rng=MODEL_SEED
    )


def get_finetuned(model_name: str, task: str, use_cache: bool = True) -> FinetunedModel:
    """Fine-tune (or load from cache) ``model_name`` on ``task``."""
    if task not in RECIPES:
        raise ValueError(f"unknown task {task!r}; known: {sorted(RECIPES)}")
    recipe = RECIPES[task]
    config_name = resolve_model_name(model_name)
    splits = task_splits(task)
    model = _build(config_name, recipe)

    key = f"{config_name}-{task}-seed{MODEL_SEED}"
    if use_cache:
        cached = cache.load_state(key)
        if cached is not None:
            state, scores = cached
            try:
                model.load_state_dict(state)
            except (KeyError, ValueError):
                cached = None  # stale architecture; retrain below
            else:
                baseline = scores.get("baseline", evaluate(model, splits.eval))
                return FinetunedModel(model, splits, baseline, config_name, task)

    trainer = Trainer(model, lr=recipe.lr, batch_size=recipe.batch_size, rng=TRAIN_SEED)
    trainer.fit(splits.train, epochs=recipe.epochs)
    baseline = evaluate(model, splits.eval)
    if use_cache:
        cache.save_state(key, model.state_dict(), {"baseline": baseline})
    return FinetunedModel(model, splits, baseline, config_name, task)


def quantized_score(
    finetuned: FinetunedModel,
    weight_bits: int | LayerPolicy | None,
    embedding_bits: int | None,
    method: str = "gobo",
    workers: int | None = None,
) -> float:
    """Evaluate ``finetuned`` after quantizing weights and/or embeddings.

    ``weight_bits=None`` leaves the FC weights FP32 (Figure 4's
    embedding-only scenario).  The original model is never mutated: the
    reconstructed weights load into a fresh probe model.  ``workers=None``
    defers to the ``REPRO_WORKERS`` environment default, so whole experiment
    sweeps parallelize without touching every call site (results are
    bit-identical either way).
    """
    recipe = RECIPES[finetuned.task]
    quantized = quantize_model(
        finetuned.model,
        weight_bits=weight_bits if weight_bits is not None else 3,
        embedding_bits=embedding_bits,
        method=method,
        quantize_weights=weight_bits is not None,
        workers=workers,
    )
    probe = _build(finetuned.config_name, recipe)
    quantized.apply_to(probe)
    return evaluate(probe, finetuned.splits.eval)


def error_vs_baseline(baseline: float, score: float) -> float:
    """The paper's 'Error' column: accuracy-point loss vs the FP32 baseline."""
    return baseline - score
