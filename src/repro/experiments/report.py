"""Uniform text rendering for every experiment's payload.

The registry's runners return heterogeneous payloads (tables, figure series,
dataclasses); :func:`render_payload` turns any of them into the text the
benchmarks write to ``benchmarks/results/`` and the CLI prints.
"""

from __future__ import annotations

from repro.core.parallel import QuantizationReport
from repro.experiments.figures import (
    ConvergenceComparison,
    EmbeddingAccuracyPoint,
    LayerDistribution,
    WeightScatter,
)
from repro.experiments.tables import TableResult
from repro.utils.tables import format_table


def render_payload(payload: object) -> str:
    """Render any experiment payload as plain text."""
    if isinstance(payload, TableResult):
        return payload.render()
    if isinstance(payload, QuantizationReport):
        return payload.render()
    if isinstance(payload, list):
        if not payload:
            return "(empty)"
        if all(isinstance(item, TableResult) for item in payload):
            return "\n\n".join(item.render() for item in payload)
        if all(isinstance(item, LayerDistribution) for item in payload):
            return _render_distributions(payload)
        if all(isinstance(item, EmbeddingAccuracyPoint) for item in payload):
            return _render_embedding_accuracy(payload)
        if all(isinstance(item, tuple) and len(item) == 2 for item in payload):
            return _render_census(payload)
    if isinstance(payload, ConvergenceComparison):
        return _render_convergence(payload)
    if isinstance(payload, WeightScatter):
        return _render_scatter(payload)
    if isinstance(payload, dict):
        return _render_curves(payload)
    return repr(payload)


def _render_distributions(distributions: list[LayerDistribution]) -> str:
    rows = [
        [d.layer, f"{d.mean:+.5f}", f"{d.std:.5f}", f"{d.gaussian_overlap:.3f}"]
        for d in distributions
    ]
    return format_table(
        ["Layer", "Mean", "Std", "Gaussian overlap"],
        rows,
        title="Per-layer weight distributions",
    )


def _render_census(census: list[tuple[str, float]]) -> str:
    rows = [[name, f"{fraction * 100:.3f}%"] for name, fraction in census]
    return format_table(["Layer", "Outlier %"], rows, title="Per-layer outlier census")


def _render_convergence(comparison: ConvergenceComparison) -> str:
    lines = [
        "GOBO vs K-Means convergence",
        f"GOBO iterations    : {comparison.gobo_iterations}",
        f"K-Means iterations : {comparison.kmeans_iterations}",
        f"speedup            : {comparison.speedup:.1f}x",
        f"GOBO final L1      : {comparison.gobo_final_l1:.1f}",
        f"K-Means final L1   : {comparison.kmeans_final_l1:.1f}",
    ]
    if comparison.gobo_inference_error is not None:
        lines.append(f"GOBO inference error   : {comparison.gobo_inference_error * 100:+.2f}%")
    if comparison.kmeans_inference_error is not None:
        lines.append(
            f"K-Means inference error: {comparison.kmeans_inference_error * 100:+.2f}%"
        )
    return "\n".join(lines)


def _render_scatter(scatter: WeightScatter) -> str:
    return "\n".join(
        [
            f"Weight scatter: {scatter.layer}",
            f"points   : {scatter.values.size}",
            f"outliers : {int(scatter.is_outlier.sum())} "
            f"({scatter.outlier_fraction * 100:.3f}% of the full tensor)",
            f"cutoff |w|: {scatter.magnitude_cutoff:.5f}",
        ]
    )


def _render_embedding_accuracy(points: list[EmbeddingAccuracyPoint]) -> str:
    rows = [
        [p.model, p.scenario, f"{p.score * 100:.2f}%", f"{p.normalized:.4f}"]
        for p in points
    ]
    return format_table(
        ["Model", "Scenario", "Score", "Normalized"],
        rows,
        title="Embedding-quantization accuracy",
    )


def _render_curves(curves: dict) -> str:
    lines = ["Compression-ratio curves (group size -> ratio)"]
    for key in sorted(curves):
        series = ", ".join(f"{count}:{ratio:.2f}x" for count, ratio in curves[key])
        lines.append(f"{key}-bit: {series}")
    return "\n".join(lines)
