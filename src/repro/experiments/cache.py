"""On-disk cache for fine-tuned model checkpoints.

Fine-tuning the tiny evaluation models takes minutes on one CPU; every
benchmark that needs, say, "tiny-bert-base fine-tuned on MNLI" shares one
checkpoint through this cache.  Checkpoints are ``.npz`` state dicts keyed by
``(config, task, seed)`` and stored under the repository's ``.cache/``
directory (override with the ``REPRO_CACHE_DIR`` environment variable).

Durability: checkpoints are written atomically (tmp + fsync + rename via
:func:`repro.utils.atomic.atomic_savez`), so a crash mid-save can no longer
leave a truncated archive behind.  On load, *missing* and *corrupt* are
distinct outcomes: a missing checkpoint is the normal cold-cache case and
returns ``None`` silently, while a corrupt one emits a
:class:`CacheCorruptionWarning` and is deleted so the next run re-fine-tunes
instead of re-hitting the same broken file forever.
"""

from __future__ import annotations

import os
import warnings
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.obs import recorder as obs
from repro.utils.atomic import atomic_savez


class CacheCorruptionWarning(UserWarning):
    """A cached checkpoint existed but could not be read and was deleted."""


def cache_dir() -> Path:
    """The checkpoint cache directory (created on demand)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        path = Path(override)
    else:
        path = Path(__file__).resolve().parents[3] / ".cache" / "checkpoints"
    path.mkdir(parents=True, exist_ok=True)
    return path


def checkpoint_path(key: str) -> Path:
    """File path for a cache key (sanitized)."""
    safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in key)
    if not safe:
        raise SerializationError("cache key is empty")
    return cache_dir() / f"{safe}.npz"


def save_state(key: str, state: dict[str, np.ndarray], scores: dict[str, float] | None = None):
    """Persist a state dict (and optional scalar metrics) under ``key``.

    The write is atomic: readers racing a save observe either the previous
    complete checkpoint or the new one, never a torn file.
    """
    payload = {f"param::{name}": value for name, value in state.items()}
    for name, value in (scores or {}).items():
        payload[f"score::{name}"] = np.float64(value)
    size = atomic_savez(checkpoint_path(key), payload)
    obs.counter("cache.saved")
    obs.counter("cache.bytes_written", size)


def _discard_corrupt(path: Path, reason: str) -> None:
    warnings.warn(
        f"cached checkpoint {path.name} is corrupt ({reason}); "
        f"deleting it so the next run re-fine-tunes",
        CacheCorruptionWarning,
        stacklevel=3,
    )
    try:
        path.unlink()
    except OSError:
        pass


def load_state(key: str) -> tuple[dict[str, np.ndarray], dict[str, float]] | None:
    """Load a cached state dict, or None if absent or corrupt.

    Absent is silent (a cold cache is normal); corrupt emits a
    :class:`CacheCorruptionWarning` naming the failure and deletes the file.
    """
    path = checkpoint_path(key)
    if not path.exists():
        obs.counter("cache.miss")
        return None
    # `cache.hit` / `cache.bytes_read` count *successful* loads only: a
    # checkpoint that fails to parse contributes `cache.corrupt_evict` and
    # nothing else, so hit-rate and read-volume metrics never include bytes
    # that were thrown away.
    try:
        with np.load(path) as archive:
            state = {
                name[len("param::"):]: archive[name]
                for name in archive.files
                if name.startswith("param::")
            }
            scores = {
                name[len("score::"):]: float(archive[name])
                for name in archive.files
                if name.startswith("score::")
            }
        if not state:
            raise SerializationError("archive holds no parameters")
        size = path.stat().st_size
    except (
        OSError,
        ValueError,
        KeyError,
        TypeError,
        EOFError,
        zipfile.BadZipFile,
        SerializationError,
    ) as exc:
        reason = f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
        if isinstance(exc, SerializationError):
            reason = str(exc)
        _discard_corrupt(path, reason)
        obs.counter("cache.corrupt_evict")
        return None
    obs.counter("cache.hit")
    obs.counter("cache.bytes_read", size)
    return state, scores


def clear_cache() -> int:
    """Delete all cached checkpoints; returns how many were removed."""
    removed = 0
    for path in cache_dir().glob("*.npz"):
        path.unlink()
        removed += 1
    return removed
