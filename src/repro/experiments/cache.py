"""On-disk cache for fine-tuned model checkpoints.

Fine-tuning the tiny evaluation models takes minutes on one CPU; every
benchmark that needs, say, "tiny-bert-base fine-tuned on MNLI" shares one
checkpoint through this cache.  Checkpoints are ``.npz`` state dicts keyed by
``(config, task, seed)`` and stored under the repository's ``.cache/``
directory (override with the ``REPRO_CACHE_DIR`` environment variable).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import SerializationError


def cache_dir() -> Path:
    """The checkpoint cache directory (created on demand)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        path = Path(override)
    else:
        path = Path(__file__).resolve().parents[3] / ".cache" / "checkpoints"
    path.mkdir(parents=True, exist_ok=True)
    return path


def checkpoint_path(key: str) -> Path:
    """File path for a cache key (sanitized)."""
    safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in key)
    if not safe:
        raise SerializationError("cache key is empty")
    return cache_dir() / f"{safe}.npz"


def save_state(key: str, state: dict[str, np.ndarray], scores: dict[str, float] | None = None):
    """Persist a state dict (and optional scalar metrics) under ``key``."""
    payload = {f"param::{name}": value for name, value in state.items()}
    for name, value in (scores or {}).items():
        payload[f"score::{name}"] = np.float64(value)
    np.savez(checkpoint_path(key), **payload)


def load_state(key: str) -> tuple[dict[str, np.ndarray], dict[str, float]] | None:
    """Load a cached state dict, or None if absent/corrupt."""
    path = checkpoint_path(key)
    if not path.exists():
        return None
    try:
        with np.load(path) as archive:
            state = {
                name[len("param::"):]: archive[name]
                for name in archive.files
                if name.startswith("param::")
            }
            scores = {
                name[len("score::"):]: float(archive[name])
                for name in archive.files
                if name.startswith("score::")
            }
    except (OSError, ValueError, KeyError):
        return None
    if not state:
        return None
    return state, scores


def clear_cache() -> int:
    """Delete all cached checkpoints; returns how many were removed."""
    removed = 0
    for path in cache_dir().glob("*.npz"):
        path.unlink()
        removed += 1
    return removed
