"""Per-layer quantization-sensitivity analysis.

Section V of the paper reports that two FC layers per encoder (the Value
projection and the Intermediate FC) in the first half of RoBERTa's stack are
the quantization-sensitive ones — a finding that motivates the mixed 3b/4b
policy.  This module provides the tool that produces such findings: quantize
**one layer at a time** at an aggressive bit width, re-evaluate, and rank
layers by the accuracy they cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.model_quantizer import quantize_state_dict, select_parameters
from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD
from repro.core.quantizer import quantize_tensor
from repro.data.task import TaskData
from repro.nn.module import Module
from repro.training.trainer import evaluate


@dataclass(frozen=True)
class LayerSensitivity:
    """Accuracy cost of quantizing one layer in isolation."""

    layer: str
    score: float
    drop: float


@dataclass(frozen=True)
class ReconstructionPoint:
    """One (layer, bits) cell of a data-free sensitivity scan."""

    layer: str
    bits: int
    squared_error: float
    compressed_bytes: int


def reconstruction_sensitivity_scan(
    state: Mapping[str, np.ndarray],
    layer_names: tuple[str, ...],
    candidates: tuple[int, ...] = (2, 3, 4, 5),
) -> dict[str, dict[int, ReconstructionPoint]]:
    """Data-free per-layer sensitivity: reconstruction error vs bit width.

    The accuracy-based :func:`layer_sensitivity_scan` needs a trained model
    and an eval split; this variant needs only the state dict, making it
    usable at quantization time (it is what
    :class:`repro.quant.mixedbits.MixedBitsQuantizer` allocates from).  Each
    layer is quantized at every candidate width with the non-iterative
    uniform-partition method — a deterministic, fast proxy whose error
    ordering across widths matches the clustered methods' — and scored by
    total squared reconstruction error and byte cost.

    Returns ``{layer: {bits: ReconstructionPoint}}``.
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    scan: dict[str, dict[int, ReconstructionPoint]] = {}
    for name in layer_names:
        weights = np.asarray(state[name], dtype=np.float64)
        per_bits: dict[int, ReconstructionPoint] = {}
        for bits in sorted(set(candidates)):
            # "repair" so pathological tensors still yield a (degenerate,
            # exactly reconstructed) point; the real quantization pass
            # applies the caller's validation policy.
            tensor, _ = quantize_tensor(
                weights, bits=bits, method="linear", validation="repair"
            )
            diff = weights - tensor.dequantize(dtype=np.float64)
            per_bits[bits] = ReconstructionPoint(
                layer=name,
                bits=bits,
                squared_error=float(np.square(diff).sum()),
                compressed_bytes=tensor.storage().compressed_bytes,
            )
        scan[name] = per_bits
    return scan


def layer_sensitivity_scan(
    model: Module,
    probe: Module,
    eval_data: TaskData,
    bits: int = 2,
    layers: tuple[str, ...] | None = None,
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    workers: int | None = None,
) -> list[LayerSensitivity]:
    """Rank FC layers of ``model`` by their isolated quantization cost.

    ``probe`` must be a fresh model of the same architecture (it is reloaded
    for every layer).  ``bits`` defaults to 2 so that per-layer differences
    are large enough to rank reliably.  ``workers`` is forwarded to the
    quantization engine (None = the ``REPRO_WORKERS`` environment default).
    Returns results sorted most-sensitive first.
    """
    selection = select_parameters(model)
    targets = layers if layers is not None else selection.fc_names
    unknown = set(targets) - set(selection.fc_names)
    if unknown:
        raise ValueError(f"not FC layers of this model: {sorted(unknown)}")
    state = model.state_dict()
    baseline = evaluate(model, eval_data)
    results = []
    for name in targets:
        quantized = quantize_state_dict(
            state,
            fc_names=(name,),
            embedding_names=(),
            weight_bits=bits,
            embedding_bits=None,
            log_prob_threshold=log_prob_threshold,
            workers=workers,
        )
        probe.load_state_dict(quantized.state_dict())
        score = evaluate(probe, eval_data)
        results.append(LayerSensitivity(layer=name, score=score, drop=baseline - score))
    return sorted(results, key=lambda r: r.drop, reverse=True)


def sensitive_components(
    results: list[LayerSensitivity], top_fraction: float = 0.25
) -> dict[str, int]:
    """Count which FC components dominate the most-sensitive layers.

    Returns e.g. ``{"attention.value": 3, "intermediate": 2, ...}`` over the
    top ``top_fraction`` of the ranking — the summary view in which the
    paper's "Value and Intermediate are the sensitive ones" appears.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    take = max(1, int(round(len(results) * top_fraction)))
    counts: dict[str, int] = {}
    for result in results[:take]:
        parts = result.layer.split(".")
        # encoder.<i>.<component...>.weight -> the component path.
        if "encoder" in parts:
            start = parts.index("encoder") + 2
            component = ".".join(parts[start:-1])
        else:
            component = parts[-2]
        counts[component] = counts.get(component, 0) + 1
    return dict(sorted(counts.items(), key=lambda item: -item[1]))
