"""Reproduction of the paper's Tables I-VII.

Each ``table*`` function returns a :class:`TableResult` whose rows mirror the
corresponding table in the paper.  Accuracy cells come from the fine-tuned
tiny models (see :mod:`repro.experiments.accuracy`); compression-ratio cells
are computed at the *real* model dimensions via byte-accurate storage
accounting over full-scale synthetic weights, so they are directly comparable
with the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.core.formats import potential_compression_ratio, storage_report
from repro.core.model_quantizer import quantize_model
from repro.core.outliers import OutlierDetector
from repro.core.parallel import QuantizationReport
from repro.core.policy import mixed_precision_policy
from repro.experiments.accuracy import (
    FinetunedModel,
    error_vs_baseline,
    get_finetuned,
    quantized_score,
)
from repro.models import get_config
from repro.models.config import BertConfig
from repro.models.footprint import (
    BYTES_PER_FP32,
    MIB,
    architecture_table,
    embedding_table_count,
    fc_weight_count,
    memory_footprint,
    total_parameter_count,
)
from repro.models.zoo import build_model, fc_layer_shapes, synthetic_model_weights
from repro.utils.tables import format_table


@dataclass
class TableResult:
    """A rendered-table payload: title, headers, and rows."""

    title: str
    headers: list[str]
    rows: list[list]

    def render(self, float_fmt: str = "{:.2f}") -> str:
        return format_table(self.headers, self.rows, title=self.title, float_fmt=float_fmt)


# ---------------------------------------------------------------------------
# Full-scale storage accounting helpers
# ---------------------------------------------------------------------------


@lru_cache(maxsize=16)
def measured_outlier_fractions(config_name: str, include_embeddings: bool = False):
    """Per-layer outlier fractions of full-scale synthetic weights.

    Only the Gaussian fit and log-pdf run per layer (no clustering), so this
    is cheap even at BERT-Large scale.  Results are cached per config.
    """
    config = get_config(config_name)
    detector = OutlierDetector()
    fractions: dict[str, float] = {}
    for name, weights in synthetic_model_weights(
        config, rng=0, include_embeddings=include_embeddings
    ):
        fractions[name] = detector.split(weights).outlier_fraction
    return fractions


def gobo_model_bytes(
    config: BertConfig,
    weight_bits: int,
    embedding_bits: int | None,
    outlier_fraction: float = 0.001,
) -> int:
    """GOBO-compressed byte size of a full-scale model (weights + word table)."""
    total = 0
    for _, shape in fc_layer_shapes(config):
        count = shape[0] * shape[1]
        outliers = int(round(count * outlier_fraction))
        total += storage_report(count, outliers, weight_bits).compressed_bytes
    if embedding_bits is not None:
        count = embedding_table_count(config)
        outliers = int(round(count * outlier_fraction))
        total += storage_report(count, outliers, embedding_bits).compressed_bytes
    return total


def fp32_model_bytes(config: BertConfig, include_embeddings: bool = True) -> int:
    """FP32 byte size of the tensors the quantizers touch."""
    total = fc_weight_count(config) * BYTES_PER_FP32
    if include_embeddings:
        total += embedding_table_count(config) * BYTES_PER_FP32
    return total


def qbert_model_bytes(config: BertConfig, weight_bits: int, num_groups: int = 128) -> int:
    """Q-BERT-like compressed size: per-group dictionaries + 8-bit embeddings."""
    total = 0
    for _, shape in fc_layer_shapes(config):
        count = shape[0] * shape[1]
        total += count * weight_bits // 8
        total += num_groups * (1 << weight_bits) * BYTES_PER_FP32
    total += embedding_table_count(config)  # 8-bit embeddings: 1 byte each
    return total


def q8bert_model_bytes(config: BertConfig) -> int:
    """Q8BERT compressed size: 8-bit weights and embeddings."""
    return (fc_weight_count(config) + embedding_table_count(config)) * 1


#: Gaussian mass outside mean±3σ — the zero-shot grid's clip (= outlier) rate.
ZEROSHOT_CLIP_FRACTION = math.erfc(3.0 / math.sqrt(2.0))


def zeroshot_model_bytes(config: BertConfig, bits: int = 8) -> int:
    """Zero-shot dynamic compressed size (uniform mean±3σ grid, all tensors).

    Weights and embeddings share the same width; the clipped tail (~0.27% of
    a Gaussian) is stored FP32, exactly like GOBO outliers.
    """
    total = 0
    for _, shape in fc_layer_shapes(config):
        count = shape[0] * shape[1]
        outliers = int(round(count * ZEROSHOT_CLIP_FRACTION))
        total += storage_report(count, outliers, bits).compressed_bytes
    count = embedding_table_count(config)
    outliers = int(round(count * ZEROSHOT_CLIP_FRACTION))
    total += storage_report(count, outliers, bits).compressed_bytes
    return total


def zoo_model_bytes(config: BertConfig, spec: str, outlier_fraction: float) -> int:
    """Full-scale compressed byte size for any registered method spec.

    ``outlier_fraction`` is the measured GOBO split rate (used for the
    Gaussian-split families); saliency-ranked (gwq) and clip-based (zeroshot)
    families carry their own rates inside the spec.
    """
    from repro.quant.registry import parse_spec

    family, values = parse_spec(spec)
    if family.name == "q8bert":
        return q8bert_model_bytes(config)
    if family.name == "qbert":
        return qbert_model_bytes(config, values["bits"])
    if family.name == "gobo":
        return gobo_model_bytes(config, values["bits"], 4, outlier_fraction)
    if family.name == "zeroshot":
        return zeroshot_model_bytes(config, values["bits"])
    if family.name == "gwq":
        # GWQ keeps exactly pct% FP32 by saliency rank; same container as GOBO.
        return gobo_model_bytes(config, values["bits"], 4, values["pct"] / 100.0)
    if family.name == "mixed":
        # The allocator guarantees the FC footprint stays under the budget;
        # embeddings ride along as GOBO 4-bit.
        fc_budget = fc_weight_count(config) * BYTES_PER_FP32 * values["pct"] / 100.0
        count = embedding_table_count(config)
        outliers = int(round(count * outlier_fraction))
        return int(fc_budget) + storage_report(count, outliers, 4).compressed_bytes
    raise ValueError(f"no full-scale byte model for method family {family.name!r}")


# ---------------------------------------------------------------------------
# Table I / II — architecture and footprint
# ---------------------------------------------------------------------------


def table1_architecture(config_names: tuple[str, ...] = ("bert-base", "bert-large")):
    """Table I: BERT layer counts and per-component FC dimensions."""
    rows = []
    for name in config_names:
        config = get_config(name)
        for spec in architecture_table(config):
            rows.append(
                [
                    config.name,
                    config.num_layers,
                    spec.component,
                    f"{spec.count_per_layer}x",
                    f"{spec.rows} x {spec.cols}",
                ]
            )
        rows.append(
            [config.name, config.num_layers, "Total FC layers", "", config.num_fc_layers]
        )
        rows.append(
            [config.name, config.num_layers, "Total parameters", "",
             f"{total_parameter_count(config) / 1e6:.0f}M"]
        )
    return TableResult(
        title="Table I: BERT Architecture",
        headers=["Model", "BERT layers", "Component", "FC #", "Dimensions"],
        rows=rows,
    )


def table2_footprint(
    config_names: tuple[str, ...] = ("bert-base", "bert-large"),
    sequence_length: int = 128,
):
    """Table II: memory footprint (embeddings, weights, activations)."""
    rows = []
    for name in config_names:
        fp = memory_footprint(get_config(name), sequence_length)
        rows.append(
            [
                fp.model,
                f"{fp.embedding_mib:.2f} MB",
                f"{fp.weight_mib:.2f} MB",
                f"{fp.input_bytes_per_word // 1024} KB",
                f"{fp.largest_act_bytes_per_word // 1024} KB",
                fp.sequence_length,
                f"{fp.activation_mib:.1f} MB",
            ]
        )
    return TableResult(
        title="Table II: BERT Memory Footprint",
        headers=[
            "Model",
            "Embedding Tables",
            "Weights",
            "Input/Word",
            "Largest Acts/Word",
            "Seq Len",
            "Activations",
        ],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table III — method comparison on MNLI / BERT-Base
# ---------------------------------------------------------------------------


def table3_method_comparison(full_scale_model: str = "bert-base", use_cache: bool = True):
    """Table III: GOBO vs Q8BERT vs Q-BERT on MNLI (accuracy + real-scale CR)."""
    config = get_config(full_scale_model)
    finetuned = get_finetuned(full_scale_model, "mnli", use_cache=use_cache)
    baseline = finetuned.baseline_score
    fp32_bytes = fp32_model_bytes(config)
    outlier_fraction = _average_outlier_fraction(full_scale_model)

    def cr(compressed: int) -> float:
        return fp32_bytes / compressed

    rows = [
        ["Baseline", "FP32", "FP32", _pct(baseline), "-", "-", "1.00x"],
    ]

    # Q8BERT: 8-bit fixed point on weights and embeddings, fine-tuned.
    from repro.core.model_quantizer import select_parameters
    from repro.quant import Q8BertQuantizer, QBertQuantizer

    selection = select_parameters(finetuned.model)
    state = finetuned.model.state_dict()

    def eval_compressed(compressed) -> float:
        from repro.experiments.accuracy import RECIPES, _build
        from repro.training import evaluate

        probe = _build(finetuned.config_name, RECIPES[finetuned.task])
        probe.load_state_dict(compressed.state_dict())
        return evaluate(probe, finetuned.splits.eval)

    q8_score = eval_compressed(
        Q8BertQuantizer().compress(state, selection.fc_names, selection.embedding_names)
    )
    rows.append(
        ["Q8BERT", "8-bit", "8-bit", _pct(q8_score), _pct(error_vs_baseline(baseline, q8_score)),
         "no", f"{cr(q8bert_model_bytes(config)):.2f}x"]
    )
    for bits in (3, 4):
        qb_score = eval_compressed(
            QBertQuantizer(weight_bits=bits).compress(
                state, selection.fc_names, selection.embedding_names
            )
        )
        rows.append(
            [f"Q-BERT", f"{bits}-bit", "8-bit", _pct(qb_score),
             _pct(error_vs_baseline(baseline, qb_score)), "no",
             f"{cr(qbert_model_bytes(config, bits)):.2f}x"]
        )
    for bits in (3, 4):
        gobo_score = quantized_score(finetuned, bits, 4, method="gobo")
        compressed = gobo_model_bytes(config, bits, 4, outlier_fraction)
        rows.append(
            ["GOBO", f"{bits}-bit", "4-bit", _pct(gobo_score),
             _pct(error_vs_baseline(baseline, gobo_score)), "yes",
             f"{cr(compressed):.2f}x"]
        )
    return TableResult(
        title=f"Table III: Quantization Methods, {full_scale_model} on MNLI",
        headers=["Method", "Weights", "Embedding", "Accuracy (m)", "Error",
                 "No Fine-tuning", "Compression Ratio"],
        rows=rows,
    )


def table3_method_zoo(
    full_scale_model: str = "bert-base",
    use_cache: bool = True,
    specs: tuple[str, ...] | None = None,
) -> TableResult:
    """Table III extended to every registered method spec.

    One row per spec in :func:`repro.quant.registry.available_specs` — the
    paper's lineup plus the post-training zoo (zero-shot dynamic,
    gradient-aware outliers, mixed-precision allocation).  Accuracy is
    measured on the fine-tuned tiny stand-in through each quantizer's
    ``compress`` path; compression ratios are computed at the real model
    dimensions via :func:`zoo_model_bytes`.  A method registered through the
    registry lands here with no further wiring.
    """
    from repro.core.model_quantizer import select_parameters
    from repro.quant.registry import available_specs, build_quantizer

    config = get_config(full_scale_model)
    finetuned = get_finetuned(full_scale_model, "mnli", use_cache=use_cache)
    baseline = finetuned.baseline_score
    fp32_bytes = fp32_model_bytes(config)
    outlier_fraction = _average_outlier_fraction(full_scale_model)
    selection = select_parameters(finetuned.model)
    state = finetuned.model.state_dict()

    def eval_compressed(compressed) -> float:
        from repro.experiments.accuracy import RECIPES, _build
        from repro.training import evaluate

        probe = _build(finetuned.config_name, RECIPES[finetuned.task])
        probe.load_state_dict(compressed.state_dict())
        return evaluate(probe, finetuned.splits.eval)

    rows = [["Baseline", _pct(baseline), "-", "1.00x"]]
    for spec in specs if specs is not None else available_specs():
        quantizer = build_quantizer(spec)
        score = eval_compressed(
            quantizer.compress(state, selection.fc_names, selection.embedding_names)
        )
        ratio = fp32_bytes / zoo_model_bytes(config, spec, outlier_fraction)
        rows.append(
            [spec, _pct(score), _pct(error_vs_baseline(baseline, score)),
             f"{ratio:.2f}x"]
        )
    return TableResult(
        title=f"Table III (zoo): All registered methods, {full_scale_model} on MNLI",
        headers=["Spec", "Accuracy (m)", "Error", "Compression Ratio"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Tables IV-VI — centroid-selection policies per model/task
# ---------------------------------------------------------------------------


def centroid_policy_table(
    model_name: str,
    task: str,
    bits_list: tuple[int, ...] = (2, 3, 4, 5),
    policies: tuple[str, ...] = ("linear", "kmeans", "gobo"),
    use_cache: bool = True,
    mixed_rows: bool = False,
) -> TableResult:
    """The Table IV/V/VI layout for one (model, task) pair.

    ``mixed_rows=True`` adds the RoBERTa-style 3b/4b mixed-precision row.
    """
    finetuned = get_finetuned(model_name, task, use_cache=use_cache)
    baseline = finetuned.baseline_score
    rows = [[32, "baseline"] + [_pct(baseline), "-"] + [potential_compression_ratio_str(32)]]
    for bits in bits_list:
        for policy in policies:
            score = quantized_score(finetuned, bits, None, method=policy)
            rows.append(
                [bits, policy, _pct(score), _pct(error_vs_baseline(baseline, score)),
                 potential_compression_ratio_str(bits)]
            )
    if mixed_rows:
        config = get_config(finetuned.config_name)
        sensitive = max(1, round(config.num_layers / 2))
        policy = mixed_precision_policy(sensitive, sensitive_bits=4, default_bits=3)
        score = quantized_score(finetuned, policy, None, method="gobo")
        rows.append(
            ["3b/4b", "gobo-mixed", _pct(score), _pct(error_vs_baseline(baseline, score)),
             f"~{32 / 3.3:.2f}x"]
        )
    return TableResult(
        title=f"Centroid selection policies: {model_name} on {task.upper()} "
              f"(evaluated on {finetuned.config_name})",
        headers=["Bits", "Policy", "Score", "Error", "Potential CR"],
        rows=rows,
    )


def table4_bert(use_cache: bool = True) -> list[TableResult]:
    """Table IV: MNLI + STS-B on BERT-Base, SQuAD on BERT-Large."""
    return [
        centroid_policy_table("bert-base", "mnli", (2, 3, 4, 5, 6), use_cache=use_cache),
        centroid_policy_table("bert-base", "stsb", (2, 3, 4, 5), use_cache=use_cache),
        centroid_policy_table("bert-large", "squad", (2, 3, 4, 5, 6, 7), use_cache=use_cache),
    ]


def table5_distilbert(use_cache: bool = True) -> TableResult:
    """Table V: DistilBERT on MNLI (K-Means vs GOBO)."""
    return centroid_policy_table(
        "distilbert", "mnli", (3, 4, 5), policies=("kmeans", "gobo"), use_cache=use_cache
    )


def table6_roberta(use_cache: bool = True) -> list[TableResult]:
    """Table VI: RoBERTa and RoBERTa-Large on MNLI incl. mixed 3b/4b rows."""
    return [
        centroid_policy_table(
            "roberta-base", "mnli", (3, 4, 5), policies=("kmeans", "gobo"),
            use_cache=use_cache, mixed_rows=True,
        ),
        centroid_policy_table(
            "roberta-large", "mnli", (3, 4, 5), policies=("kmeans", "gobo"),
            use_cache=use_cache, mixed_rows=True,
        ),
    ]


# ---------------------------------------------------------------------------
# Table VII — embedding table compression
# ---------------------------------------------------------------------------

_TABLE7_MODELS = (
    ("bert-base", "MNLI"),
    ("bert-large", "SQuAD v1.1"),
    ("distilbert", "MNLI"),
    ("roberta-base", "MNLI"),
    ("roberta-large", "MNLI"),
)


def table7_embeddings(outlier_fraction: float = 0.001) -> TableResult:
    """Table VII: word-embedding table size and CR at 3 and 4 bits."""
    rows = []
    for model_name, task in _TABLE7_MODELS:
        config = get_config(model_name)
        count = embedding_table_count(config)
        outliers = int(round(count * outlier_fraction))
        fp32_mib = count * BYTES_PER_FP32 / MIB
        cells = [f"{model_name}/{task}", f"{fp32_mib:.2f} MB"]
        for bits in (3, 4):
            report = storage_report(count, outliers, bits)
            cells.append(f"{report.compressed_bytes / MIB:.2f} MB")
            cells.append(f"{report.compression_ratio:.2f}x")
        rows.append(cells)
    return TableResult(
        title="Table VII: Embedding size (MB) and compression ratio",
        headers=["Model/Task", "Baseline FP32", "3-bit", "CR", "4-bit", "CR"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# quantization-engine instrumentation
# ---------------------------------------------------------------------------


def engine_report(workers: int | None = None) -> QuantizationReport:
    """Per-layer quantization cost on the tiny zoo BERT.

    Runs the layer-parallel engine over every FC matrix and embedding table
    and returns its :class:`~repro.core.parallel.QuantizationReport`
    (wall-time, iterations, outlier fraction and bytes per layer) — the
    quantization-time axis Q8BERT and the PTQ surveys treat as first-class.
    ``workers=None`` defers to the ``REPRO_WORKERS`` environment default.
    """
    model = build_model(get_config("tiny-bert-base"), task="encoder", rng=0)
    quantized = quantize_model(model, weight_bits=3, embedding_bits=4, workers=workers)
    return quantized.report


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _pct(value: float) -> str:
    return f"{value * 100:.2f}%"


def potential_compression_ratio_str(bits: int) -> str:
    return f"{potential_compression_ratio(bits):.2f}x"


@lru_cache(maxsize=8)
def _average_outlier_fraction(config_name: str) -> float:
    fractions = measured_outlier_fractions(config_name)
    config = get_config(config_name)
    weights = {name: shape[0] * shape[1] for name, shape in fc_layer_shapes(config)}
    total = sum(weights.values())
    return sum(fractions[name] * weights[name] for name in fractions) / total
