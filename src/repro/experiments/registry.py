"""Registry mapping the paper's table/figure identifiers to their runners.

Used by the benchmark harness and the examples to enumerate every
reproduction target (see DESIGN.md's per-experiment index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import figures, tables


@dataclass(frozen=True)
class Experiment:
    """One reproduction target."""

    identifier: str
    description: str
    runner: Callable
    needs_training: bool


EXPERIMENTS: dict[str, Experiment] = {
    exp.identifier: exp
    for exp in (
        Experiment(
            "table1", "BERT architecture inventory", tables.table1_architecture, False
        ),
        Experiment("table2", "Memory footprint", tables.table2_footprint, False),
        Experiment(
            "table3", "Quantization-method comparison on MNLI",
            tables.table3_method_comparison, True,
        ),
        Experiment(
            "table3zoo", "Every registered method spec on MNLI",
            tables.table3_method_zoo, True,
        ),
        Experiment(
            "table4", "Centroid policies: BERT-Base MNLI/STS-B, BERT-Large SQuAD",
            tables.table4_bert, True,
        ),
        Experiment("table5", "Centroid policies: DistilBERT MNLI", tables.table5_distilbert, True),
        Experiment(
            "table6", "Centroid policies + mixed precision: RoBERTa MNLI",
            tables.table6_roberta, True,
        ),
        Experiment("table7", "Embedding-table compression", tables.table7_embeddings, False),
        Experiment(
            "engine", "Per-layer quantization cost (parallel engine report)",
            tables.engine_report, False,
        ),
        Experiment("fig1b", "Per-layer weight distributions", figures.fig1b_distributions, False),
        Experiment("fig1c", "Weight scatter with outlier fringe", figures.fig1c_weight_scatter, False),
        Experiment("fig2", "GOBO vs K-Means convergence", figures.fig2_convergence, False),
        Experiment("fig3", "Per-layer outlier census", figures.fig3_outlier_census, False),
        Experiment(
            "fig3-curve", "Compression ratio vs dictionary group size",
            figures.fig3_compression_curve, False,
        ),
        Experiment(
            "fig4", "Embedding-quantization accuracy", figures.fig4_embedding_accuracy, True
        ),
    )
}


def get_experiment(identifier: str) -> Experiment:
    try:
        return EXPERIMENTS[identifier]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {identifier!r}; known: {known}") from None


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)
