"""Reproduction of the paper's Figures 1-4 as data series.

Each ``fig*`` function returns the numeric series a plotting tool would
consume (the benchmarks print compact text renderings), so "regenerating a
figure" means regenerating its data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clustering import ConvergenceTrace, gobo_cluster, kmeans_cluster
from repro.core.formats import compression_curve
from repro.core.outliers import OutlierDetector
from repro.experiments.accuracy import get_finetuned, quantized_score
from repro.models import get_config
from repro.models.zoo import (
    SyntheticWeightSpec,
    fc_layer_shapes,
    synthetic_layer_for,
    synthetic_layer_weights,
)
from repro.stats import gaussian_overlap, summarize_weights, weight_histogram


# ---------------------------------------------------------------------------
# Figure 1b/1c — weight distributions and the outlier fringe
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LayerDistribution:
    """One layer's Figure 1b histogram plus Gaussianity summary."""

    layer: str
    centers: np.ndarray
    counts: np.ndarray
    mean: float
    std: float
    gaussian_overlap: float


def fig1b_distributions(
    config_name: str = "bert-base",
    layer_indices: tuple[int, ...] = (5, 10, 15, 20, 25),
    bins: int = 80,
) -> list[LayerDistribution]:
    """Per-layer weight histograms (Figure 1b) on full-scale synthetic weights."""
    config = get_config(config_name)
    results = []
    for index in layer_indices:
        name, weights = synthetic_layer_for(config, index)
        histogram = weight_histogram(weights, bins=bins)
        summary = summarize_weights(weights)
        results.append(
            LayerDistribution(
                layer=name,
                centers=histogram.centers,
                counts=histogram.counts,
                mean=summary.mean,
                std=summary.std,
                gaussian_overlap=gaussian_overlap(weights),
            )
        )
    return results


@dataclass(frozen=True)
class WeightScatter:
    """Figure 1c series: sampled weights colored by outlier membership.

    ``outlier_fraction`` is the full tensor's fraction — the sampled series
    keeps every outlier visible, so computing the fraction from the sample
    would overstate it.
    """

    layer: str
    positions: np.ndarray
    values: np.ndarray
    is_outlier: np.ndarray
    magnitude_cutoff: float
    outlier_fraction: float


def fig1c_weight_scatter(
    config_name: str = "bert-base",
    layer_index: int = 10,
    sample: int = 20000,
    rng: int = 0,
) -> WeightScatter:
    """Sampled weight-value scatter of one layer with outlier classification."""
    config = get_config(config_name)
    name, weights = synthetic_layer_for(config, layer_index)
    weights = weights.ravel()
    detector = OutlierDetector()
    split = detector.split(weights)
    gen = np.random.default_rng(rng)
    take = min(sample, weights.size)
    idx = np.sort(gen.choice(weights.size, size=take, replace=False))
    # Keep every outlier visible regardless of sampling (the sampled series
    # therefore over-represents outliers; ``outlier_fraction`` reports the
    # true full-tensor fraction).
    idx = np.union1d(idx, np.flatnonzero(split.outlier_mask.ravel()))
    return WeightScatter(
        layer=name,
        positions=idx,
        values=weights[idx],
        is_outlier=split.outlier_mask.ravel()[idx],
        magnitude_cutoff=detector.magnitude_cutoff(weights),
        outlier_fraction=split.outlier_fraction,
    )


# ---------------------------------------------------------------------------
# Figure 2 — GOBO vs K-Means convergence
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConvergenceComparison:
    """Figure 2 series: L1/L2 per iteration for both algorithms."""

    gobo_trace: ConvergenceTrace
    kmeans_trace: ConvergenceTrace
    gobo_iterations: int
    kmeans_iterations: int
    gobo_final_l1: float
    kmeans_final_l1: float
    gobo_inference_error: float | None = None
    kmeans_inference_error: float | None = None

    @property
    def speedup(self) -> float:
        """How many times fewer iterations GOBO needs (paper: ~9x)."""
        if self.gobo_iterations == 0:
            return float("inf")
        return self.kmeans_iterations / self.gobo_iterations


def fig2_convergence(
    layer_shape: tuple[int, int] = (768, 768),
    bits: int = 3,
    rng: int = 0,
    with_inference_error: bool = False,
    use_cache: bool = True,
) -> ConvergenceComparison:
    """GOBO vs K-Means on one representative layer's G group.

    ``with_inference_error=True`` additionally quantizes the fine-tuned
    MNLI model with both policies and reports the accuracy losses the
    figure annotates.
    """
    weights = synthetic_layer_weights(layer_shape, SyntheticWeightSpec(), rng=rng)
    split = OutlierDetector().split(weights)
    gaussian = split.gaussian_values(weights).astype(np.float64)
    gobo = gobo_cluster(gaussian, bits)
    kmeans = kmeans_cluster(gaussian, bits)
    gobo_error = kmeans_error = None
    if with_inference_error:
        finetuned = get_finetuned("bert-base", "mnli", use_cache=use_cache)
        baseline = finetuned.baseline_score
        gobo_error = baseline - quantized_score(finetuned, bits, None, method="gobo")
        kmeans_error = baseline - quantized_score(finetuned, bits, None, method="kmeans")
    return ConvergenceComparison(
        gobo_trace=gobo.trace,
        kmeans_trace=kmeans.trace,
        gobo_iterations=gobo.iterations,
        kmeans_iterations=kmeans.iterations,
        gobo_final_l1=gobo.l1_norm(),
        kmeans_final_l1=kmeans.l1_norm(),
        gobo_inference_error=gobo_error,
        kmeans_inference_error=kmeans_error,
    )


# ---------------------------------------------------------------------------
# Figure 3 — outlier census and the compression-ratio curve
# ---------------------------------------------------------------------------


def fig3_outlier_census(config_name: str = "bert-base") -> list[tuple[str, float]]:
    """Per-FC-layer outlier percentage across the whole model (Figure 3)."""
    config = get_config(config_name)
    detector = OutlierDetector()
    census = []
    for position in range(config.num_fc_layers):
        name, weights = synthetic_layer_for(config, position)
        census.append((name, detector.split(weights).outlier_fraction))
    return census


def fig3_compression_curve(
    bits_list: tuple[int, ...] = (2, 3, 4, 5, 6),
    weight_counts: tuple[int, ...] = (4, 16, 64, 256, 1024, 4096, 65536, 1 << 20),
) -> dict[int, list[tuple[int, float]]]:
    """Compression ratio vs dictionary group size, per bit width."""
    return {bits: compression_curve(bits, list(weight_counts)) for bits in bits_list}


# ---------------------------------------------------------------------------
# Figure 4 — embedding-table quantization accuracy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EmbeddingAccuracyPoint:
    """One bar of Figure 4: a model under one quantization scenario."""

    model: str
    scenario: str
    score: float
    normalized: float


FIG4_SCENARIOS = (
    ("fp32-weights, 3-bit embeddings", None, 3),
    ("fp32-weights, 4-bit embeddings", None, 4),
    ("gobo 3-bit weights, 3-bit embeddings", 3, 3),
    ("gobo 3-bit weights, 4-bit embeddings", 3, 4),
)


def fig4_embedding_accuracy(
    model_names: tuple[str, ...] = (
        "bert-base", "bert-large", "distilbert", "roberta-base", "roberta-large"
    ),
    task: str = "mnli",
    use_cache: bool = True,
) -> list[EmbeddingAccuracyPoint]:
    """Normalized accuracy under embedding-only and full GOBO quantization."""
    points = []
    for model_name in model_names:
        finetuned = get_finetuned(model_name, task, use_cache=use_cache)
        baseline = finetuned.baseline_score
        for scenario, weight_bits, embedding_bits in FIG4_SCENARIOS:
            score = quantized_score(finetuned, weight_bits, embedding_bits, method="gobo")
            points.append(
                EmbeddingAccuracyPoint(
                    model=model_name,
                    scenario=scenario,
                    score=score,
                    normalized=score / baseline if baseline else 0.0,
                )
            )
    return points
