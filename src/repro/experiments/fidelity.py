"""Weight-space fidelity experiments on full-scale synthetic weights.

The paper's accuracy ordering between centroid-selection policies (GOBO >
K-Means >> linear at equal bits) is driven by reconstruction fidelity on
Gaussian-distributed weights: inference error tracks the L1-norm between
weights and their centroids (Section IV-B, Figure 2).  Tiny from-scratch
models do not share pretrained BERT's "every weight matters" sensitivity
profile (see DESIGN.md), so this module reproduces the policy ordering where
it actually lives — in weight space, at the real model dimensions — while the
accuracy tables report the trained-model results.

For each FC layer of a full-scale synthetic model, the G group is quantized
with each policy and the per-weight L1/L2 reconstruction errors recorded.
Expected shape: ``gobo L1 < kmeans L1 << linear L1``, with the linear policy
several times worse — the weight-space counterpart of Table IV's accuracy
columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.binning import assign_to_centroids, linear_centroids
from repro.core.clustering import gobo_cluster, kmeans_cluster
from repro.core.outliers import OutlierDetector
from repro.models.zoo import SyntheticWeightSpec, synthetic_layer_weights

POLICIES = ("linear", "kmeans", "gobo")


@dataclass(frozen=True)
class FidelityResult:
    """Reconstruction fidelity of one policy on one weight tensor."""

    policy: str
    bits: int
    mean_abs_error: float
    rmse: float
    iterations: int

    def normalized_to(self, reference: "FidelityResult") -> float:
        """This policy's mean |error| relative to ``reference``'s."""
        if reference.mean_abs_error == 0:
            return float("inf")
        return self.mean_abs_error / reference.mean_abs_error


def policy_fidelity(
    weights: np.ndarray,
    bits: int,
    policy: str,
    detector: OutlierDetector | None = None,
) -> FidelityResult:
    """Quantize the G group of ``weights`` with ``policy``; report errors."""
    detector = detector or OutlierDetector()
    split = detector.split(weights)
    gaussian = split.gaussian_values(weights).astype(np.float64)
    if policy == "gobo":
        result = gobo_cluster(gaussian, bits)
        centroids, assignment = result.centroids, result.assignment
        iterations = result.iterations
    elif policy == "kmeans":
        result = kmeans_cluster(gaussian, bits)
        centroids, assignment = result.centroids, result.assignment
        iterations = result.iterations
    elif policy == "linear":
        centroids = linear_centroids(gaussian, 1 << bits)
        assignment = assign_to_centroids(gaussian, centroids)
        iterations = 1
    else:
        raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
    residual = gaussian - centroids[assignment]
    return FidelityResult(
        policy=policy,
        bits=bits,
        mean_abs_error=float(np.abs(residual).mean()),
        rmse=float(np.sqrt(np.square(residual).mean())),
        iterations=iterations,
    )


def fidelity_sweep(
    bits_list: tuple[int, ...] = (2, 3, 4, 5),
    policies: tuple[str, ...] = POLICIES,
    layer_shape: tuple[int, int] = (768, 768),
    spec: SyntheticWeightSpec | None = None,
    rng: int = 0,
) -> list[FidelityResult]:
    """Fidelity of every (policy, bits) pair on one synthetic full-scale layer."""
    weights = synthetic_layer_weights(layer_shape, spec, rng=rng)
    detector = OutlierDetector()
    return [
        policy_fidelity(weights, bits, policy, detector)
        for bits in bits_list
        for policy in policies
    ]
