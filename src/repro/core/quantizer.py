"""Tensor-level GOBO quantization (Section IV).

:func:`quantize_tensor` performs the full per-layer pipeline — outlier split,
equal-population init, L1 centroid iteration — and returns a
:class:`GoboQuantizedTensor` holding exactly what the paper says is stored per
layer:

1. the outliers in their original FP32 representation (plus their positions),
2. a ``bits``-wide bin index for each G-group weight (densely bit-packed),
3. the reconstruction table of ``2^bits`` FP32 centroids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.binning import assign_to_centroids
from repro.core.clustering import ClusteringResult, gobo_cluster, kmeans_cluster
from repro.core.formats import StorageReport, storage_report
from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD, OutlierDetector
from repro.core.validate import validate_tensor
from repro.errors import LayerSkipped, QuantizationError
from repro.obs import recorder as obs
from repro.utils.bitpack import pack_bits, unpack_bits


@dataclass(frozen=True)
class GoboQuantizedTensor:
    """A weight tensor compressed with GOBO.

    Attributes
    ----------
    shape:
        Original tensor shape.
    bits:
        Index width for G-group weights.
    centroids:
        ``2^bits`` representative FP32 values (the reconstruction table).
    packed_codes:
        Dense bitstream of ``bits``-wide centroid indexes for the G group, in
        flat tensor order with outlier positions skipped.
    outlier_positions:
        Flat indices of the outliers in the original tensor.
    outlier_values:
        The outlier weights, kept in their original representation.
    """

    shape: tuple[int, ...]
    bits: int
    centroids: np.ndarray
    packed_codes: bytes
    outlier_positions: np.ndarray
    outlier_values: np.ndarray

    # ------------------------------------------------------------------ sizes
    @property
    def total_count(self) -> int:
        return int(np.prod(self.shape))

    @property
    def gaussian_count(self) -> int:
        return self.total_count - self.outlier_count

    @property
    def outlier_count(self) -> int:
        return int(self.outlier_positions.size)

    @property
    def outlier_fraction(self) -> float:
        if self.total_count == 0:
            return 0.0
        return self.outlier_count / self.total_count

    def storage(self) -> StorageReport:
        """Byte-accurate storage accounting for this tensor."""
        return storage_report(
            total_weights=self.total_count,
            outliers=self.outlier_count,
            bits=self.bits,
        )

    def compression_ratio(self) -> float:
        """FP32 size divided by GOBO-compressed size."""
        return self.storage().compression_ratio

    # ------------------------------------------------------------ reconstruction
    def codes(self) -> np.ndarray:
        """Unpacked G-group centroid indexes (flat, outliers skipped)."""
        return unpack_bits(self.packed_codes, self.bits, self.gaussian_count)

    def dequantize(self, dtype: np.dtype | type = np.float32) -> np.ndarray:
        """Reconstruct the tensor in ``dtype`` (same shape — GOBO is plug-in
        compatible with any FP32 execution engine).

        Defaults to float32, the paper's decode target.  Reconstruction is
        performed in float64 and cast once at the end, so values are
        identical across worker counts; pass ``np.float64`` to keep the
        stored outliers and centroids bit-exact.

        Every call is counted on the ``quantizer.dequantize_calls`` obs
        counter: a serving path that claims to compute on the compressed
        representation (:mod:`repro.kernels`) can assert the counter stays
        at zero across a forward pass.
        """
        obs.counter("quantizer.dequantize_calls")
        obs.counter("quantizer.dequantize_bytes", self.total_count * np.dtype(dtype).itemsize)
        flat = np.empty(self.total_count, dtype=np.float64)
        mask = np.zeros(self.total_count, dtype=bool)
        mask[self.outlier_positions] = True
        flat[mask] = self.outlier_values
        flat[~mask] = self.centroids[self.codes()]
        return flat.reshape(self.shape).astype(dtype, copy=False)


def quantize_tensor(
    weights: np.ndarray,
    bits: int = 3,
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    method: str = "gobo",
    max_iterations: int = 50,
    validation: str = "strict",
) -> tuple[GoboQuantizedTensor, ClusteringResult]:
    """Quantize one weight tensor with GOBO (or a baseline centroid method).

    Parameters
    ----------
    weights:
        The FP32 weight tensor (any shape).
    bits:
        Index width for the G group; ``2^bits`` centroids.
    log_prob_threshold:
        Outlier threshold on the Gaussian log-probability (paper: -4).
    method:
        ``"gobo"`` (L1-monitored iteration), ``"kmeans"`` (assignment-fixpoint
        L2 iteration) or ``"linear"`` (uniform partition, no iteration).
        All three share the same outlier handling, matching the paper's
        controlled comparison.
    validation:
        Input-validation policy (see :mod:`repro.core.validate`):
        ``"strict"`` raises typed errors on NaN/Inf, zero-variance and
        empty tensors; ``"repair"`` sanitizes non-finite entries and falls
        back to linear binning when the Gaussian fit degenerates;
        ``"skip"`` raises :class:`~repro.errors.LayerSkipped` so engine
        callers can ship the layer unquantized.
    """
    with obs.span("quantize.tensor", bits=bits) as tensor_span:
        tensor, result = _quantize_tensor(
            weights,
            bits=bits,
            log_prob_threshold=log_prob_threshold,
            method=method,
            max_iterations=max_iterations,
            validation=validation,
        )
        tensor_span.set(
            method=method,
            iterations=result.iterations,
            converged=result.converged,
            outlier_fraction=tensor.outlier_fraction,
        )
    obs.histogram("quantize.outlier_fraction", tensor.outlier_fraction)
    obs.histogram("quantize.iterations", result.iterations)
    return tensor, result


def _quantize_tensor(
    weights: np.ndarray,
    bits: int,
    log_prob_threshold: float,
    method: str,
    max_iterations: int,
    validation: str,
) -> tuple[GoboQuantizedTensor, ClusteringResult]:
    outcome = validate_tensor(weights, policy=validation)
    if outcome.skipped:
        raise LayerSkipped(
            f"validation policy 'skip' rejected tensor: {outcome.diagnosis.describe()}"
        )
    weights = outcome.weights
    if outcome.degenerate:
        method = "linear"
    detector = OutlierDetector(log_prob_threshold)
    split = detector.split(weights)
    flat = np.asarray(weights, dtype=np.float64).ravel()
    outlier_mask = split.outlier_mask.ravel()
    gaussian_values = flat[~outlier_mask]
    if gaussian_values.size == 0:
        if validation == "repair":
            # Degenerate split: every weight scored below the threshold.
            # Repair by treating the whole tensor as the G group with a
            # distribution-free uniform partition.
            outlier_mask = np.zeros_like(outlier_mask)
            gaussian_values = flat
            method = "linear"
        else:
            raise QuantizationError(
                "all weights were classified as outliers; raise the threshold"
            )

    if method == "gobo":
        result = gobo_cluster(gaussian_values, bits, max_iterations=max_iterations)
    elif method == "kmeans":
        result = kmeans_cluster(gaussian_values, bits, max_iterations=max(max_iterations, 300))
    elif method == "linear":
        from repro.core.binning import linear_centroids

        centroids = linear_centroids(gaussian_values, 1 << bits)
        assignment = assign_to_centroids(gaussian_values, centroids)
        from repro.core.clustering import ConvergenceTrace

        trace = ConvergenceTrace()
        trace.record(gaussian_values, centroids, assignment)
        result = ClusteringResult(
            centroids=centroids,
            assignment=assignment,
            trace=trace,
            converged=True,
            final_l1=trace.l1_norms[0],
            final_l2=trace.l2_norms[0],
        )
    else:
        raise QuantizationError(f"unknown method {method!r}; use gobo, kmeans or linear")

    tensor = GoboQuantizedTensor(
        shape=tuple(weights.shape),
        bits=bits,
        centroids=result.centroids.astype(np.float64),
        packed_codes=pack_bits(result.assignment, bits),
        outlier_positions=np.flatnonzero(outlier_mask).astype(np.int64),
        outlier_values=flat[outlier_mask].copy(),
    )
    return tensor, result


def quantization_error(original: np.ndarray, quantized: GoboQuantizedTensor) -> dict[str, float]:
    """Reconstruction error metrics between a tensor and its quantized form.

    Decodes at float64 so the metrics measure quantization error alone, not
    decode-precision rounding.
    """
    original = np.asarray(original, dtype=np.float64)
    restored = quantized.dequantize(dtype=np.float64)
    diff = original - restored
    denom = float(np.abs(original).mean()) or 1.0
    return {
        "max_abs": float(np.abs(diff).max()),
        "mean_abs": float(np.abs(diff).mean()),
        "rmse": float(np.sqrt(np.square(diff).mean())),
        "relative_mean_abs": float(np.abs(diff).mean()) / denom,
    }
