"""Tensor-level GOBO quantization (Section IV).

:func:`quantize_tensor` performs the full per-layer pipeline — outlier split,
equal-population init, L1 centroid iteration — and returns a
:class:`GoboQuantizedTensor` holding exactly what the paper says is stored per
layer:

1. the outliers in their original FP32 representation (plus their positions),
2. a ``bits``-wide bin index for each G-group weight (densely bit-packed),
3. the reconstruction table of ``2^bits`` FP32 centroids.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.binning import assign_to_centroids, linear_centroids
from repro.core.clustering import (
    ClusteringResult,
    ConvergenceTrace,
    gobo_cluster,
    kmeans_cluster,
)
from repro.core.formats import StorageReport, storage_report
from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD, OutlierDetector
from repro.core.validate import validate_tensor
from repro.errors import ConfigError, LayerSkipped, QuantizationError
from repro.obs import recorder as obs
from repro.utils.bitpack import pack_bits, unpack_bits


@dataclass(frozen=True)
class GoboQuantizedTensor:
    """A weight tensor compressed with GOBO.

    Attributes
    ----------
    shape:
        Original tensor shape.
    bits:
        Index width for G-group weights.
    centroids:
        ``2^bits`` representative FP32 values (the reconstruction table).
    packed_codes:
        Dense bitstream of ``bits``-wide centroid indexes for the G group, in
        flat tensor order with outlier positions skipped.
    outlier_positions:
        Flat indices of the outliers in the original tensor.
    outlier_values:
        The outlier weights, kept in their original representation.
    """

    shape: tuple[int, ...]
    bits: int
    centroids: np.ndarray
    packed_codes: bytes
    outlier_positions: np.ndarray
    outlier_values: np.ndarray

    # ------------------------------------------------------------------ sizes
    @property
    def total_count(self) -> int:
        return int(np.prod(self.shape))

    @property
    def gaussian_count(self) -> int:
        return self.total_count - self.outlier_count

    @property
    def outlier_count(self) -> int:
        return int(self.outlier_positions.size)

    @property
    def outlier_fraction(self) -> float:
        if self.total_count == 0:
            return 0.0
        return self.outlier_count / self.total_count

    def storage(self) -> StorageReport:
        """Byte-accurate storage accounting for this tensor."""
        return storage_report(
            total_weights=self.total_count,
            outliers=self.outlier_count,
            bits=self.bits,
        )

    def compression_ratio(self) -> float:
        """FP32 size divided by GOBO-compressed size."""
        return self.storage().compression_ratio

    # ------------------------------------------------------------ reconstruction
    def codes(self) -> np.ndarray:
        """Unpacked G-group centroid indexes (flat, outliers skipped)."""
        return unpack_bits(self.packed_codes, self.bits, self.gaussian_count)

    def dequantize(self, dtype: np.dtype | type = np.float32) -> np.ndarray:
        """Reconstruct the tensor in ``dtype`` (same shape — GOBO is plug-in
        compatible with any FP32 execution engine).

        Defaults to float32, the paper's decode target.  Reconstruction is
        performed in float64 and cast once at the end, so values are
        identical across worker counts; pass ``np.float64`` to keep the
        stored outliers and centroids bit-exact.

        Every call is counted on the ``quantizer.dequantize_calls`` obs
        counter: a serving path that claims to compute on the compressed
        representation (:mod:`repro.kernels`) can assert the counter stays
        at zero across a forward pass.
        """
        obs.counter("quantizer.dequantize_calls")
        obs.counter("quantizer.dequantize_bytes", self.total_count * np.dtype(dtype).itemsize)
        flat = np.empty(self.total_count, dtype=np.float64)
        mask = np.zeros(self.total_count, dtype=bool)
        mask[self.outlier_positions] = True
        flat[mask] = self.outlier_values
        flat[~mask] = self.centroids[self.codes()]
        return flat.reshape(self.shape).astype(dtype, copy=False)


# --------------------------------------------------------------------------
# Tensor-method plug-in point
#
# A tensor method is the per-layer strategy that decides which weights are
# outliers (kept FP32) and how the inlier group maps onto a centroid table.
# Methods are plain callables ``fn(weights, ctx) -> TensorMethodResult``
# registered by name; the engine, jobs and serialization stack above this
# point never change when a method is added.


@dataclass(frozen=True, eq=False)
class TensorMethodContext:
    """Inputs a tensor method receives beyond the weights themselves.

    ``aux`` carries optional per-layer side data computed outside the engine
    (e.g. GWQ's gradient-saliency outlier mask); methods that need it must
    raise :class:`~repro.errors.QuantizationError` when it is missing.
    """

    bits: int
    log_prob_threshold: float
    max_iterations: int
    validation: str
    aux: np.ndarray | None = None


@dataclass(frozen=True, eq=False)
class TensorMethodResult:
    """What a tensor method decided for one layer.

    ``outlier_mask`` is a flat boolean mask over the tensor; ``clustering``
    covers exactly the non-outlier entries in flat order.  ``stored_bits``
    overrides the code width used for bit-packing and the centroid table —
    methods whose code space exceeds ``2^bits`` (e.g. group-wise tables
    concatenated into one global table) set it; ``None`` means the requested
    ``bits``.
    """

    outlier_mask: np.ndarray
    clustering: ClusteringResult
    stored_bits: int | None = None


TensorMethod = Callable[[np.ndarray, TensorMethodContext], TensorMethodResult]

#: Methods that live in optional plug-in modules, imported on first use so
#: that ``repro.core`` never depends on ``repro.quant`` at import time (and
#: so fleet worker processes resolve methods by name without pickling
#: callables).
_PLUGIN_MODULES: dict[str, str] = {
    "zeroshot": "repro.quant.zeroshot",
    "gwq": "repro.quant.gwq",
    "q8bert-grid": "repro.quant.q8bert",
    "qbert-group": "repro.quant.qbert",
}

_TENSOR_METHODS: dict[str, TensorMethod] = {}


def register_tensor_method(name: str, fn: TensorMethod) -> None:
    """Register a per-layer tensor method under ``name``.

    Raises :class:`~repro.errors.ConfigError` on duplicates — methods are
    part of the archive/fingerprint contract and must never be silently
    redefined.
    """
    if not name:
        raise ConfigError("tensor method name must be non-empty")
    if name in _TENSOR_METHODS:
        raise ConfigError(f"tensor method {name!r} is already registered")
    _TENSOR_METHODS[name] = fn


def unregister_tensor_method(name: str) -> None:
    """Remove a registered method (test cleanup helper)."""
    _TENSOR_METHODS.pop(name, None)


def resolve_tensor_method(name: str) -> TensorMethod:
    """Look up a tensor method by name, importing its plug-in module lazily."""
    fn = _TENSOR_METHODS.get(name)
    if fn is None and name in _PLUGIN_MODULES:
        importlib.import_module(_PLUGIN_MODULES[name])
        fn = _TENSOR_METHODS.get(name)
    if fn is None:
        known = ", ".join(tensor_method_names())
        raise QuantizationError(f"unknown method {name!r}; known methods: {known}")
    return fn


def tensor_method_names() -> tuple[str, ...]:
    """All resolvable method names (registered + lazy plug-ins), sorted."""
    return tuple(sorted(set(_TENSOR_METHODS) | set(_PLUGIN_MODULES)))


def single_pass_result(
    values: np.ndarray, centroids: np.ndarray, assignment: np.ndarray
) -> ClusteringResult:
    """Wrap a non-iterative centroid fit in a one-record ClusteringResult."""
    trace = ConvergenceTrace()
    trace.record(values, centroids, assignment)
    return ClusteringResult(
        centroids=centroids,
        assignment=assignment,
        trace=trace,
        converged=True,
        final_l1=trace.l1_norms[0],
        final_l2=trace.l2_norms[0],
    )


def _linear_cluster(values: np.ndarray, ctx: TensorMethodContext) -> ClusteringResult:
    centroids = linear_centroids(values, 1 << ctx.bits)
    assignment = assign_to_centroids(values, centroids)
    return single_pass_result(values, centroids, assignment)


def _gaussian_family(
    cluster: Callable[[np.ndarray, TensorMethodContext], ClusteringResult],
) -> TensorMethod:
    """Build a method with the paper's Gaussian outlier split around ``cluster``.

    gobo/kmeans/linear share this wrapper, matching the paper's controlled
    comparison: identical outlier handling, different centroid selection.
    """

    def method_fn(weights: np.ndarray, ctx: TensorMethodContext) -> TensorMethodResult:
        detector = OutlierDetector(ctx.log_prob_threshold)
        split = detector.split(weights)
        flat = np.asarray(weights, dtype=np.float64).ravel()
        outlier_mask = split.outlier_mask.ravel()
        gaussian_values = flat[~outlier_mask]
        if gaussian_values.size == 0:
            if ctx.validation == "repair":
                # Degenerate split: every weight scored below the threshold.
                # Repair by treating the whole tensor as the G group with a
                # distribution-free uniform partition.
                outlier_mask = np.zeros_like(outlier_mask)
                result = _linear_cluster(flat, ctx)
            else:
                raise QuantizationError(
                    "all weights were classified as outliers; raise the threshold"
                )
        else:
            result = cluster(gaussian_values, ctx)
        return TensorMethodResult(outlier_mask=outlier_mask, clustering=result)

    return method_fn


register_tensor_method(
    "gobo",
    _gaussian_family(
        lambda values, ctx: gobo_cluster(values, ctx.bits, max_iterations=ctx.max_iterations)
    ),
)
register_tensor_method(
    "kmeans",
    _gaussian_family(
        lambda values, ctx: kmeans_cluster(
            values, ctx.bits, max_iterations=max(ctx.max_iterations, 300)
        )
    ),
)
register_tensor_method("linear", _gaussian_family(_linear_cluster))


def quantize_tensor(
    weights: np.ndarray,
    bits: int = 3,
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    method: str = "gobo",
    max_iterations: int = 50,
    validation: str = "strict",
    aux: np.ndarray | None = None,
) -> tuple[GoboQuantizedTensor, ClusteringResult]:
    """Quantize one weight tensor with GOBO (or a baseline centroid method).

    Parameters
    ----------
    weights:
        The FP32 weight tensor (any shape).
    bits:
        Index width for the G group; ``2^bits`` centroids.
    log_prob_threshold:
        Outlier threshold on the Gaussian log-probability (paper: -4).
    method:
        Any registered tensor method (see :func:`tensor_method_names`).
        Built-ins: ``"gobo"`` (L1-monitored iteration), ``"kmeans"``
        (assignment-fixpoint L2 iteration) and ``"linear"`` (uniform
        partition, no iteration) — all three share the same outlier
        handling, matching the paper's controlled comparison.  Plug-in
        methods (``"zeroshot"``, ``"gwq"``, ``"q8bert-grid"``,
        ``"qbert-group"``) are imported from :mod:`repro.quant` on first
        use.
    aux:
        Optional per-layer side data forwarded to the tensor method (e.g.
        a precomputed saliency outlier mask for ``"gwq"``).
    validation:
        Input-validation policy (see :mod:`repro.core.validate`):
        ``"strict"`` raises typed errors on NaN/Inf, zero-variance and
        empty tensors; ``"repair"`` sanitizes non-finite entries and falls
        back to linear binning when the Gaussian fit degenerates;
        ``"skip"`` raises :class:`~repro.errors.LayerSkipped` so engine
        callers can ship the layer unquantized.
    """
    with obs.span("quantize.tensor", bits=bits) as tensor_span:
        tensor, result = _quantize_tensor(
            weights,
            bits=bits,
            log_prob_threshold=log_prob_threshold,
            method=method,
            max_iterations=max_iterations,
            validation=validation,
            aux=aux,
        )
        tensor_span.set(
            method=method,
            iterations=result.iterations,
            converged=result.converged,
            outlier_fraction=tensor.outlier_fraction,
        )
    obs.histogram("quantize.outlier_fraction", tensor.outlier_fraction)
    obs.histogram("quantize.iterations", result.iterations)
    return tensor, result


def _quantize_tensor(
    weights: np.ndarray,
    bits: int,
    log_prob_threshold: float,
    method: str,
    max_iterations: int,
    validation: str,
    aux: np.ndarray | None = None,
) -> tuple[GoboQuantizedTensor, ClusteringResult]:
    outcome = validate_tensor(weights, policy=validation)
    if outcome.skipped:
        raise LayerSkipped(
            f"validation policy 'skip' rejected tensor: {outcome.diagnosis.describe()}"
        )
    weights = outcome.weights
    if outcome.degenerate:
        # A zero-variance tensor defeats any distribution- or saliency-based
        # split; a uniform partition reconstructs it exactly.
        method = "linear"
    method_fn = resolve_tensor_method(method)
    ctx = TensorMethodContext(
        bits=bits,
        log_prob_threshold=log_prob_threshold,
        max_iterations=max_iterations,
        validation=validation,
        aux=aux,
    )
    method_result = method_fn(weights, ctx)
    result = method_result.clustering
    flat = np.asarray(weights, dtype=np.float64).ravel()
    outlier_mask = method_result.outlier_mask
    stored_bits = method_result.stored_bits if method_result.stored_bits is not None else bits

    tensor = GoboQuantizedTensor(
        shape=tuple(weights.shape),
        bits=stored_bits,
        centroids=result.centroids.astype(np.float64),
        packed_codes=pack_bits(result.assignment, stored_bits),
        outlier_positions=np.flatnonzero(outlier_mask).astype(np.int64),
        outlier_values=flat[outlier_mask].copy(),
    )
    return tensor, result


def quantization_error(original: np.ndarray, quantized: GoboQuantizedTensor) -> dict[str, float]:
    """Reconstruction error metrics between a tensor and its quantized form.

    Decodes at float64 so the metrics measure quantization error alone, not
    decode-precision rounding.
    """
    original = np.asarray(original, dtype=np.float64)
    restored = quantized.dequantize(dtype=np.float64)
    diff = original - restored
    denom = float(np.abs(original).mean()) or 1.0
    return {
        "max_abs": float(np.abs(diff).max()),
        "mean_abs": float(np.abs(diff).mean()),
        "rmse": float(np.sqrt(np.square(diff).mean())),
        "relative_mean_abs": float(np.abs(diff).mean()) / denom,
    }
