"""Equal-population centroid initialization (Section IV-B, steps 3-4).

GOBO's non-linear initialization sorts the G-group weights and splits them
into ``2^bits`` bins of equal population; each bin's mean is its initial
centroid.  Dense regions of the distribution therefore receive more
centroids — the property that makes the subsequent L1 iteration converge in a
handful of steps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError


def equal_population_centroids(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Initial centroids: means of equal-population bins of sorted ``values``.

    Returns a sorted array of ``num_bins`` centroids.  Degenerate bins (when
    there are fewer distinct values than bins) collapse onto the same value,
    which the iteration tolerates.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    if num_bins <= 0:
        raise QuantizationError(f"num_bins must be positive, got {num_bins}")
    if flat.size == 0:
        raise QuantizationError("cannot bin an empty value set")
    ordered = np.sort(flat)
    # Bin b covers ordered[edges[b]:edges[b+1]] with near-equal population.
    edges = np.linspace(0, ordered.size, num_bins + 1).round().astype(np.int64)
    centroids = np.empty(num_bins, dtype=np.float64)
    previous = ordered[0]
    for b in range(num_bins):
        lo, hi = edges[b], edges[b + 1]
        if hi > lo:
            previous = ordered[lo:hi].mean()
        centroids[b] = previous
    return centroids


def linear_centroids(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Linear-quantization centroids: the range split into equal intervals.

    This is the "Linear Quantization" baseline of Table IV — bin centers of a
    uniform partition of ``[min, max]`` — which ignores the distribution and
    wastes resolution on the sparse tails.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    if num_bins <= 0:
        raise QuantizationError(f"num_bins must be positive, got {num_bins}")
    if flat.size == 0:
        raise QuantizationError("cannot bin an empty value set")
    lo, hi = float(flat.min()), float(flat.max())
    if lo == hi:
        return np.full(num_bins, lo, dtype=np.float64)
    step = (hi - lo) / num_bins
    return lo + step * (np.arange(num_bins) + 0.5)


def assign_to_centroids(values: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid for each value.

    Centroids must be sorted ascending.  In one dimension the nearest
    centroid under L1 and L2 coincide, so the assignment step is shared by
    GOBO's L1 iteration and the K-Means baseline; the two differ in their
    stopping rule (see :mod:`repro.core.clustering`).
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    centroids = np.asarray(centroids, dtype=np.float64)
    if centroids.ndim != 1 or centroids.size == 0:
        raise QuantizationError("centroids must be a non-empty 1-D array")
    if centroids.size == 1:
        return np.zeros(flat.size, dtype=np.int64)
    midpoints = (centroids[:-1] + centroids[1:]) / 2.0
    return np.searchsorted(midpoints, flat, side="left").astype(np.int64)
