"""Zero-copy member access for the deterministic npz archives.

The archives written by :func:`repro.utils.atomic.write_npz` are plain zip
containers with **ZIP_STORED** (uncompressed) ``<name>.npy`` members, which
makes them memory-mappable: each member's array data lives contiguously in
the file, so a reader can hand out ``np.frombuffer`` views over one shared
``mmap`` instead of copying every byte through ``np.load``.

That is what serving straight from a compressed archive needs: a GOBO
archive is dominated by the bit-packed codes, and a lazily loaded model
should touch only the layers a forward pass actually uses.  Every member
access is counted on ``npzmap.bytes_mapped`` / ``npzmap.members_read`` obs
counters so bytes-touched is observable (the whole point of lazy loading —
see ``tests/core/test_lazy_load.py``).

:class:`MmapNpzReader` falls back to an eager ``zipfile`` read for members
that are not stored uncompressed (e.g. a ``np.savez_compressed`` archive),
so it can read any npz, just without the zero-copy property.
"""

from __future__ import annotations

import mmap
import struct
import zipfile
from io import BytesIO
from pathlib import Path

import numpy as np
from numpy.lib import format as _npformat

from repro.errors import SerializationError, TruncatedArchiveError
from repro.obs import recorder as obs

#: Fixed portion of a zip local file header (PK\x03\x04 ... extra-len).
_LOCAL_HEADER = struct.Struct("<4sHHHHHIIIHH")
_LOCAL_MAGIC = b"PK\x03\x04"


class MmapNpzReader:
    """Read npz members as views over one shared memory map.

    ``read(key)`` returns the array stored as ``<key>.npy``; for
    ZIP_STORED members the result is a read-only view into the map (no
    copy), otherwise an eagerly decoded array.  The reader (and its map)
    must outlive every view it hands out; ``close()`` is best-effort and
    leaves the map open while views still reference it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise SerializationError(f"no such archive: {self.path}")
        self._file = open(self.path, "rb")
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
            self._zip = zipfile.ZipFile(self._file)
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            self._file.close()
            raise TruncatedArchiveError(
                f"cannot map archive {self.path}: not a valid npz container ({exc})"
            ) from exc
        self._members = {
            info.filename[: -len(".npy")]: info
            for info in self._zip.infolist()
            if info.filename.endswith(".npy")
        }
        self.nbytes = self.path.stat().st_size
        obs.counter("npzmap.archives_mapped")

    # ------------------------------------------------------------------ access
    def keys(self) -> list[str]:
        return list(self._members)

    def __contains__(self, key: str) -> bool:
        return key in self._members

    def read(self, key: str) -> np.ndarray:
        """The array stored under ``key`` (zero-copy when ZIP_STORED)."""
        info = self._members.get(key)
        if info is None:
            raise KeyError(key)
        if info.compress_type == zipfile.ZIP_STORED:
            array = self._read_stored(info)
        else:
            # Compressed member: no contiguous bytes to map; decode eagerly.
            array = np.load(BytesIO(self._zip.read(info.filename)))
        obs.counter("npzmap.members_read")
        obs.counter("npzmap.bytes_mapped", int(array.nbytes))
        return array

    def _read_stored(self, info: zipfile.ZipInfo) -> np.ndarray:
        """View a stored member's array data directly in the map.

        The central directory records where the member's *local header*
        starts; the data offset follows the local header, whose name/extra
        lengths can differ from the central directory's, so they are read
        from the local header itself.
        """
        start = info.header_offset
        header = self._mmap[start : start + _LOCAL_HEADER.size]
        if len(header) < _LOCAL_HEADER.size or header[:4] != _LOCAL_MAGIC:
            raise TruncatedArchiveError(
                f"archive {self.path}: bad local header for {info.filename!r}"
            )
        fields = _LOCAL_HEADER.unpack(header)
        name_len, extra_len = fields[9], fields[10]
        data_start = start + _LOCAL_HEADER.size + name_len + extra_len
        data = memoryview(self._mmap)[data_start : data_start + info.file_size]

        # Parse the .npy header from the member prefix, then view the rest.
        prefix = BytesIO(bytes(data[: min(len(data), 4096)]))
        version = _npformat.read_magic(prefix)
        if version == (1, 0):
            shape, fortran_order, dtype = _npformat.read_array_header_1_0(prefix)
        elif version == (2, 0):
            shape, fortran_order, dtype = _npformat.read_array_header_2_0(prefix)
        else:
            raise SerializationError(
                f"archive member {info.filename!r} uses npy format {version}; "
                "this mapper supports 1.0 and 2.0"
            )
        if dtype.hasobject:
            raise SerializationError(
                f"archive member {info.filename!r} stores objects; refusing to map"
            )
        count = int(np.prod(shape, dtype=np.int64))
        array = np.frombuffer(data, dtype=dtype, count=count, offset=prefix.tell())
        array = array.reshape(shape[::-1]).T if fortran_order else array.reshape(shape)
        return array

    # ------------------------------------------------------------------- close
    def close(self) -> None:
        """Close the zip and, if no views remain, the map and file."""
        self._zip.close()
        try:
            self._mmap.close()
        except BufferError:
            # Live views still reference the map; it is released when the
            # last view is garbage collected.
            return
        self._file.close()

    def __enter__(self) -> "MmapNpzReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
