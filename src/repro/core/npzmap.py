"""Zero-copy member access for the deterministic npz archives.

The archives written by :func:`repro.utils.atomic.write_npz` are plain zip
containers with **ZIP_STORED** (uncompressed) ``<name>.npy`` members, which
makes them memory-mappable: each member's array data lives contiguously in
the file, so a reader can hand out ``np.frombuffer`` views over one shared
``mmap`` instead of copying every byte through ``np.load``.

That is what serving straight from a compressed archive needs: a GOBO
archive is dominated by the bit-packed codes, and a lazily loaded model
should touch only the layers a forward pass actually uses.  Every member
access is counted on ``npzmap.bytes_mapped`` / ``npzmap.members_read`` obs
counters so bytes-touched is observable (the whole point of lazy loading —
see ``tests/core/test_lazy_load.py``).

:class:`MmapNpzReader` falls back to an eager ``zipfile`` read for members
that are not stored uncompressed (e.g. a ``np.savez_compressed`` archive),
so it can read any npz, just without the zero-copy property.
"""

from __future__ import annotations

import mmap
import struct
import zipfile
import zlib
from io import BytesIO
from pathlib import Path

import numpy as np
from numpy.lib import format as _npformat

from repro.errors import (
    ChecksumMismatchError,
    SerializationError,
    TruncatedArchiveError,
)
from repro.obs import recorder as obs

#: Fixed portion of a zip local file header (PK\x03\x04 ... extra-len).
_LOCAL_HEADER = struct.Struct("<4sHHHHHIIIHH")
_LOCAL_MAGIC = b"PK\x03\x04"
#: .npy member prefix: 6-byte magic + 2 version bytes.
_NPY_MAGIC = b"\x93NUMPY"
_NPY_MAGIC_LEN = len(_NPY_MAGIC) + 2


class MmapNpzReader:
    """Read npz members as views over one shared memory map.

    ``read(key)`` returns the array stored as ``<key>.npy``; for
    ZIP_STORED members the result is a read-only view into the map (no
    copy), otherwise an eagerly decoded array.  The reader (and its map)
    must outlive every view it hands out; ``close()`` is best-effort and
    leaves the map open while views still reference it.

    With ``verify=True`` every member's bytes are checked against the zip
    central directory's CRC-32 the first time it is read — the per-member
    integrity check the mmap fast path otherwise bypasses (``zipfile``
    verifies CRCs only on its own decode path).  A mismatch raises
    :class:`~repro.errors.ChecksumMismatchError`, so bit rot in a lazily
    served archive surfaces as an error instead of silently wrong logits.
    """

    def __init__(self, path: str | Path, verify: bool = False) -> None:
        self.path = Path(path)
        self.verify = verify
        self._verified: set[str] = set()
        if not self.path.exists():
            raise SerializationError(f"no such archive: {self.path}")
        self._file = open(self.path, "rb")
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
            self._zip = zipfile.ZipFile(self._file)
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            self._file.close()
            raise TruncatedArchiveError(
                f"cannot map archive {self.path}: not a valid npz container ({exc})"
            ) from exc
        self._members = {
            info.filename[: -len(".npy")]: info
            for info in self._zip.infolist()
            if info.filename.endswith(".npy")
        }
        self.nbytes = self.path.stat().st_size
        obs.counter("npzmap.archives_mapped")

    # ------------------------------------------------------------------ access
    def keys(self) -> list[str]:
        return list(self._members)

    def __contains__(self, key: str) -> bool:
        return key in self._members

    def read(self, key: str) -> np.ndarray:
        """The array stored under ``key`` (zero-copy when ZIP_STORED)."""
        info = self._members.get(key)
        if info is None:
            raise KeyError(key)
        if info.compress_type == zipfile.ZIP_STORED:
            data = self._member_data(info)
            if self.verify and key not in self._verified:
                self._verify_member(info, data)
                self._verified.add(key)
            array = self._parse_npy(info, data)
        else:
            # Compressed member: no contiguous bytes to map; decode eagerly.
            # zipfile checks the member CRC itself on this path.
            try:
                raw = self._zip.read(info.filename)
            except zipfile.BadZipFile as exc:
                raise ChecksumMismatchError(
                    f"archive {self.path} member {info.filename!r} is corrupt ({exc})"
                ) from exc
            array = np.load(BytesIO(raw))
        obs.counter("npzmap.members_read")
        obs.counter("npzmap.bytes_mapped", int(array.nbytes))
        return array

    def _member_data(self, info: zipfile.ZipInfo) -> memoryview:
        """The raw stored bytes of ``info`` as a view over the map.

        The central directory records where the member's *local header*
        starts; the data offset follows the local header, whose name/extra
        lengths can differ from the central directory's, so they are read
        from the local header itself.
        """
        start = info.header_offset
        header = self._mmap[start : start + _LOCAL_HEADER.size]
        if len(header) < _LOCAL_HEADER.size or header[:4] != _LOCAL_MAGIC:
            raise TruncatedArchiveError(
                f"archive {self.path}: bad local header for {info.filename!r}"
            )
        fields = _LOCAL_HEADER.unpack(header)
        name_len, extra_len = fields[9], fields[10]
        data_start = start + _LOCAL_HEADER.size + name_len + extra_len
        data = memoryview(self._mmap)[data_start : data_start + info.file_size]
        if len(data) < info.file_size:
            raise TruncatedArchiveError(
                f"archive {self.path}: member {info.filename!r} extends past "
                f"the end of the file"
            )
        return data

    def _verify_member(self, info: zipfile.ZipInfo, data: memoryview) -> None:
        """Check ``data`` against the central directory's CRC-32."""
        actual = zlib.crc32(data)
        if actual != info.CRC:
            raise ChecksumMismatchError(
                f"archive {self.path} member {info.filename!r} failed CRC "
                f"verification: recorded {info.CRC:#010x}, computed {actual:#010x}"
            )
        obs.counter("npzmap.members_verified")

    def _parse_npy(self, info: zipfile.ZipInfo, data: memoryview) -> np.ndarray:
        """Parse the .npy header in ``data`` and view the array that follows.

        The header is sliced exactly: the npy format's own header-length
        field says where the array data begins, so headers longer than any
        fixed prefix (huge structured dtypes, deeply padded dicts) parse
        correctly instead of failing inside numpy on a truncated buffer.
        """
        if len(data) < _NPY_MAGIC_LEN or bytes(data[: len(_NPY_MAGIC)]) != _NPY_MAGIC:
            raise SerializationError(
                f"archive member {info.filename!r} is not a .npy file"
            )
        major, minor = data[6], data[7]
        if (major, minor) == (1, 0):
            (header_len,) = struct.unpack("<H", data[8:10])
            header_end = 10 + header_len
        elif (major, minor) == (2, 0):
            (header_len,) = struct.unpack("<I", data[8:12])
            header_end = 12 + header_len
        else:
            raise SerializationError(
                f"archive member {info.filename!r} uses npy format "
                f"{major}.{minor}; this mapper supports 1.0 and 2.0"
            )
        if header_end > len(data):
            raise TruncatedArchiveError(
                f"archive member {info.filename!r} declares a {header_len}-byte "
                f"header but only {len(data)} bytes are stored"
            )
        prefix = BytesIO(bytes(data[:header_end]))
        version = _npformat.read_magic(prefix)
        if version == (1, 0):
            shape, fortran_order, dtype = _npformat.read_array_header_1_0(prefix)
        else:
            shape, fortran_order, dtype = _npformat.read_array_header_2_0(prefix)
        if dtype.hasobject:
            raise SerializationError(
                f"archive member {info.filename!r} stores objects; refusing to map"
            )
        count = int(np.prod(shape, dtype=np.int64))
        array = np.frombuffer(data, dtype=dtype, count=count, offset=prefix.tell())
        array = array.reshape(shape[::-1]).T if fortran_order else array.reshape(shape)
        return array

    # ------------------------------------------------------------------- close
    def close(self) -> None:
        """Close the zip and file; the map too unless views still hold it.

        ``mmap`` dups the file descriptor at construction, so the file
        object can — and must — be closed unconditionally: live views keep
        the *map* (and its dup'd descriptor) alive, not the Python file.  A
        long-lived process that reopens archives (a serving registry
        hot-swapping models) would otherwise leak one fd per reload
        whenever any view of the old map was still referenced.
        """
        self._zip.close()
        self._file.close()
        try:
            self._mmap.close()
        except BufferError:
            # Live views still reference the map; its pages and dup'd fd
            # are released when the last view is garbage collected.
            pass

    def __enter__(self) -> "MmapNpzReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
