"""Centroid refinement: GOBO's L1-monitored iteration vs classic K-Means.

Both algorithms share the assignment step (nearest centroid — identical in
1-D under L1 and L2) and the update step (cluster mean).  They differ in when
they stop:

* **GOBO** monitors the total L1-norm (sum of |weight - centroid|) after each
  update and stops as soon as it stops improving — the paper observes the
  minimum is reached in about 7 iterations for 3-bit quantization.
* **K-Means** iterates until the cluster *assignments* reach a fixed point,
  which takes roughly 9x as many iterations (Figure 2) and — because the mean
  update optimizes L2, not L1 — lands on centroids with *worse* L1, which is
  what correlates with inference accuracy.

Both record a :class:`ConvergenceTrace` so Figure 2 can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.binning import assign_to_centroids, equal_population_centroids
from repro.errors import QuantizationError
from repro.jobs.watchdog import checkpoint
from repro.obs import recorder as obs


@dataclass
class ConvergenceTrace:
    """Per-iteration L1/L2 norms of a centroid refinement run."""

    l1_norms: list[float] = field(default_factory=list)
    l2_norms: list[float] = field(default_factory=list)

    def record(self, values: np.ndarray, centroids: np.ndarray, assignment: np.ndarray) -> None:
        residual = values - centroids[assignment]
        self.l1_norms.append(float(np.abs(residual).sum()))
        self.l2_norms.append(float(np.square(residual).sum()))

    @property
    def iterations(self) -> int:
        return len(self.l1_norms)

    def as_series(self) -> list[tuple[int, float, float]]:
        """(iteration, L1, L2) rows — the Figure 2 series."""
        return [
            (i, l1, l2)
            for i, (l1, l2) in enumerate(zip(self.l1_norms, self.l2_norms))
        ]


@dataclass(frozen=True)
class ClusteringResult:
    """Final centroids, assignments and the convergence trace of a run.

    ``final_l1``/``final_l2`` belong to the *returned* state — for GOBO that
    is the best (minimum-L1) iteration, which is not necessarily the last
    trace entry (the trace keeps the worsening step that triggered the stop).
    """

    centroids: np.ndarray
    assignment: np.ndarray
    trace: ConvergenceTrace
    converged: bool
    final_l1: float
    final_l2: float

    @property
    def iterations(self) -> int:
        return self.trace.iterations

    def l1_norm(self) -> float:
        return self.final_l1

    def l2_norm(self) -> float:
        return self.final_l2


def _update_centroids(
    values: np.ndarray, assignment: np.ndarray, num_bins: int, previous: np.ndarray
) -> np.ndarray:
    """Cluster means; empty clusters keep their previous centroid."""
    sums = np.bincount(assignment, weights=values, minlength=num_bins)
    counts = np.bincount(assignment, minlength=num_bins)
    centroids = previous.copy()
    populated = counts > 0
    centroids[populated] = sums[populated] / counts[populated]
    return np.sort(centroids)


def _prepare(values: np.ndarray, bits: int) -> tuple[np.ndarray, int]:
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        raise QuantizationError("cannot cluster an empty value set")
    if not 1 <= bits <= 8:
        raise QuantizationError(f"bits must be in [1, 8], got {bits}")
    return flat, 1 << bits


def gobo_cluster(
    values: np.ndarray,
    bits: int,
    max_iterations: int = 50,
    initial_centroids: np.ndarray | None = None,
) -> ClusteringResult:
    """GOBO centroid selection: iterate L1 reassignment, stop at the L1 minimum.

    Steps 3-7 of Section IV: equal-population init, then alternate
    (reassign to nearest centroid, recompute means) while the total L1-norm
    keeps decreasing.  The state from the best (minimum-L1) iteration is
    returned, so a final worsening step is never kept.
    """
    flat, num_bins = _prepare(values, bits)
    centroids = (
        np.sort(np.asarray(initial_centroids, dtype=np.float64))
        if initial_centroids is not None
        else equal_population_centroids(flat, num_bins)
    )
    if centroids.size != num_bins:
        raise QuantizationError(
            f"expected {num_bins} initial centroids, got {centroids.size}"
        )
    trace = ConvergenceTrace()
    assignment = assign_to_centroids(flat, centroids)
    trace.record(flat, centroids, assignment)
    best_index = 0
    best = (centroids, assignment)
    converged = False
    for _ in range(max_iterations):
        # Cooperative watchdog cancellation: a no-op unless the engine armed
        # a per-layer deadline (repro.jobs.watchdog, DESIGN.md §5d).
        checkpoint()
        centroids = _update_centroids(flat, assignment, num_bins, centroids)
        assignment = assign_to_centroids(flat, centroids)
        trace.record(flat, centroids, assignment)
        if trace.l1_norms[-1] < trace.l1_norms[best_index]:
            best_index = len(trace.l1_norms) - 1
            best = (centroids, assignment)
        else:
            # L1 stopped improving: the minimum has been reached.
            converged = True
            break
    centroids, assignment = best
    obs.trace_event(
        "clustering.l1",
        trace.l1_norms,
        method="gobo",
        bits=bits,
        iterations=trace.iterations,
        converged=converged,
        final_l1=trace.l1_norms[best_index],
    )
    return ClusteringResult(
        centroids=centroids,
        assignment=assignment,
        trace=trace,
        converged=converged,
        final_l1=trace.l1_norms[best_index],
        final_l2=trace.l2_norms[best_index],
    )


def kmeans_cluster(
    values: np.ndarray,
    bits: int,
    max_iterations: int = 300,
    initial_centroids: np.ndarray | None = None,
) -> ClusteringResult:
    """K-Means baseline: same init and updates, run to assignment fixpoint.

    Matches the paper's comparison setup ("same centroid initialization as
    GOBO ... iterations until the cluster assignments converge").
    """
    flat, num_bins = _prepare(values, bits)
    centroids = (
        np.sort(np.asarray(initial_centroids, dtype=np.float64))
        if initial_centroids is not None
        else equal_population_centroids(flat, num_bins)
    )
    if centroids.size != num_bins:
        raise QuantizationError(
            f"expected {num_bins} initial centroids, got {centroids.size}"
        )
    trace = ConvergenceTrace()
    assignment = assign_to_centroids(flat, centroids)
    trace.record(flat, centroids, assignment)
    converged = False
    for _ in range(max_iterations):
        checkpoint()
        centroids = _update_centroids(flat, assignment, num_bins, centroids)
        new_assignment = assign_to_centroids(flat, centroids)
        trace.record(flat, centroids, new_assignment)
        if np.array_equal(new_assignment, assignment):
            converged = True
            assignment = new_assignment
            break
        assignment = new_assignment
    obs.trace_event(
        "clustering.l1",
        trace.l1_norms,
        method="kmeans",
        bits=bits,
        iterations=trace.iterations,
        converged=converged,
        final_l1=trace.l1_norms[-1],
    )
    return ClusteringResult(
        centroids=centroids,
        assignment=assignment,
        trace=trace,
        converged=converged,
        final_l1=trace.l1_norms[-1],
        final_l2=trace.l2_norms[-1],
    )
