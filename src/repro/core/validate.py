"""Input validation and repair for per-layer quantization.

GOBO is post-training and strictly per-layer, so one pathological tensor —
all-constant weights with zero std, NaN/Inf entries left behind by a diverged
fine-tune, an empty embedding row — must never take down a whole-model
compression run.  :func:`validate_tensor` runs *before* the Gaussian fit and
classifies each tensor, with a three-way policy knob:

``strict`` (default)
    Raise a typed error: :class:`~repro.errors.NonFiniteWeightError` for
    NaN/Inf entries, :class:`~repro.errors.DegenerateTensorError` for empty
    or zero-variance tensors.  This is the historical fail-fast behaviour
    with precise types.
``repair``
    Sanitize non-finite entries (replace them with the mean of the finite
    values, or 0.0 if none are finite) and flag zero-variance tensors as
    *degenerate* so the caller falls back to linear binning — a constant
    tensor has no Gaussian to fit, but a uniform partition of its (single)
    value is exact.  Empty tensors cannot be repaired and still raise.
``skip``
    Mark the tensor as skipped; :func:`repro.core.quantizer.quantize_tensor`
    converts this into :class:`~repro.errors.LayerSkipped`, which the
    layer-parallel engine catches to ship the layer unquantized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DegenerateTensorError, NonFiniteWeightError, QuantizationError

VALIDATION_POLICIES = ("strict", "repair", "skip")


@dataclass(frozen=True)
class TensorDiagnosis:
    """What is wrong (if anything) with one weight tensor."""

    total: int
    non_finite: int
    zero_variance: bool

    @property
    def empty(self) -> bool:
        return self.total == 0

    @property
    def ok(self) -> bool:
        return not (self.empty or self.non_finite or self.zero_variance)

    def describe(self) -> str:
        """Human-readable summary of every detected defect."""
        if self.ok:
            return "ok"
        problems = []
        if self.empty:
            problems.append("empty tensor")
        if self.non_finite:
            problems.append(f"{self.non_finite}/{self.total} non-finite entries")
        if self.zero_variance:
            problems.append("zero variance")
        return ", ".join(problems)


@dataclass(frozen=True)
class ValidationOutcome:
    """The result of validating (and possibly repairing) one tensor.

    Attributes
    ----------
    weights:
        The tensor to quantize — the original under ``strict``/``skip``,
        a sanitized copy under ``repair``.
    diagnosis:
        The pre-repair classification.
    repairs:
        Human-readable notes of every repair applied (empty if none).
    degenerate:
        True when the (possibly repaired) tensor has no usable Gaussian —
        the caller should fall back to linear binning.
    skipped:
        True when policy ``skip`` rejected the tensor.
    """

    weights: np.ndarray
    diagnosis: TensorDiagnosis
    repairs: tuple[str, ...] = ()
    degenerate: bool = False
    skipped: bool = False


def diagnose_tensor(weights: np.ndarray) -> TensorDiagnosis:
    """Classify ``weights`` without modifying or rejecting it."""
    flat = np.asarray(weights, dtype=np.float64).ravel()
    if flat.size == 0:
        return TensorDiagnosis(total=0, non_finite=0, zero_variance=False)
    finite = np.isfinite(flat)
    non_finite = int(flat.size - finite.sum())
    finite_values = flat[finite]
    # A tensor whose finite values are all identical (including the
    # single-element case) has std == 0: the Gaussian fit is degenerate.
    zero_variance = (
        finite_values.size == 0
        or bool(np.all(finite_values == finite_values[0]))
    )
    return TensorDiagnosis(
        total=int(flat.size), non_finite=non_finite, zero_variance=zero_variance
    )


def validate_tensor(
    weights: np.ndarray, policy: str = "strict"
) -> ValidationOutcome:
    """Validate ``weights`` under ``policy`` (see module docstring).

    Raises the typed errors under ``strict`` (and for unrepairable empty
    tensors under ``repair``); never raises under ``skip``.
    """
    if policy not in VALIDATION_POLICIES:
        raise QuantizationError(
            f"unknown validation policy {policy!r}; use one of {VALIDATION_POLICIES}"
        )
    weights = np.asarray(weights)
    diagnosis = diagnose_tensor(weights)
    if diagnosis.ok:
        return ValidationOutcome(weights=weights, diagnosis=diagnosis)

    if policy == "skip":
        return ValidationOutcome(weights=weights, diagnosis=diagnosis, skipped=True)

    if diagnosis.empty:
        # No policy can conjure weights out of nothing.
        raise DegenerateTensorError("cannot quantize an empty tensor")

    if policy == "strict":
        if diagnosis.non_finite:
            raise NonFiniteWeightError(
                f"tensor contains {diagnosis.non_finite} NaN/Inf entries "
                f"(of {diagnosis.total}); use validation='repair' to sanitize"
            )
        raise DegenerateTensorError(
            "tensor has zero variance (all values identical); "
            "use validation='repair' to fall back to linear binning"
        )

    # policy == "repair"
    repairs: list[str] = []
    repaired = np.asarray(weights, dtype=np.float64).copy()
    if diagnosis.non_finite:
        finite = np.isfinite(repaired)
        fill = float(repaired[finite].mean()) if finite.any() else 0.0
        repaired[~finite] = fill
        repairs.append(
            f"replaced {diagnosis.non_finite} non-finite entries with {fill:.6g}"
        )
    degenerate = diagnose_tensor(repaired).zero_variance
    if degenerate:
        repairs.append("degenerate Gaussian fit: falling back to linear binning")
    return ValidationOutcome(
        weights=repaired,
        diagnosis=diagnosis,
        repairs=tuple(repairs),
        degenerate=degenerate,
    )
