"""Entropy analysis of GOBO's index stream.

Deep Compression (the paper's dictionary-compression precursor) follows its
K-Means codes with Huffman coding, because Lloyd clustering on a Gaussian
produces *unevenly used* codes that an entropy coder can shrink further.
GOBO's equal-population initialization starts from (near-)uniform code usage
instead — its index stream is already close to maximum entropy, so fixed
``bits``-wide packed codes leave almost nothing for a Huffman stage to
reclaim.  This module quantifies that design property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CodeEntropyReport:
    """Usage statistics of a centroid-index stream."""

    bits: int
    counts: np.ndarray
    entropy_bits: float

    @property
    def usage(self) -> np.ndarray:
        """Code usage as fractions summing to 1."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    @property
    def huffman_headroom_bits(self) -> float:
        """Bits per weight an ideal entropy coder could still save."""
        return max(0.0, self.bits - self.entropy_bits)

    @property
    def uniformity(self) -> float:
        """Entropy as a fraction of the maximum (1.0 = perfectly uniform)."""
        if self.bits == 0:
            return 1.0
        return self.entropy_bits / self.bits


def code_entropy(assignment: np.ndarray, bits: int) -> CodeEntropyReport:
    """Shannon entropy (bits/symbol) of a centroid-index stream."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    assignment = np.asarray(assignment).ravel()
    num_codes = 1 << bits
    if assignment.size and (assignment.min() < 0 or assignment.max() >= num_codes):
        raise ValueError(f"assignments out of range [0, {num_codes})")
    counts = np.bincount(assignment.astype(np.int64), minlength=num_codes)
    total = counts.sum()
    if total == 0:
        return CodeEntropyReport(bits=bits, counts=counts, entropy_bits=0.0)
    probabilities = counts[counts > 0] / total
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    return CodeEntropyReport(bits=bits, counts=counts, entropy_bits=entropy)
