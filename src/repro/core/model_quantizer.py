"""Whole-model quantization: apply GOBO per layer across a network.

GOBO "operates at the granularity of a layer and over the trained model": for
each FC weight matrix (and optionally each embedding table) it runs the
outlier split + centroid selection of :mod:`repro.core.quantizer` with one
reconstruction table per layer.  Everything else (biases, LayerNorm, task
heads) stays FP32, matching the paper's setup.

The result is a :class:`QuantizedModel` that can

* report byte-accurate compression ratios (Table III/VII numbers), and
* reconstruct a plain FP32 ``state_dict`` — the "plug-in compatible" decode
  the paper highlights — to load back into any model of the same
  architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.formats import BYTES_PER_FP32, StorageReport
from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD
from repro.core.parallel import (
    FaultInjector,
    LayerJob,
    QuantizationReport,
    quantize_layers,
)
from repro.core.policy import LayerPolicy
from repro.core.quantizer import GoboQuantizedTensor
from repro.errors import QuantizationError
from repro.models.bert import BertModel
from repro.nn.module import Module
from repro.obs import recorder as obs


@dataclass(frozen=True)
class ParameterSelection:
    """Which parameters of a model get quantized."""

    fc_names: tuple[str, ...]
    embedding_names: tuple[str, ...]


def select_parameters(model: Module) -> ParameterSelection:
    """Locate the FC weight matrices and embedding tables of ``model``.

    Works for a bare :class:`BertModel` or any head wrapping one (the head's
    own parameters stay FP32, as in the paper where heads are task-added and
    tiny).
    """
    for prefix, module in model.named_modules():
        if isinstance(module, BertModel):
            dotted = f"{prefix}." if prefix else ""
            fc = tuple(f"{dotted}{name}" for name in module.fc_parameter_names())
            emb = tuple(f"{dotted}{name}" for name in module.embedding_parameter_names())
            return ParameterSelection(fc_names=fc, embedding_names=emb)
    raise QuantizationError("model does not contain a BertModel to quantize")


@dataclass
class QuantizedModel:
    """A GOBO-compressed model: quantized tensors plus untouched FP32 params."""

    quantized: dict[str, GoboQuantizedTensor]
    fp32: dict[str, np.ndarray]
    fc_names: tuple[str, ...]
    embedding_names: tuple[str, ...]
    iterations: dict[str, int] = field(default_factory=dict)
    report: QuantizationReport | None = None

    # ------------------------------------------------------------ reconstruction
    def state_dict(self, dtype: np.dtype | type = np.float64) -> dict[str, np.ndarray]:
        """Reconstructed state dict: dequantized layers + passthrough params.

        Every entry — dequantized and passthrough alike — is returned in
        ``dtype``.  The default float64 matches the in-memory compute
        substrate (bit-exact passthrough); pass ``np.float32`` for the
        paper's decode-target precision.
        """
        state = {name: np.array(value, dtype=dtype) for name, value in self.fp32.items()}
        for name, tensor in self.quantized.items():
            state[name] = tensor.dequantize(dtype=dtype)
        return state

    def apply_to(self, model: Module) -> Module:
        """Load the reconstructed weights into ``model`` and return it."""
        model.load_state_dict(self.state_dict())
        return model

    # ----------------------------------------------------------------- metrics
    def _storage(self, names: tuple[str, ...]) -> tuple[int, int]:
        original = compressed = 0
        for name in names:
            if name not in self.quantized:
                continue
            report: StorageReport = self.quantized[name].storage()
            original += report.original_bytes
            compressed += report.compressed_bytes
        return original, compressed

    def weight_compression_ratio(self) -> float:
        """CR over the FC weights alone."""
        original, compressed = self._storage(self.fc_names)
        return original / compressed if compressed else float("inf")

    def embedding_compression_ratio(self) -> float:
        """CR over the quantized embedding tables alone (Table VII)."""
        original, compressed = self._storage(self.embedding_names)
        return original / compressed if compressed else float("inf")

    def model_compression_ratio(self) -> float:
        """CR over everything GOBO touches (the Table III column).

        Parameters left FP32 contribute equally to both sides and are
        excluded, matching the paper's weights+embeddings accounting.
        """
        names = self.fc_names + self.embedding_names
        original, compressed = self._storage(names)
        return original / compressed if compressed else float("inf")

    def outlier_fraction(self) -> float:
        """Overall fraction of quantized weights stored as outliers."""
        total = sum(t.total_count for t in self.quantized.values())
        outliers = sum(t.outlier_count for t in self.quantized.values())
        return outliers / total if total else 0.0

    def compressed_bytes(self) -> int:
        """Total compressed footprint of the quantized tensors."""
        return sum(t.storage().compressed_bytes for t in self.quantized.values())

    def original_bytes(self) -> int:
        """FP32 footprint of the quantized tensors."""
        return sum(t.total_count * BYTES_PER_FP32 for t in self.quantized.values())


def quantize_state_dict(
    state: dict[str, np.ndarray],
    fc_names: tuple[str, ...],
    embedding_names: tuple[str, ...] = (),
    weight_bits: int | LayerPolicy = 3,
    embedding_bits: int | None = 4,
    method: str = "gobo",
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    workers: int | None = 1,
    on_error: str | None = "fail",
    validation: str = "strict",
    fault_injector: FaultInjector | None = None,
    layer_timeout: float | None = None,
    transient_retries: int | None = None,
    cancel=None,
    backend: str | None = None,
    engine=None,
    embedding_method: str | None = None,
    aux: dict[str, np.ndarray] | None = None,
) -> QuantizedModel:
    """Quantize selected tensors of a state dict; pass the rest through.

    ``weight_bits`` may be an int (uniform) or a :class:`LayerPolicy` (e.g.
    the RoBERTa mixed 3b/4b recipe).  ``embedding_bits=None`` leaves the
    embedding tables FP32 (the Figure 4 "FP32 model" scenario is the reverse:
    quantize only embeddings by passing an empty ``fc_names``).

    ``workers`` fans the per-layer jobs out over the engine in
    :mod:`repro.core.parallel` (1 = serial, 0 = all cores, None = the
    ``REPRO_WORKERS`` environment default).  The output is bit-for-bit
    identical for every worker count; the engine's per-layer timings are
    attached as ``QuantizedModel.report``.

    ``layer_timeout``/``transient_retries``/``cancel`` configure the
    engine's per-layer watchdog, transient-retry budget, and cooperative
    cancellation (None defers to ``REPRO_LAYER_TIMEOUT`` /
    ``REPRO_TRANSIENT_RETRIES``).  ``backend`` picks the fan-out mechanism
    (``"thread"``/``"process"``, None = ``REPRO_BACKEND``): the process
    backend runs layers in supervised worker processes
    (:mod:`repro.jobs.fleet`) so a worker crash costs one in-flight attempt
    instead of the run, with byte-identical output.  ``engine`` swaps the
    layer engine itself
    — any callable with :func:`~repro.core.parallel.quantize_layers`'s
    signature, e.g. :func:`repro.jobs.runner.run_durable_layers` partially
    bound to a job directory for checkpoint/resume durability.

    ``on_error``/``validation``/``fault_injector`` are forwarded to the
    engine (see :mod:`repro.core.parallel`).  A layer resolved by
    ``fp32-fallback`` (or by the ``skip`` validation policy) stays in the
    FP32 pass-through dict, so the model remains loadable; a layer dropped
    by ``on_error="skip"`` is removed from the output entirely — the
    caller opted into an incomplete model and ``report.failures`` says so.

    ``embedding_method`` optionally quantizes embedding tables with a
    different tensor method than the FC layers (Q-BERT's recipe: group-wise
    FC codes, symmetric 8-bit embeddings); ``None`` uses ``method`` for
    both.  ``aux`` maps layer names to per-layer side data forwarded to the
    tensor method (see :class:`repro.core.quantizer.TensorMethodContext`).
    """
    policy = weight_bits if isinstance(weight_bits, LayerPolicy) else LayerPolicy.uniform(weight_bits)
    missing = [n for n in (*fc_names, *embedding_names) if n not in state]
    if missing:
        raise QuantizationError(f"state dict is missing tensors: {missing}")

    jobs = [LayerJob(name=name, bits=policy.bits_for(name)) for name in fc_names]
    if embedding_bits is not None:
        jobs.extend(
            LayerJob(name=name, bits=embedding_bits, method=embedding_method)
            for name in embedding_names
        )
    run_engine = engine if engine is not None else quantize_layers
    quantized, iterations, report = run_engine(
        state,
        jobs,
        log_prob_threshold=log_prob_threshold,
        method=method,
        workers=workers,
        on_error=on_error,
        validation=validation,
        fault_injector=fault_injector,
        layer_timeout=layer_timeout,
        transient_retries=transient_retries,
        cancel=cancel,
        backend=backend,
        aux=aux,
    )

    dropped = {failure.name for failure in report.failures if failure.dropped}
    fp32 = {
        name: value
        for name, value in state.items()
        if name not in quantized and name not in dropped
    }
    model = QuantizedModel(
        quantized=quantized,
        fp32=fp32,
        fc_names=tuple(fc_names),
        embedding_names=tuple(embedding_names),
        iterations=iterations,
        report=report,
    )
    # Non-finite ratios (nothing quantized) are dropped by the gauge helper.
    obs.gauge("model.compression_ratio", model.model_compression_ratio())
    obs.gauge("model.weight_compression_ratio", model.weight_compression_ratio())
    obs.gauge("model.embedding_compression_ratio", model.embedding_compression_ratio())
    obs.gauge("model.outlier_fraction", model.outlier_fraction())
    obs.gauge("model.compressed_bytes", model.compressed_bytes())
    return model


def quantize_model(
    model: Module,
    weight_bits: int | LayerPolicy = 3,
    embedding_bits: int | None = 4,
    method: str = "gobo",
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    quantize_weights: bool = True,
    workers: int | None = 1,
    on_error: str | None = "fail",
    validation: str = "strict",
    fault_injector: FaultInjector | None = None,
    layer_timeout: float | None = None,
    transient_retries: int | None = None,
    cancel=None,
    backend: str | None = None,
    engine=None,
) -> QuantizedModel:
    """Quantize a live model's BERT FC layers and embedding tables.

    Set ``quantize_weights=False`` for the Figure 4 embedding-only scenario.
    ``workers``, ``on_error``, ``validation`` and ``fault_injector`` are
    forwarded to the layer-parallel engine (see :func:`quantize_state_dict`).
    """
    selection = select_parameters(model)
    return quantize_state_dict(
        model.state_dict(),
        fc_names=selection.fc_names if quantize_weights else (),
        embedding_names=selection.embedding_names,
        weight_bits=weight_bits,
        embedding_bits=embedding_bits,
        method=method,
        log_prob_threshold=log_prob_threshold,
        workers=workers,
        on_error=on_error,
        validation=validation,
        fault_injector=fault_injector,
        layer_timeout=layer_timeout,
        transient_retries=transient_retries,
        cancel=cancel,
        backend=backend,
        engine=engine,
    )
