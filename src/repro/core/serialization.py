"""On-disk format for GOBO-compressed models.

A :class:`~repro.core.model_quantizer.QuantizedModel` round-trips through a
single ``.npz`` archive whose size is dominated by the bit-packed G-group
codes — i.e. the file on disk realizes the ~10x compression the paper
reports, not just the in-memory accounting.

Layout (format version 3) per quantized tensor ``<name>``::

    gobo::<name>::codes       packed bitstream (uint8)
    gobo::<name>::centroids   2^bits FP32 reconstruction table
    gobo::<name>::positions   outlier flat indices (uint32)
    gobo::<name>::outliers    outlier values (float32)
    gobo::<name>::meta        [bits, iterations, *shape]

Pass-through FP32 parameters are stored under ``fp32::<name>`` as float32
(the paper's decode target precision; note the in-memory substrate computes
in float64).  The ``index::fc`` / ``index::embeddings`` name lists are
fixed-width unicode arrays and ``index::version`` tags the layout, so the
archive contains **no object arrays**: it loads with numpy's default
``allow_pickle=False`` and is safe to read from untrusted sources.

Guarantees:

* ``save_quantized_model`` normalizes paths the way ``np.savez`` does —
  a missing ``.npz`` suffix is appended — and returns the byte size of the
  file actually written.
* **Atomic writes.** The archive is written to a temporary sibling, fsynced
  and renamed into place (:func:`repro.utils.atomic.atomic_savez`): a crash
  mid-save leaves the previous archive intact, never a truncated one.
* **Checksummed contents.** Version-3 archives carry a SHA-256 digest over
  every stored array (``index::checksum``); :func:`load_quantized_model`
  verifies it and raises :class:`~repro.errors.ChecksumMismatchError` on bit
  rot.  :func:`verify_archive` classifies an archive as intact / missing /
  truncated / checksum-mismatched / version-unknown without constructing a
  model.
* The clustering iteration counts (``QuantizedModel.iterations``) survive
  the round-trip, so per-layer reports can be regenerated after a reload.
* Version-1 archives (no iteration counts in ``meta``) and version-2
  archives (no checksum) still load; the checksum verification is simply
  skipped for them.
"""

from __future__ import annotations

import hashlib
import zipfile
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.core.model_quantizer import QuantizedModel
from repro.core.npzmap import MmapNpzReader
from repro.core.quantizer import GoboQuantizedTensor
from repro.errors import (
    ChecksumMismatchError,
    SerializationError,
    TruncatedArchiveError,
)
from repro.obs import recorder as obs
from repro.utils.atomic import atomic_savez

FORMAT_VERSION = 3
CHECKSUM_KEY = "index::checksum"


def _normalize_path(path: str | Path) -> Path:
    """Mirror ``np.savez``'s suffix handling: append ``.npz`` if absent."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def payload_checksum(payload: Mapping[str, np.ndarray]) -> bytes:
    """SHA-256 digest over every array (except the checksum itself).

    Keys are visited in sorted order and each contribution covers the key,
    dtype, shape and raw bytes, so any bit flip in data *or* metadata — and
    any added, dropped or renamed array — changes the digest.
    """
    digest = hashlib.sha256()
    for key in sorted(payload):
        if key == CHECKSUM_KEY:
            continue
        array = np.ascontiguousarray(payload[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.digest()


def save_quantized_model(model: QuantizedModel, path: str | Path) -> int:
    """Write ``model`` to ``path`` (npz). Returns the file size in bytes.

    ``np.savez`` silently appends ``.npz`` when the path lacks the suffix;
    the path is normalized the same way first so the size reported is that
    of the file actually written.  The write is atomic (tmp + fsync +
    rename) and the archive carries a SHA-256 content checksum.
    """
    payload: dict[str, np.ndarray] = {}
    for name, tensor in model.quantized.items():
        payload[f"gobo::{name}::codes"] = np.frombuffer(tensor.packed_codes, dtype=np.uint8)
        payload[f"gobo::{name}::centroids"] = tensor.centroids.astype(np.float32)
        payload[f"gobo::{name}::positions"] = tensor.outlier_positions.astype(np.uint32)
        payload[f"gobo::{name}::outliers"] = tensor.outlier_values.astype(np.float32)
        payload[f"gobo::{name}::meta"] = np.array(
            [tensor.bits, model.iterations.get(name, 0), *tensor.shape], dtype=np.int64
        )
    for name, value in model.fp32.items():
        payload[f"fp32::{name}"] = np.asarray(value, dtype=np.float32)
    payload["index::fc"] = np.array(model.fc_names, dtype=np.str_)
    payload["index::embeddings"] = np.array(model.embedding_names, dtype=np.str_)
    payload["index::version"] = np.array([FORMAT_VERSION], dtype=np.int64)
    payload[CHECKSUM_KEY] = np.frombuffer(payload_checksum(payload), dtype=np.uint8)
    size = atomic_savez(_normalize_path(path), payload)
    obs.counter("serialization.archives_written")
    obs.counter("serialization.bytes_written", size)
    return size


def _read_archive(path: Path) -> dict[str, np.ndarray]:
    """Eagerly read every array of the archive at ``path``.

    Distinguishes a container that cannot be opened (missing / truncated /
    not a zip → :class:`TruncatedArchiveError`) from one that opens but
    whose members fail to decode (zip-CRC failure on a flipped bit →
    :class:`ChecksumMismatchError`).
    """
    if not path.exists():
        raise SerializationError(f"no such archive: {path}")
    try:
        archive = np.load(path)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise TruncatedArchiveError(
            f"cannot read archive {path}: not a valid npz container ({exc})"
        ) from exc
    with archive:
        try:
            return {key: archive[key] for key in archive.files}
        except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile) as exc:
            raise ChecksumMismatchError(
                f"archive {path} is corrupt: a stored array failed to decode ({exc})"
            ) from exc


def _archive_version(arrays: Mapping[str, np.ndarray], path: Path) -> int:
    version = 1
    if "index::version" in arrays:
        version = int(arrays["index::version"][0])
    if not 1 <= version <= FORMAT_VERSION:
        raise SerializationError(
            f"archive {path} has format version {version}; "
            f"this reader supports 1..{FORMAT_VERSION}"
        )
    return version


def _verify_checksum(arrays: Mapping[str, np.ndarray], path: Path) -> None:
    if CHECKSUM_KEY not in arrays:
        raise ChecksumMismatchError(
            f"archive {path} declares format version >= 3 but carries no checksum"
        )
    recorded = bytes(np.asarray(arrays[CHECKSUM_KEY], dtype=np.uint8).tobytes())
    actual = payload_checksum(arrays)
    if recorded != actual:
        raise ChecksumMismatchError(
            f"archive {path} failed checksum verification: "
            f"recorded {recorded.hex()[:16]}…, computed {actual.hex()[:16]}…"
        )


def _parse_meta(meta: np.ndarray, version: int) -> tuple[int, int, tuple[int, ...]]:
    """(bits, iterations, shape) from a ``::meta`` record of ``version``."""
    if version >= 2:
        return int(meta[0]), int(meta[1]), tuple(int(d) for d in meta[2:])
    return int(meta[0]), 0, tuple(int(d) for d in meta[1:])


class LazyQuantizedTensors(MappingABC):
    """Per-layer on-demand decode over a memory-mapped archive.

    Behaves like the ``quantized`` dict of a :class:`QuantizedModel`, but a
    layer's codes/centroids/outliers are materialized only when the layer
    is first accessed — and the bit-packed codes stay **views into the
    map** (no copy), so the bytes a forward pass touches are exactly the
    layers it uses.  Decodes are traced on the ``serialization.lazy_layer``
    span and the ``npzmap.bytes_mapped`` counter.
    """

    def __init__(self, reader: MmapNpzReader, metas: dict[str, np.ndarray], version: int) -> None:
        self._reader = reader
        self._metas = metas
        self._version = version
        self._cache: dict[str, GoboQuantizedTensor] = {}

    def __getitem__(self, name: str) -> GoboQuantizedTensor:
        if name in self._cache:
            return self._cache[name]
        if name not in self._metas:
            raise KeyError(name)
        with obs.span("serialization.lazy_layer", layer=name):
            bits, _, shape = _parse_meta(self._metas[name], self._version)
            try:
                tensor = GoboQuantizedTensor(
                    shape=shape,
                    bits=bits,
                    centroids=self._reader.read(f"gobo::{name}::centroids").astype(np.float64),
                    packed_codes=self._reader.read(f"gobo::{name}::codes"),
                    outlier_positions=self._reader.read(f"gobo::{name}::positions").astype(np.int64),
                    outlier_values=self._reader.read(f"gobo::{name}::outliers").astype(np.float64),
                )
            except KeyError as exc:
                raise SerializationError(f"archive missing field for {name}: {exc}") from exc
        obs.counter("serialization.lazy_layers_decoded")
        self._cache[name] = tensor
        return tensor

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metas))

    def __len__(self) -> int:
        return len(self._metas)

    def close(self) -> None:
        """Release the underlying archive map.

        The serving registry calls this when a hot-swapped model drains: the
        archive's file descriptor closes immediately; the map itself lingers
        only while already-materialized code views are alive (see
        :meth:`MmapNpzReader.close`).  Tensors decoded before the close stay
        usable; new layer accesses will fail.
        """
        self._reader.close()


def _load_lazy(path: Path, verify: str) -> QuantizedModel:
    """The ``lazy=True`` body of :func:`load_quantized_model`."""
    reader = MmapNpzReader(path, verify=(verify == "lazy"))
    obs.counter("serialization.archives_read_lazy")
    keys = set(reader.keys())
    version = 1
    if "index::version" in keys:
        version = int(reader.read("index::version")[0])
    if not 1 <= version <= FORMAT_VERSION:
        raise SerializationError(
            f"archive {path} has format version {version}; "
            f"this reader supports 1..{FORMAT_VERSION}"
        )
    if verify == "full":
        # Every byte is read and digested before anything is served — the
        # eager guarantee at the eager cost, but codes still stay views.
        arrays = {key: reader.read(key) for key in keys}
        if version >= 3:
            _verify_checksum(arrays, path)
    # With verify="none" the version-3 content checksum is NOT verified —
    # verifying would read every byte of the archive, which is exactly what
    # lazy loading exists to avoid — and zip per-member CRCs are likewise
    # bypassed by the mmap views.  verify="lazy" (the serving default)
    # closes that gap per member: each member's bytes are CRC-checked on
    # first access, so bit rot surfaces as ChecksumMismatchError at the
    # first touch instead of as silently wrong logits.
    names = {
        key.split("::", 2)[1]
        for key in keys
        if key.startswith("gobo::") and key.endswith("::meta")
    }
    metas = {name: np.asarray(reader.read(f"gobo::{name}::meta")) for name in names}
    iterations = {}
    for name, meta in metas.items():
        _, layer_iterations, _ = _parse_meta(meta, version)
        if layer_iterations > 0:
            iterations[name] = layer_iterations
    # Pass-through FP32 params (biases, LayerNorm, fallback layers) are
    # copied eagerly: they are needed in full by any load target, and they
    # are the small remainder once the weights are bit-packed.
    fp32 = {
        key[len("fp32::"):]: reader.read(key).astype(np.float64)
        for key in keys
        if key.startswith("fp32::")
    }
    try:
        fc_names = tuple(str(n) for n in reader.read("index::fc"))
        embedding_names = tuple(str(n) for n in reader.read("index::embeddings"))
    except KeyError as exc:
        raise SerializationError(f"archive missing index: {exc}") from exc
    return QuantizedModel(
        quantized=LazyQuantizedTensors(reader, metas, version),
        fp32=fp32,
        fc_names=fc_names,
        embedding_names=embedding_names,
        iterations=iterations,
    )


def load_quantized_model(
    path: str | Path, lazy: bool = False, verify: str | None = None
) -> QuantizedModel:
    """Read a :class:`QuantizedModel` written by :func:`save_quantized_model`.

    Archives are loaded with ``allow_pickle=False`` (the format stores no
    object arrays), version-3 archives are checksum-verified before any
    tensor is reconstructed, and the per-layer iteration counts recorded at
    quantization time are restored.

    With ``lazy=True`` the archive is memory-mapped instead of read:
    indexes and per-layer metadata load eagerly (a few hundred bytes), but
    each quantized tensor is constructed on first access with its packed
    codes left as zero-copy views into the map (see
    :class:`LazyQuantizedTensors` and :class:`~repro.core.npzmap.
    MmapNpzReader`).  Feeding these tensors to :mod:`repro.kernels` serves
    inference with bytes-touched proportional to the layers used.

    ``verify`` selects the integrity level:

    * ``"full"`` — the whole-archive SHA-256 content checksum is verified
      up front (reads every byte).  Default for eager loads.
    * ``"lazy"`` — each member's bytes are checked against the zip CRC-32
      on first access, so a lazy load stays proportional to the layers
      touched but bit rot still raises
      :class:`~repro.errors.ChecksumMismatchError` instead of producing
      silently wrong logits.  Default for lazy loads.
    * ``"none"`` — no verification.  Opt-in only: an unverified load can
      serve silently wrong logits from a bit-rotted archive.
    """
    path = Path(path)
    if verify is None:
        verify = "lazy" if lazy else "full"
    if verify not in ("none", "lazy", "full"):
        raise ValueError(f"verify must be 'none', 'lazy' or 'full', got {verify!r}")
    if lazy:
        return _load_lazy(path, verify)
    arrays = _read_archive(path)
    obs.counter("serialization.archives_read")
    obs.counter("serialization.bytes_read", path.stat().st_size)
    version = _archive_version(arrays, path)
    if version >= 3 and verify != "none":
        # Everything is in memory already, so "lazy" degenerates to "full".
        _verify_checksum(arrays, path)
    names = {
        key.split("::", 2)[1]
        for key in arrays
        if key.startswith("gobo::") and key.endswith("::meta")
    }
    quantized: dict[str, GoboQuantizedTensor] = {}
    iterations: dict[str, int] = {}
    for name in names:
        try:
            bits, layer_iterations, shape = _parse_meta(arrays[f"gobo::{name}::meta"], version)
            tensor = GoboQuantizedTensor(
                shape=shape,
                bits=bits,
                centroids=arrays[f"gobo::{name}::centroids"].astype(np.float64),
                packed_codes=arrays[f"gobo::{name}::codes"].tobytes(),
                outlier_positions=arrays[f"gobo::{name}::positions"].astype(np.int64),
                outlier_values=arrays[f"gobo::{name}::outliers"].astype(np.float64),
            )
        except KeyError as exc:
            raise SerializationError(f"archive missing field for {name}: {exc}") from exc
        quantized[name] = tensor
        if layer_iterations > 0:
            iterations[name] = layer_iterations
    fp32 = {
        key[len("fp32::"):]: arrays[key].astype(np.float64)
        for key in arrays
        if key.startswith("fp32::")
    }
    try:
        fc_names = tuple(str(n) for n in arrays["index::fc"])
        embedding_names = tuple(str(n) for n in arrays["index::embeddings"])
    except KeyError as exc:
        raise SerializationError(f"archive missing index: {exc}") from exc
    return QuantizedModel(
        quantized=quantized,
        fp32=fp32,
        fc_names=fc_names,
        embedding_names=embedding_names,
        iterations=iterations,
    )


@dataclass(frozen=True)
class ArchiveCheck:
    """The classification produced by :func:`verify_archive`.

    ``status`` is one of ``"ok"`` (version-3, checksum verified),
    ``"ok-unchecksummed"`` (readable legacy version-1/2 archive),
    ``"missing"``, ``"truncated"``, ``"checksum-mismatch"`` or
    ``"version-unknown"``.
    """

    path: Path
    status: str
    version: int | None
    detail: str

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "ok-unchecksummed")


def verify_archive(path: str | Path) -> ArchiveCheck:
    """Classify the archive at ``path`` without constructing a model.

    Distinguishes the four failure modes a durable store must tell apart:
    the file is absent, the container is truncated or not a zip at all, the
    contents fail checksum verification (bit flips), or the format version
    is newer than this reader.
    """
    path = Path(path)
    if not path.exists():
        return ArchiveCheck(path, "missing", None, "file does not exist")
    try:
        arrays = _read_archive(path)
    except TruncatedArchiveError as exc:
        return ArchiveCheck(path, "truncated", None, str(exc))
    except ChecksumMismatchError as exc:
        return ArchiveCheck(path, "checksum-mismatch", None, str(exc))
    raw_version = int(arrays["index::version"][0]) if "index::version" in arrays else 1
    try:
        version = _archive_version(arrays, path)
    except SerializationError as exc:
        return ArchiveCheck(path, "version-unknown", raw_version, str(exc))
    if version < 3:
        return ArchiveCheck(
            path, "ok-unchecksummed", version,
            f"readable legacy archive (format version {version} has no checksum)",
        )
    try:
        _verify_checksum(arrays, path)
    except ChecksumMismatchError as exc:
        return ArchiveCheck(path, "checksum-mismatch", version, str(exc))
    tensors = sum(1 for key in arrays if key.endswith("::meta"))
    return ArchiveCheck(
        path, "ok", version,
        f"checksum verified over {len(arrays)} arrays ({tensors} quantized tensors)",
    )
