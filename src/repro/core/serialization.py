"""On-disk format for GOBO-compressed models.

A :class:`~repro.core.model_quantizer.QuantizedModel` round-trips through a
single ``.npz`` archive whose size is dominated by the bit-packed G-group
codes — i.e. the file on disk realizes the ~10x compression the paper
reports, not just the in-memory accounting.

Layout (format version 2) per quantized tensor ``<name>``::

    gobo::<name>::codes       packed bitstream (uint8)
    gobo::<name>::centroids   2^bits FP32 reconstruction table
    gobo::<name>::positions   outlier flat indices (uint32)
    gobo::<name>::outliers    outlier values (float32)
    gobo::<name>::meta        [bits, iterations, *shape]

Pass-through FP32 parameters are stored under ``fp32::<name>`` as float32
(the paper's decode target precision; note the in-memory substrate computes
in float64).  The ``index::fc`` / ``index::embeddings`` name lists are
fixed-width unicode arrays and ``index::version`` tags the layout, so the
archive contains **no object arrays**: it loads with numpy's default
``allow_pickle=False`` and is safe to read from untrusted sources.

Guarantees:

* ``save_quantized_model`` normalizes paths the way ``np.savez`` does —
  a missing ``.npz`` suffix is appended — and returns the byte size of the
  file actually written.
* The clustering iteration counts (``QuantizedModel.iterations``) survive
  the round-trip, so per-layer reports can be regenerated after a reload.
* Version-1 archives (no iteration counts in ``meta``) still load; their
  ``iterations`` dict comes back empty.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.core.model_quantizer import QuantizedModel
from repro.core.quantizer import GoboQuantizedTensor
from repro.errors import SerializationError

FORMAT_VERSION = 2


def _normalize_path(path: str | Path) -> Path:
    """Mirror ``np.savez``'s suffix handling: append ``.npz`` if absent."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_quantized_model(model: QuantizedModel, path: str | Path) -> int:
    """Write ``model`` to ``path`` (npz). Returns the file size in bytes.

    ``np.savez`` silently appends ``.npz`` when the path lacks the suffix;
    the path is normalized the same way first so the size reported is that
    of the file actually written.
    """
    payload: dict[str, np.ndarray] = {}
    for name, tensor in model.quantized.items():
        payload[f"gobo::{name}::codes"] = np.frombuffer(tensor.packed_codes, dtype=np.uint8)
        payload[f"gobo::{name}::centroids"] = tensor.centroids.astype(np.float32)
        payload[f"gobo::{name}::positions"] = tensor.outlier_positions.astype(np.uint32)
        payload[f"gobo::{name}::outliers"] = tensor.outlier_values.astype(np.float32)
        payload[f"gobo::{name}::meta"] = np.array(
            [tensor.bits, model.iterations.get(name, 0), *tensor.shape], dtype=np.int64
        )
    for name, value in model.fp32.items():
        payload[f"fp32::{name}"] = np.asarray(value, dtype=np.float32)
    payload["index::fc"] = np.array(model.fc_names, dtype=np.str_)
    payload["index::embeddings"] = np.array(model.embedding_names, dtype=np.str_)
    payload["index::version"] = np.array([FORMAT_VERSION], dtype=np.int64)
    path = _normalize_path(path)
    np.savez(path, **payload)
    return path.stat().st_size


def load_quantized_model(path: str | Path) -> QuantizedModel:
    """Read a :class:`QuantizedModel` written by :func:`save_quantized_model`.

    Archives are loaded with ``allow_pickle=False`` (the format stores no
    object arrays), and the per-layer iteration counts recorded at
    quantization time are restored.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such archive: {path}")
    try:
        archive = np.load(path)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SerializationError(f"cannot read archive {path}: {exc}") from exc
    with archive:
        version = 1
        if "index::version" in archive.files:
            version = int(archive["index::version"][0])
        if not 1 <= version <= FORMAT_VERSION:
            raise SerializationError(
                f"archive {path} has format version {version}; "
                f"this reader supports 1..{FORMAT_VERSION}"
            )
        names = {
            key.split("::", 2)[1]
            for key in archive.files
            if key.startswith("gobo::") and key.endswith("::meta")
        }
        quantized: dict[str, GoboQuantizedTensor] = {}
        iterations: dict[str, int] = {}
        for name in names:
            try:
                meta = archive[f"gobo::{name}::meta"]
                if version >= 2:
                    bits, layer_iterations, shape = int(meta[0]), int(meta[1]), meta[2:]
                else:
                    bits, layer_iterations, shape = int(meta[0]), 0, meta[1:]
                tensor = GoboQuantizedTensor(
                    shape=tuple(int(d) for d in shape),
                    bits=bits,
                    centroids=archive[f"gobo::{name}::centroids"].astype(np.float64),
                    packed_codes=archive[f"gobo::{name}::codes"].tobytes(),
                    outlier_positions=archive[f"gobo::{name}::positions"].astype(np.int64),
                    outlier_values=archive[f"gobo::{name}::outliers"].astype(np.float64),
                )
            except KeyError as exc:
                raise SerializationError(f"archive missing field for {name}: {exc}") from exc
            quantized[name] = tensor
            if layer_iterations > 0:
                iterations[name] = layer_iterations
        fp32 = {
            key[len("fp32::"):]: archive[key].astype(np.float64)
            for key in archive.files
            if key.startswith("fp32::")
        }
        try:
            fc_names = tuple(str(n) for n in archive["index::fc"])
            embedding_names = tuple(str(n) for n in archive["index::embeddings"])
        except KeyError as exc:
            raise SerializationError(f"archive missing index: {exc}") from exc
    return QuantizedModel(
        quantized=quantized,
        fp32=fp32,
        fc_names=fc_names,
        embedding_names=embedding_names,
        iterations=iterations,
    )
