"""On-disk format for GOBO-compressed models.

A :class:`~repro.core.model_quantizer.QuantizedModel` round-trips through a
single ``.npz`` archive whose size is dominated by the bit-packed G-group
codes — i.e. the file on disk realizes the ~10x compression the paper
reports, not just the in-memory accounting.

Layout per quantized tensor ``<name>``::

    gobo::<name>::codes       packed bitstream (uint8)
    gobo::<name>::centroids   2^bits FP32 reconstruction table
    gobo::<name>::positions   outlier flat indices (uint32)
    gobo::<name>::outliers    outlier values (float32)
    gobo::<name>::meta        [bits, *shape]

Pass-through FP32 parameters are stored under ``fp32::<name>`` as float32
(the paper's decode target precision; note the in-memory substrate computes
in float64).
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.core.model_quantizer import QuantizedModel
from repro.core.quantizer import GoboQuantizedTensor
from repro.errors import SerializationError


def save_quantized_model(model: QuantizedModel, path: str | Path) -> int:
    """Write ``model`` to ``path`` (npz). Returns the file size in bytes."""
    payload: dict[str, np.ndarray] = {}
    for name, tensor in model.quantized.items():
        payload[f"gobo::{name}::codes"] = np.frombuffer(tensor.packed_codes, dtype=np.uint8)
        payload[f"gobo::{name}::centroids"] = tensor.centroids.astype(np.float32)
        payload[f"gobo::{name}::positions"] = tensor.outlier_positions.astype(np.uint32)
        payload[f"gobo::{name}::outliers"] = tensor.outlier_values.astype(np.float32)
        payload[f"gobo::{name}::meta"] = np.array(
            [tensor.bits, *tensor.shape], dtype=np.int64
        )
    for name, value in model.fp32.items():
        payload[f"fp32::{name}"] = np.asarray(value, dtype=np.float32)
    payload["index::fc"] = np.array(model.fc_names, dtype=object)
    payload["index::embeddings"] = np.array(model.embedding_names, dtype=object)
    path = Path(path)
    np.savez(path, **payload)
    return path.stat().st_size


def load_quantized_model(path: str | Path) -> QuantizedModel:
    """Read a :class:`QuantizedModel` written by :func:`save_quantized_model`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such archive: {path}")
    import pickle

    try:
        archive = np.load(path, allow_pickle=True)
    except (OSError, ValueError, pickle.UnpicklingError, zipfile.BadZipFile) as exc:
        raise SerializationError(f"cannot read archive {path}: {exc}") from exc
    with archive:
        names = {
            key.split("::", 2)[1]
            for key in archive.files
            if key.startswith("gobo::") and key.endswith("::meta")
        }
        quantized: dict[str, GoboQuantizedTensor] = {}
        for name in names:
            try:
                meta = archive[f"gobo::{name}::meta"]
                tensor = GoboQuantizedTensor(
                    shape=tuple(int(d) for d in meta[1:]),
                    bits=int(meta[0]),
                    centroids=archive[f"gobo::{name}::centroids"].astype(np.float64),
                    packed_codes=archive[f"gobo::{name}::codes"].tobytes(),
                    outlier_positions=archive[f"gobo::{name}::positions"].astype(np.int64),
                    outlier_values=archive[f"gobo::{name}::outliers"].astype(np.float64),
                )
            except KeyError as exc:
                raise SerializationError(f"archive missing field for {name}: {exc}") from exc
            quantized[name] = tensor
        fp32 = {
            key[len("fp32::"):]: archive[key].astype(np.float64)
            for key in archive.files
            if key.startswith("fp32::")
        }
        try:
            fc_names = tuple(str(n) for n in archive["index::fc"])
            embedding_names = tuple(str(n) for n in archive["index::embeddings"])
        except KeyError as exc:
            raise SerializationError(f"archive missing index: {exc}") from exc
    return QuantizedModel(
        quantized=quantized,
        fp32=fp32,
        fc_names=fc_names,
        embedding_names=embedding_names,
    )
