"""Gaussian outlier detection (Section IV-A of the paper).

GOBO fits a single Gaussian to a layer's weights and computes each weight's
log-probability under it (Eq. 1).  Weights scoring below a threshold —
**-4 by default, the paper's empirically sufficient value** — are "outliers"
and are stored as-is in FP32; the rest form the "G" (Gaussian) group that is
quantized to a handful of representative values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.gaussian import GaussianFit

DEFAULT_LOG_PROB_THRESHOLD = -4.0


@dataclass(frozen=True)
class OutlierSplit:
    """The result of splitting one weight tensor into G and O groups.

    Attributes
    ----------
    outlier_mask:
        Boolean array of the input's shape; True marks an outlier.
    fit:
        The Gaussian fitted to *all* weights of the tensor.
    threshold:
        The log-probability threshold used.
    """

    outlier_mask: np.ndarray
    fit: GaussianFit
    threshold: float

    @property
    def outlier_count(self) -> int:
        return int(self.outlier_mask.sum())

    @property
    def total_count(self) -> int:
        return int(self.outlier_mask.size)

    @property
    def outlier_fraction(self) -> float:
        """Fraction of weights classified as outliers (paper: ~0.001)."""
        if self.total_count == 0:
            return 0.0
        return self.outlier_count / self.total_count

    def gaussian_values(self, weights: np.ndarray) -> np.ndarray:
        """The G-group values of ``weights`` as a flat array."""
        return np.asarray(weights)[~self.outlier_mask]

    def outlier_values(self, weights: np.ndarray) -> np.ndarray:
        """The O-group values of ``weights`` as a flat array."""
        return np.asarray(weights)[self.outlier_mask]


class OutlierDetector:
    """Splits weight tensors into Gaussian bulk and outlier fringe."""

    def __init__(self, log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD) -> None:
        self.log_prob_threshold = float(log_prob_threshold)

    def split(self, weights: np.ndarray) -> OutlierSplit:
        """Classify every weight of ``weights`` (any shape)."""
        weights = np.asarray(weights)
        fit = GaussianFit.fit(weights)
        log_probs = fit.log_pdf(weights)
        mask = log_probs < self.log_prob_threshold
        return OutlierSplit(outlier_mask=mask, fit=fit, threshold=self.log_prob_threshold)

    def magnitude_cutoff(self, weights: np.ndarray) -> float:
        """Distance from the mean (in weight units) at which values become
        outliers under the current threshold.

        Solving ``log pdf(x) = threshold`` for ``|x - mean|`` gives the
        closed-form band edge; useful for plotting Figure 1c's color coding.
        """
        fit = GaussianFit.fit(weights)
        if fit.std == 0.0:
            return 0.0
        import math

        inner = -2.0 * (self.log_prob_threshold + math.log(fit.std)
                        + 0.5 * math.log(2.0 * math.pi))
        if inner <= 0:
            return 0.0
        return fit.std * math.sqrt(inner)
