"""Per-layer bit-width policies.

Most experiments quantize every FC layer at the same width, but Section V's
RoBERTa result uses a **mixed policy**: the Value projection and the
Intermediate FC of the first half of the encoder stack are sensitive and get
4-bit indexes, the rest 3-bit.  :class:`LayerPolicy` expresses such rules.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class PolicyRule:
    """If ``pattern`` (a regex) matches the parameter name, use ``bits``."""

    pattern: str
    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 8:
            raise ConfigError(f"rule bits must be in [1, 8], got {self.bits}")
        try:
            re.compile(self.pattern)
        except re.error as exc:
            raise ConfigError(f"invalid rule pattern {self.pattern!r}: {exc}") from exc

    def matches(self, name: str) -> bool:
        return re.search(self.pattern, name) is not None


@dataclass(frozen=True)
class LayerPolicy:
    """Bit width per layer: first matching rule wins, else ``default_bits``."""

    default_bits: int = 3
    rules: tuple[PolicyRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 1 <= self.default_bits <= 8:
            raise ConfigError(f"default_bits must be in [1, 8], got {self.default_bits}")

    def bits_for(self, name: str) -> int:
        for rule in self.rules:
            if rule.matches(name):
                return rule.bits
        return self.default_bits

    @classmethod
    def uniform(cls, bits: int) -> "LayerPolicy":
        """Every layer at the same width."""
        return cls(default_bits=bits)


def mixed_precision_policy(
    num_sensitive_layers: int,
    sensitive_bits: int = 4,
    default_bits: int = 3,
    sensitive_components: tuple[str, ...] = ("attention.value", "intermediate"),
) -> LayerPolicy:
    """The paper's RoBERTa recipe (Table VI, the '3b/4b' rows).

    The Value FC in self-attention and the Intermediate FC of the first
    ``num_sensitive_layers`` encoder layers are quantized at
    ``sensitive_bits``; everything else at ``default_bits``.  The paper uses
    6 of 12 layers for RoBERTa and 14 of 24 for RoBERTa-Large.
    """
    if num_sensitive_layers < 0:
        raise ConfigError(f"num_sensitive_layers must be >= 0, got {num_sensitive_layers}")
    rules = []
    for layer in range(num_sensitive_layers):
        for component in sensitive_components:
            escaped = re.escape(component)
            rules.append(
                PolicyRule(pattern=rf"encoder\.{layer}\.{escaped}\.weight$", bits=sensitive_bits)
            )
    return LayerPolicy(default_bits=default_bits, rules=tuple(rules))
