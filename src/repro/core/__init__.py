"""GOBO: the paper's contribution — outlier-aware dictionary quantization."""

from repro.core.binning import (
    assign_to_centroids,
    equal_population_centroids,
    linear_centroids,
)
from repro.core.clustering import (
    ClusteringResult,
    ConvergenceTrace,
    gobo_cluster,
    kmeans_cluster,
)
from repro.core.entropy import CodeEntropyReport, code_entropy
from repro.core.formats import (
    StorageReport,
    compression_curve,
    potential_compression_ratio,
    storage_report,
)
from repro.core.model_quantizer import (
    ParameterSelection,
    QuantizedModel,
    quantize_model,
    quantize_state_dict,
    select_parameters,
)
from repro.core.outliers import (
    DEFAULT_LOG_PROB_THRESHOLD,
    OutlierDetector,
    OutlierSplit,
)
from repro.core.parallel import (
    LayerFailure,
    LayerJob,
    LayerRecord,
    ON_ERROR_POLICIES,
    QuantizationReport,
    default_on_error,
    default_workers,
    quantize_layers,
    resolve_on_error,
    resolve_workers,
)
from repro.core.policy import LayerPolicy, PolicyRule, mixed_precision_policy
from repro.core.quantizer import (
    GoboQuantizedTensor,
    quantization_error,
    quantize_tensor,
)
from repro.core.npzmap import MmapNpzReader
from repro.core.serialization import (
    ArchiveCheck,
    LazyQuantizedTensors,
    load_quantized_model,
    save_quantized_model,
    verify_archive,
)
from repro.core.validate import (
    TensorDiagnosis,
    VALIDATION_POLICIES,
    ValidationOutcome,
    diagnose_tensor,
    validate_tensor,
)

__all__ = [
    "DEFAULT_LOG_PROB_THRESHOLD",
    "ON_ERROR_POLICIES",
    "VALIDATION_POLICIES",
    "ArchiveCheck",
    "ClusteringResult",
    "LazyQuantizedTensors",
    "MmapNpzReader",
    "CodeEntropyReport",
    "ConvergenceTrace",
    "code_entropy",
    "diagnose_tensor",
    "GoboQuantizedTensor",
    "LayerFailure",
    "LayerJob",
    "LayerPolicy",
    "LayerRecord",
    "TensorDiagnosis",
    "ValidationOutcome",
    "OutlierDetector",
    "OutlierSplit",
    "ParameterSelection",
    "PolicyRule",
    "QuantizationReport",
    "QuantizedModel",
    "StorageReport",
    "assign_to_centroids",
    "compression_curve",
    "default_workers",
    "equal_population_centroids",
    "gobo_cluster",
    "kmeans_cluster",
    "linear_centroids",
    "load_quantized_model",
    "quantize_layers",
    "default_on_error",
    "resolve_on_error",
    "resolve_workers",
    "validate_tensor",
    "verify_archive",
    "mixed_precision_policy",
    "potential_compression_ratio",
    "quantization_error",
    "quantize_model",
    "quantize_state_dict",
    "quantize_tensor",
    "save_quantized_model",
    "select_parameters",
    "storage_report",
]
