"""Layer-parallel quantization engine with per-layer instrumentation.

GOBO is post-training and per-layer: every FC matrix and embedding table is
quantized independently (Section IV), so whole-model compression is
embarrassingly parallel.  :func:`quantize_layers` fans the per-tensor
:func:`~repro.core.quantizer.quantize_tensor` calls out over a thread pool
and records a :class:`QuantizationReport` — per-layer wall-time, iteration
count, outlier fraction and byte accounting — so quantization-time cost is a
measurable axis (as in Q8BERT and the PTQ surveys), not an invisible one.

Threads, not processes: the hot kernels (``searchsorted``/``bincount``/
``argmin`` inside the clustering loop) release the GIL, a thread pool shares
the weight arrays with zero copies, and — because :func:`quantize_tensor` is
a pure function of its inputs — the result is **bit-for-bit identical** for
any worker count.  ``workers=1`` runs the plain serial loop with no executor
at all, preserving the historical path exactly.

Worker resolution:

* ``workers=N`` (N >= 1) uses exactly N threads,
* ``workers=0`` uses ``os.cpu_count()``,
* ``workers=None`` defers to the ``REPRO_WORKERS`` environment variable
  (default 1) so experiment pipelines can be parallelized without threading
  a parameter through every call site.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.core.formats import BYTES_PER_FP32
from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD
from repro.core.quantizer import GoboQuantizedTensor, quantize_tensor
from repro.errors import QuantizationError
from repro.utils.tables import format_table

WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class LayerJob:
    """One unit of work for the engine: quantize ``name`` at ``bits``."""

    name: str
    bits: int


@dataclass(frozen=True)
class LayerRecord:
    """Instrumentation for one quantized layer."""

    name: str
    bits: int
    seconds: float
    iterations: int
    converged: bool
    outlier_fraction: float
    original_bytes: int
    compressed_bytes: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


@dataclass
class QuantizationReport:
    """Per-layer instrumentation of one engine run.

    ``wall_seconds`` is the end-to-end fan-out time; ``layer_seconds`` sums
    the per-layer times, so ``layer_seconds / wall_seconds`` is the effective
    parallelism actually achieved.
    """

    workers: int
    wall_seconds: float = 0.0
    layers: list[LayerRecord] = field(default_factory=list)

    @property
    def layer_seconds(self) -> float:
        return sum(record.seconds for record in self.layers)

    @property
    def total_original_bytes(self) -> int:
        return sum(record.original_bytes for record in self.layers)

    @property
    def total_compressed_bytes(self) -> int:
        return sum(record.compressed_bytes for record in self.layers)

    @property
    def compression_ratio(self) -> float:
        if self.total_compressed_bytes == 0:
            return float("inf")
        return self.total_original_bytes / self.total_compressed_bytes

    @property
    def effective_parallelism(self) -> float:
        if self.wall_seconds == 0.0:
            return 1.0
        return self.layer_seconds / self.wall_seconds

    def render(self) -> str:
        """Aligned text table: one row per layer plus a totals footer."""
        rows = [
            [
                record.name,
                record.bits,
                record.iterations,
                f"{record.outlier_fraction * 100:.3f}%",
                f"{record.compressed_bytes / 1024:.1f}",
                f"{record.compression_ratio:.2f}x",
                f"{record.seconds * 1000:.1f}",
            ]
            for record in self.layers
        ]
        table = format_table(
            ["Layer", "Bits", "Iter", "Outlier %", "KiB", "CR", "ms"],
            rows,
            title="Per-layer quantization report",
        )
        footer = (
            f"layers={len(self.layers)} workers={self.workers} "
            f"wall={self.wall_seconds:.3f}s layer-sum={self.layer_seconds:.3f}s "
            f"(effective parallelism {self.effective_parallelism:.2f}x) "
            f"CR={self.compression_ratio:.2f}x"
        )
        return f"{table}\n{footer}"


def default_workers() -> int:
    """Worker count from the ``REPRO_WORKERS`` environment (default 1)."""
    raw = os.environ.get(WORKERS_ENV)
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise QuantizationError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    return resolve_workers(workers)


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` argument to a concrete thread count."""
    if workers is None:
        return default_workers()
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise QuantizationError(f"workers must be an int or None, got {workers!r}")
    if workers < 0:
        raise QuantizationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def quantize_layers(
    state: Mapping[str, np.ndarray],
    jobs: Iterable[LayerJob],
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    method: str = "gobo",
    max_iterations: int = 50,
    workers: int | None = 1,
) -> tuple[dict[str, GoboQuantizedTensor], dict[str, int], QuantizationReport]:
    """Quantize every job's tensor, optionally fanning out over threads.

    Results are keyed in job order regardless of completion order, and each
    job is an independent pure computation, so the output is bit-for-bit
    identical for every worker count.  Returns ``(quantized, iterations,
    report)``.
    """
    jobs = list(jobs)
    missing = [job.name for job in jobs if job.name not in state]
    if missing:
        raise QuantizationError(f"state dict is missing tensors: {missing}")
    workers = resolve_workers(workers)

    def run(job: LayerJob) -> tuple[GoboQuantizedTensor, LayerRecord]:
        started = time.perf_counter()
        tensor, result = quantize_tensor(
            state[job.name],
            bits=job.bits,
            log_prob_threshold=log_prob_threshold,
            method=method,
            max_iterations=max_iterations,
        )
        elapsed = time.perf_counter() - started
        record = LayerRecord(
            name=job.name,
            bits=job.bits,
            seconds=elapsed,
            iterations=result.iterations,
            converged=result.converged,
            outlier_fraction=tensor.outlier_fraction,
            original_bytes=tensor.total_count * BYTES_PER_FP32,
            compressed_bytes=tensor.storage().compressed_bytes,
        )
        return tensor, record

    started = time.perf_counter()
    if workers == 1 or len(jobs) <= 1:
        outcomes = [run(job) for job in jobs]
    else:
        with ThreadPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            outcomes = list(pool.map(run, jobs))
    wall = time.perf_counter() - started

    quantized: dict[str, GoboQuantizedTensor] = {}
    iterations: dict[str, int] = {}
    report = QuantizationReport(workers=workers, wall_seconds=wall)
    for (tensor, record) in outcomes:
        quantized[record.name] = tensor
        iterations[record.name] = record.iterations
        report.layers.append(record)
    return quantized, iterations, report
