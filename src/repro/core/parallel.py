"""Layer-parallel quantization engine with per-layer instrumentation.

GOBO is post-training and per-layer: every FC matrix and embedding table is
quantized independently (Section IV), so whole-model compression is
embarrassingly parallel.  :func:`quantize_layers` fans the per-tensor
:func:`~repro.core.quantizer.quantize_tensor` calls out over a thread pool
and records a :class:`QuantizationReport` — per-layer wall-time, iteration
count, outlier fraction and byte accounting — so quantization-time cost is a
measurable axis (as in Q8BERT and the PTQ surveys), not an invisible one.
All timings come from :mod:`repro.obs` spans (``engine.run``, one
``engine.layer`` per job), and the engine scopes each run so
``report.metrics`` carries a :class:`~repro.obs.metrics.MetricsSnapshot`
even when no trace sink is installed; span context is propagated into the
pool workers so traces nest identically at any worker count (DESIGN.md §5c).

Threads, not processes: the hot kernels (``searchsorted``/``bincount``/
``argmin`` inside the clustering loop) release the GIL, a thread pool shares
the weight arrays with zero copies, and — because :func:`quantize_tensor` is
a pure function of its inputs — the result is **bit-for-bit identical** for
any worker count.  ``workers=1`` runs the plain serial loop with no executor
at all, preserving the historical path exactly.

Worker resolution:

* ``workers=N`` (N >= 1) uses exactly N threads,
* ``workers=0`` uses ``os.cpu_count()``,
* ``workers=None`` defers to the ``REPRO_WORKERS`` environment variable
  (default 1) so experiment pipelines can be parallelized without threading
  a parameter through every call site.

Failure isolation (``on_error``): one pathological tensor — zero-variance
weights, NaN/Inf entries — must never abort a whole-model run.  Each job is
attempted in isolation; what happens when it raises is a policy:

* ``"fail"`` (default): re-raise, the historical fail-fast behaviour;
* ``"skip"``: drop the layer from the output entirely;
* ``"fp32-fallback"``: ship the layer unquantized (the PTQ literature's
  per-layer fallback-to-higher-precision knob, taken to FP32);
* ``"retry-higher-bits"``: retry the layer at ``bits+1, bits+2, … 8``; if
  every retry fails, fall back to FP32.

Every non-"fail" outcome is captured as a :class:`LayerFailure` in the
report, so degraded runs are loud in the instrumentation even though they
complete.  ``on_error=None`` defers to the ``REPRO_ON_ERROR`` environment
variable (default ``"fail"``).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.formats import BYTES_PER_FP32
from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD
from repro.core.quantizer import GoboQuantizedTensor, quantize_tensor
from repro.errors import LayerSkipped, QuantizationError
from repro.obs import recorder as obs
from repro.obs.metrics import MetricsSnapshot
from repro.utils.tables import format_table

WORKERS_ENV = "REPRO_WORKERS"
ON_ERROR_ENV = "REPRO_ON_ERROR"
ON_ERROR_POLICIES = ("fail", "skip", "fp32-fallback", "retry-higher-bits")
MAX_RETRY_BITS = 8

# A fault injector is called as ``injector(index, job, weights)`` before each
# layer is quantized; it may raise (simulating a layer failure) or return a
# replacement weight array (poisoning).  See ``repro.testing.faults``.
FaultInjector = Callable[[int, "LayerJob", np.ndarray], "np.ndarray | None"]


@dataclass(frozen=True)
class LayerJob:
    """One unit of work for the engine: quantize ``name`` at ``bits``."""

    name: str
    bits: int


@dataclass(frozen=True)
class LayerRecord:
    """Instrumentation for one quantized layer."""

    name: str
    bits: int
    seconds: float
    iterations: int
    converged: bool
    outlier_fraction: float
    original_bytes: int
    compressed_bytes: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


@dataclass(frozen=True)
class LayerFailure:
    """One layer that did not quantize at its requested bit width.

    ``action`` records how the engine resolved it: ``"skip"`` (dropped),
    ``"fp32-fallback"`` (shipped unquantized), ``"validation-skip"``
    (rejected by the ``skip`` validation policy, shipped unquantized) or
    ``"retry-higher-bits"`` (recovered at ``recovered_bits`` — the layer
    *is* quantized, just wider than requested).  ``attempts`` lists every
    bit width tried.
    """

    name: str
    bits: int
    action: str
    error_type: str
    message: str
    attempts: tuple[int, ...] = ()
    recovered_bits: int | None = None

    @property
    def quantized_anyway(self) -> bool:
        return self.recovered_bits is not None

    @property
    def dropped(self) -> bool:
        return self.action == "skip"


@dataclass
class QuantizationReport:
    """Per-layer instrumentation of one engine run.

    ``wall_seconds`` is the end-to-end fan-out time; ``layer_seconds`` sums
    the per-layer times, so ``layer_seconds / wall_seconds`` is the effective
    parallelism actually achieved.  ``failures`` records every layer that
    needed a degradation policy (empty on a clean run).

    Both timings are read from :mod:`repro.obs` spans (``engine.run`` and
    ``engine.layer``), so the report and an exported trace can never
    disagree.  ``metrics`` is the :class:`~repro.obs.metrics.MetricsSnapshot`
    of every observability event the run produced — available whether or not
    a trace sink was installed.
    """

    workers: int
    wall_seconds: float = 0.0
    layers: list[LayerRecord] = field(default_factory=list)
    failures: list[LayerFailure] = field(default_factory=list)
    on_error: str = "fail"
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    @property
    def ok(self) -> bool:
        """True when every layer quantized cleanly at its requested width."""
        return not self.failures

    @property
    def failed_layer_names(self) -> tuple[str, ...]:
        return tuple(failure.name for failure in self.failures)

    @property
    def layer_seconds(self) -> float:
        return sum(record.seconds for record in self.layers)

    @property
    def total_original_bytes(self) -> int:
        return sum(record.original_bytes for record in self.layers)

    @property
    def total_compressed_bytes(self) -> int:
        return sum(record.compressed_bytes for record in self.layers)

    @property
    def compression_ratio(self) -> float:
        if self.total_compressed_bytes == 0:
            return float("inf")
        return self.total_original_bytes / self.total_compressed_bytes

    @property
    def effective_parallelism(self) -> float:
        if self.wall_seconds == 0.0:
            return 1.0
        return self.layer_seconds / self.wall_seconds

    def render(self) -> str:
        """Aligned text table: one row per layer plus a totals footer."""
        rows = [
            [
                record.name,
                record.bits,
                record.iterations,
                f"{record.outlier_fraction * 100:.3f}%",
                f"{record.compressed_bytes / 1024:.1f}",
                f"{record.compression_ratio:.2f}x",
                f"{record.seconds * 1000:.1f}",
            ]
            for record in self.layers
        ]
        table = format_table(
            ["Layer", "Bits", "Iter", "Outlier %", "KiB", "CR", "ms"],
            rows,
            title="Per-layer quantization report",
        )
        footer = (
            f"layers={len(self.layers)} workers={self.workers} "
            f"wall={self.wall_seconds:.3f}s layer-sum={self.layer_seconds:.3f}s "
            f"(effective parallelism {self.effective_parallelism:.2f}x) "
            f"CR={self.compression_ratio:.2f}x"
        )
        if self.failures:
            failure_rows = [
                [
                    failure.name,
                    failure.bits,
                    failure.action,
                    "" if failure.recovered_bits is None else str(failure.recovered_bits),
                    failure.error_type,
                    failure.message[:60],
                ]
                for failure in self.failures
            ]
            failure_table = format_table(
                ["Layer", "Bits", "Action", "Recovered", "Error", "Message"],
                failure_rows,
                title=f"Layer failures (on_error={self.on_error})",
            )
            return f"{table}\n{footer}\n\n{failure_table}"
        return f"{table}\n{footer}"


def default_workers() -> int:
    """Worker count from the ``REPRO_WORKERS`` environment (default 1)."""
    raw = os.environ.get(WORKERS_ENV)
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise QuantizationError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    return resolve_workers(workers)


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` argument to a concrete thread count."""
    if workers is None:
        return default_workers()
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise QuantizationError(f"workers must be an int or None, got {workers!r}")
    if workers < 0:
        raise QuantizationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def default_on_error() -> str:
    """Failure policy from the ``REPRO_ON_ERROR`` environment (default fail)."""
    raw = os.environ.get(ON_ERROR_ENV)
    if not raw:
        return "fail"
    return resolve_on_error(raw)


def resolve_on_error(on_error: str | None) -> str:
    """Normalize an ``on_error`` argument to a concrete policy name."""
    if on_error is None:
        return default_on_error()
    if on_error not in ON_ERROR_POLICIES:
        raise QuantizationError(
            f"unknown on_error policy {on_error!r}; use one of {ON_ERROR_POLICIES}"
        )
    return on_error


@dataclass(frozen=True)
class _JobOutcome:
    """Internal: what one isolated job attempt produced."""

    tensor: GoboQuantizedTensor | None
    record: LayerRecord | None
    failure: LayerFailure | None


def quantize_layers(
    state: Mapping[str, np.ndarray],
    jobs: Iterable[LayerJob],
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    method: str = "gobo",
    max_iterations: int = 50,
    workers: int | None = 1,
    on_error: str | None = "fail",
    validation: str = "strict",
    fault_injector: FaultInjector | None = None,
) -> tuple[dict[str, GoboQuantizedTensor], dict[str, int], QuantizationReport]:
    """Quantize every job's tensor, optionally fanning out over threads.

    Results are keyed in job order regardless of completion order, and each
    job is an independent pure computation, so the output is bit-for-bit
    identical for every worker count — including runs where some layers fail
    and a degradation policy applies (see module docstring for ``on_error``
    and :mod:`repro.core.validate` for ``validation``).  ``fault_injector``
    is the deterministic test hook used by :mod:`repro.testing.faults`.
    Returns ``(quantized, iterations, report)``; failed layers appear in
    ``report.failures`` instead of ``quantized``.
    """
    jobs = list(jobs)
    missing = [job.name for job in jobs if job.name not in state]
    if missing:
        raise QuantizationError(f"state dict is missing tensors: {missing}")
    workers = resolve_workers(workers)
    on_error = resolve_on_error(on_error)

    def attempt(index: int, job: LayerJob, bits: int) -> tuple[GoboQuantizedTensor, LayerRecord]:
        with obs.span("engine.layer", layer=job.name, bits=bits) as layer_span:
            weights = state[job.name]
            if fault_injector is not None:
                replacement = fault_injector(index, job, weights)
                if replacement is not None:
                    weights = replacement
            tensor, result = quantize_tensor(
                weights,
                bits=bits,
                log_prob_threshold=log_prob_threshold,
                method=method,
                max_iterations=max_iterations,
                validation=validation,
            )
            original_bytes = tensor.total_count * BYTES_PER_FP32
            compressed_bytes = tensor.storage().compressed_bytes
            layer_span.set(
                iterations=result.iterations,
                converged=result.converged,
                outlier_fraction=tensor.outlier_fraction,
                original_bytes=original_bytes,
                compressed_bytes=compressed_bytes,
            )
        record = LayerRecord(
            name=job.name,
            bits=bits,
            seconds=layer_span.duration,
            iterations=result.iterations,
            converged=result.converged,
            outlier_fraction=tensor.outlier_fraction,
            original_bytes=original_bytes,
            compressed_bytes=compressed_bytes,
        )
        return tensor, record

    def run(indexed_job: tuple[int, LayerJob]) -> _JobOutcome:
        index, job = indexed_job
        attempts = [job.bits]
        try:
            tensor, record = attempt(index, job, job.bits)
            return _JobOutcome(tensor=tensor, record=record, failure=None)
        except LayerSkipped as exc:
            # The skip validation policy always ships the layer FP32,
            # independent of on_error.
            return _JobOutcome(
                tensor=None,
                record=None,
                failure=LayerFailure(
                    name=job.name,
                    bits=job.bits,
                    action="validation-skip",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=tuple(attempts),
                ),
            )
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            if on_error == "fail":
                raise
            if on_error == "retry-higher-bits":
                for retry_bits in range(job.bits + 1, MAX_RETRY_BITS + 1):
                    attempts.append(retry_bits)
                    try:
                        tensor, record = attempt(index, job, retry_bits)
                    except Exception:  # noqa: BLE001 — keep widening
                        continue
                    return _JobOutcome(
                        tensor=tensor,
                        record=record,
                        failure=LayerFailure(
                            name=job.name,
                            bits=job.bits,
                            action="retry-higher-bits",
                            error_type=type(exc).__name__,
                            message=str(exc),
                            attempts=tuple(attempts),
                            recovered_bits=retry_bits,
                        ),
                    )
                action = "fp32-fallback"  # every retry failed
            else:
                action = on_error
            return _JobOutcome(
                tensor=None,
                record=None,
                failure=LayerFailure(
                    name=job.name,
                    bits=job.bits,
                    action=action,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=tuple(attempts),
                ),
            )

    indexed = list(enumerate(jobs))
    with obs.scope() as scoped:
        # The workers gauge is the one event whose payload legitimately
        # differs between otherwise identical runs at different worker
        # counts; determinism comparisons exclude it by name (DESIGN §5c).
        obs.gauge("engine.workers", workers)
        obs.gauge("engine.queue.jobs", len(jobs))
        with obs.span("engine.run") as engine_span:
            # Worker threads re-attach the submitting thread's span context,
            # so layer spans nest under engine.run at any worker count.
            context = obs.capture_context()

            def run_in_context(item: tuple[int, LayerJob]) -> _JobOutcome:
                with obs.use_context(context):
                    return run(item)

            if workers == 1 or len(jobs) <= 1:
                outcomes = [run_in_context(item) for item in indexed]
            else:
                with ThreadPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
                    outcomes = list(pool.map(run_in_context, indexed))

        quantized: dict[str, GoboQuantizedTensor] = {}
        iterations: dict[str, int] = {}
        report = QuantizationReport(
            workers=workers, wall_seconds=engine_span.duration, on_error=on_error
        )
        for outcome in outcomes:
            if outcome.record is not None and outcome.tensor is not None:
                quantized[outcome.record.name] = outcome.tensor
                iterations[outcome.record.name] = outcome.record.iterations
                report.layers.append(outcome.record)
            if outcome.failure is not None:
                report.failures.append(outcome.failure)
        obs.counter("engine.layers.quantized", len(report.layers))
        if report.failures:
            obs.counter("engine.layers.degraded", len(report.failures))
    report.metrics = scoped.snapshot()
    return quantized, iterations, report
