"""Layer-parallel quantization engine with per-layer instrumentation.

GOBO is post-training and per-layer: every FC matrix and embedding table is
quantized independently (Section IV), so whole-model compression is
embarrassingly parallel.  :func:`quantize_layers` fans the per-tensor
:func:`~repro.core.quantizer.quantize_tensor` calls out over a thread pool
and records a :class:`QuantizationReport` — per-layer wall-time, iteration
count, outlier fraction and byte accounting — so quantization-time cost is a
measurable axis (as in Q8BERT and the PTQ surveys), not an invisible one.
All timings come from :mod:`repro.obs` spans (``engine.run``, one
``engine.layer`` per job), and the engine scopes each run so
``report.metrics`` carries a :class:`~repro.obs.metrics.MetricsSnapshot`
even when no trace sink is installed; span context is propagated into the
pool workers so traces nest identically at any worker count (DESIGN.md §5c).

Two backends (``backend=`` / ``REPRO_BACKEND``):

* ``"thread"`` (default): the hot kernels (``searchsorted``/``bincount``/
  ``argmin`` inside the clustering loop) release the GIL, a thread pool
  shares the weight arrays with zero copies, and ``workers=1`` runs the
  plain serial loop with no executor at all, preserving the historical path
  exactly.
* ``"process"``: a supervised worker fleet (:mod:`repro.jobs.fleet`) —
  crash-isolated worker *processes* with heartbeats, layer leases and
  work reassignment, so a worker SIGKILLed mid-layer costs only that
  layer's in-flight attempt, never the run.  The GIL-bound parts of the
  clustering loop also genuinely parallelize.

Because :func:`quantize_tensor` is a pure function of its inputs, the result
is **bit-for-bit identical** for any worker count *and* either backend —
the per-job logic lives in one :class:`JobRunner` shared by both.

Worker resolution:

* ``workers=N`` (N >= 1) uses exactly N threads,
* ``workers=0`` uses ``os.cpu_count()``,
* ``workers=None`` defers to the ``REPRO_WORKERS`` environment variable
  (default 1) so experiment pipelines can be parallelized without threading
  a parameter through every call site.

Failure isolation (``on_error``): one pathological tensor — zero-variance
weights, NaN/Inf entries — must never abort a whole-model run.  Each job is
attempted in isolation; what happens when it raises is a policy:

* ``"fail"`` (default): re-raise, the historical fail-fast behaviour;
* ``"skip"``: drop the layer from the output entirely;
* ``"fp32-fallback"``: ship the layer unquantized (the PTQ literature's
  per-layer fallback-to-higher-precision knob, taken to FP32);
* ``"retry-higher-bits"``: retry the layer at ``bits+1, bits+2, … 8``; if
  every retry fails, fall back to FP32.

Every non-"fail" outcome is captured as a :class:`LayerFailure` in the
report, so degraded runs are loud in the instrumentation even though they
complete.  ``on_error=None`` defers to the ``REPRO_ON_ERROR`` environment
variable (default ``"fail"``).

Supervision (``layer_timeout`` / ``transient_retries`` / ``cancel``): the
durable-job layer (:mod:`repro.jobs`) runs the engine supervised:

* ``layer_timeout=S`` arms a per-layer :class:`~repro.jobs.watchdog.Deadline`
  (cooperatively checked inside the clustering loop, flagged by a monitor
  thread) so a hung or pathologically slow layer becomes a
  ``LayerFailure(action="timeout")`` resolved by the ``on_error`` policy
  instead of stalling the whole run;
* ``transient_retries=N`` re-attempts a layer in place (exponential backoff
  with deterministic jitter) when it fails with a *transient* error — I/O
  errors, injected transient faults — before any ``on_error`` policy fires;
* ``cancel`` (a :class:`threading.Event`) drains the run: layers not yet
  started are left pending (``report.pending``), in-flight layers finish,
  and ``report.interrupted`` is set.  Graceful SIGINT/SIGTERM handling in
  :mod:`repro.jobs.signals` sets this event.
* ``on_layer_complete`` is invoked (serialized under a lock) with each
  layer's final :class:`LayerOutcome` the moment it finishes — the hook the
  durable runner uses to journal and shard completed layers immediately.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.formats import BYTES_PER_FP32
from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD
from repro.core.quantizer import GoboQuantizedTensor, quantize_tensor
from repro.errors import LayerSkipped, LayerTimeoutError, QuantizationError
from repro.jobs.retry import DEFAULT_BACKOFF_BASE, backoff_delay, is_transient
from repro.jobs.watchdog import Deadline, Watchdog, deadline_scope
from repro.obs import recorder as obs
from repro.obs.metrics import MetricsSnapshot
from repro.utils.tables import format_table

WORKERS_ENV = "REPRO_WORKERS"
ON_ERROR_ENV = "REPRO_ON_ERROR"
LAYER_TIMEOUT_ENV = "REPRO_LAYER_TIMEOUT"
TRANSIENT_RETRIES_ENV = "REPRO_TRANSIENT_RETRIES"
BACKEND_ENV = "REPRO_BACKEND"
ON_ERROR_POLICIES = ("fail", "skip", "fp32-fallback", "retry-higher-bits")
BACKENDS = ("thread", "process")
MAX_RETRY_BITS = 8

# A fault injector is called as ``injector(index, job, weights)`` before each
# layer is quantized; it may raise (simulating a layer failure) or return a
# replacement weight array (poisoning).  See ``repro.testing.faults``.
FaultInjector = Callable[[int, "LayerJob", np.ndarray], "np.ndarray | None"]


@dataclass(frozen=True)
class LayerJob:
    """One unit of work for the engine: quantize ``name`` at ``bits``.

    ``method`` optionally overrides the run-wide tensor method for this one
    layer (e.g. Q-BERT quantizes FC layers group-wise but embeddings with a
    symmetric 8-bit grid); ``None`` inherits the run default.
    """

    name: str
    bits: int
    method: str | None = None


@dataclass(frozen=True)
class LayerRecord:
    """Instrumentation for one quantized layer."""

    name: str
    bits: int
    seconds: float
    iterations: int
    converged: bool
    outlier_fraction: float
    original_bytes: int
    compressed_bytes: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


@dataclass(frozen=True)
class LayerFailure:
    """One layer that did not quantize at its requested bit width.

    ``action`` records how the engine resolved it: ``"skip"`` (dropped),
    ``"fp32-fallback"`` (shipped unquantized), ``"validation-skip"``
    (rejected by the ``skip`` validation policy, shipped unquantized),
    ``"retry-higher-bits"`` (recovered at ``recovered_bits`` — the layer
    *is* quantized, just wider than requested) or ``"timeout"`` (the layer
    blew its watchdog deadline; ``resolution`` records how the ``on_error``
    policy disposed of it — ``"skip"`` or ``"fp32-fallback"``).
    ``attempts`` lists every bit width tried and ``transient_retries`` how
    many in-place transient retries were consumed before the failure stuck.
    """

    name: str
    bits: int
    action: str
    error_type: str
    message: str
    attempts: tuple[int, ...] = ()
    recovered_bits: int | None = None
    resolution: str = ""
    transient_retries: int = 0

    @property
    def quantized_anyway(self) -> bool:
        return self.recovered_bits is not None

    @property
    def dropped(self) -> bool:
        return self.action == "skip" or self.resolution == "skip"


@dataclass
class QuantizationReport:
    """Per-layer instrumentation of one engine run.

    ``wall_seconds`` is the end-to-end fan-out time; ``layer_seconds`` sums
    the per-layer times, so ``layer_seconds / wall_seconds`` is the effective
    parallelism actually achieved.  ``failures`` records every layer that
    needed a degradation policy (empty on a clean run).

    Both timings are read from :mod:`repro.obs` spans (``engine.run`` and
    ``engine.layer``), so the report and an exported trace can never
    disagree.  ``metrics`` is the :class:`~repro.obs.metrics.MetricsSnapshot`
    of every observability event the run produced — available whether or not
    a trace sink was installed.
    """

    workers: int
    wall_seconds: float = 0.0
    layers: list[LayerRecord] = field(default_factory=list)
    failures: list[LayerFailure] = field(default_factory=list)
    on_error: str = "fail"
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    layer_timeout: float | None = None
    interrupted: bool = False
    pending: list[str] = field(default_factory=list)
    resumed_layers: int = 0
    backend: str = "thread"
    worker_deaths: int = 0
    reassignments: int = 0

    @property
    def ok(self) -> bool:
        """True when every layer quantized cleanly at its requested width
        and the run was neither interrupted nor left layers pending."""
        return not self.failures and not self.interrupted and not self.pending

    @property
    def failed_layer_names(self) -> tuple[str, ...]:
        return tuple(failure.name for failure in self.failures)

    @property
    def layer_seconds(self) -> float:
        return sum(record.seconds for record in self.layers)

    @property
    def total_original_bytes(self) -> int:
        return sum(record.original_bytes for record in self.layers)

    @property
    def total_compressed_bytes(self) -> int:
        return sum(record.compressed_bytes for record in self.layers)

    @property
    def compression_ratio(self) -> float:
        if self.total_compressed_bytes == 0:
            return float("inf")
        return self.total_original_bytes / self.total_compressed_bytes

    @property
    def effective_parallelism(self) -> float:
        if self.wall_seconds == 0.0:
            return 1.0
        return self.layer_seconds / self.wall_seconds

    def render(self) -> str:
        """Aligned text table: one row per layer plus a totals footer."""
        rows = [
            [
                record.name,
                record.bits,
                record.iterations,
                f"{record.outlier_fraction * 100:.3f}%",
                f"{record.compressed_bytes / 1024:.1f}",
                f"{record.compression_ratio:.2f}x",
                f"{record.seconds * 1000:.1f}",
            ]
            for record in self.layers
        ]
        table = format_table(
            ["Layer", "Bits", "Iter", "Outlier %", "KiB", "CR", "ms"],
            rows,
            title="Per-layer quantization report",
        )
        footer = (
            f"layers={len(self.layers)} workers={self.workers} "
            f"wall={self.wall_seconds:.3f}s layer-sum={self.layer_seconds:.3f}s "
            f"(effective parallelism {self.effective_parallelism:.2f}x) "
            f"CR={self.compression_ratio:.2f}x"
        )
        if self.backend != "thread":
            footer += f" backend={self.backend}"
            if self.worker_deaths:
                footer += (
                    f" worker-deaths={self.worker_deaths}"
                    f" reassigned={self.reassignments}"
                )
        if self.resumed_layers:
            footer += f" resumed={self.resumed_layers}"
        if self.interrupted:
            footer += (
                f"\nINTERRUPTED: {len(self.pending)} layer(s) pending: "
                + ", ".join(self.pending)
            )
        if self.failures:
            failure_rows = [
                [
                    failure.name,
                    failure.bits,
                    failure.action,
                    "" if failure.recovered_bits is None else str(failure.recovered_bits),
                    failure.error_type,
                    failure.message[:60],
                ]
                for failure in self.failures
            ]
            failure_table = format_table(
                ["Layer", "Bits", "Action", "Recovered", "Error", "Message"],
                failure_rows,
                title=f"Layer failures (on_error={self.on_error})",
            )
            return f"{table}\n{footer}\n\n{failure_table}"
        return f"{table}\n{footer}"


def default_workers() -> int:
    """Worker count from the ``REPRO_WORKERS`` environment (default 1)."""
    raw = os.environ.get(WORKERS_ENV)
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise QuantizationError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    return resolve_workers(workers)


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` argument to a concrete thread count."""
    if workers is None:
        return default_workers()
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise QuantizationError(f"workers must be an int or None, got {workers!r}")
    if workers < 0:
        raise QuantizationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def default_backend() -> str:
    """Engine backend from the ``REPRO_BACKEND`` environment (default thread)."""
    raw = os.environ.get(BACKEND_ENV)
    if not raw:
        return "thread"
    return resolve_backend(raw)


def resolve_backend(backend: str | None) -> str:
    """Normalize a ``backend`` argument to a concrete backend name."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise QuantizationError(
            f"unknown engine backend {backend!r}; use one of {BACKENDS}"
        )
    return backend


def default_on_error() -> str:
    """Failure policy from the ``REPRO_ON_ERROR`` environment (default fail)."""
    raw = os.environ.get(ON_ERROR_ENV)
    if not raw:
        return "fail"
    return resolve_on_error(raw)


def resolve_on_error(on_error: str | None) -> str:
    """Normalize an ``on_error`` argument to a concrete policy name."""
    if on_error is None:
        return default_on_error()
    if on_error not in ON_ERROR_POLICIES:
        raise QuantizationError(
            f"unknown on_error policy {on_error!r}; use one of {ON_ERROR_POLICIES}"
        )
    return on_error


def default_layer_timeout() -> float | None:
    """Per-layer deadline from ``REPRO_LAYER_TIMEOUT`` (default: disabled)."""
    raw = os.environ.get(LAYER_TIMEOUT_ENV)
    if not raw:
        return None
    try:
        seconds = float(raw)
    except ValueError:
        raise QuantizationError(
            f"{LAYER_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    return resolve_layer_timeout(seconds)


def resolve_layer_timeout(layer_timeout: float | None) -> float | None:
    """Normalize a ``layer_timeout`` argument; None defers to the environment."""
    if layer_timeout is None:
        return default_layer_timeout()
    if isinstance(layer_timeout, bool) or not isinstance(layer_timeout, (int, float)):
        raise QuantizationError(
            f"layer_timeout must be a number of seconds or None, got {layer_timeout!r}"
        )
    if not layer_timeout > 0:
        raise QuantizationError(
            f"layer_timeout must be > 0 (omit it to disable), got {layer_timeout}"
        )
    return float(layer_timeout)


def default_transient_retries() -> int:
    """Transient retry budget from ``REPRO_TRANSIENT_RETRIES`` (default 0)."""
    raw = os.environ.get(TRANSIENT_RETRIES_ENV)
    if not raw:
        return 0
    try:
        retries = int(raw)
    except ValueError:
        raise QuantizationError(
            f"{TRANSIENT_RETRIES_ENV} must be an integer, got {raw!r}"
        ) from None
    return resolve_transient_retries(retries)


def resolve_transient_retries(transient_retries: int | None) -> int:
    """Normalize a ``transient_retries`` argument; None defers to the environment."""
    if transient_retries is None:
        return default_transient_retries()
    if isinstance(transient_retries, bool) or not isinstance(transient_retries, int):
        raise QuantizationError(
            f"transient_retries must be an int or None, got {transient_retries!r}"
        )
    if transient_retries < 0:
        raise QuantizationError(
            f"transient_retries must be >= 0, got {transient_retries}"
        )
    return transient_retries


@dataclass(frozen=True)
class LayerOutcome:
    """The final disposition of one job: at most one of the payloads is set.

    Passed to the ``on_layer_complete`` hook the moment the job finishes
    (and collected internally).  ``cancelled`` marks a job that was never
    started because the run was interrupted.
    """

    job: LayerJob
    tensor: GoboQuantizedTensor | None = None
    record: LayerRecord | None = None
    failure: LayerFailure | None = None
    cancelled: bool = False


@dataclass
class JobRunner:
    """Per-job attempt/retry/policy logic, shared by every backend.

    One runner holds everything a single :class:`LayerJob` needs to reach
    its final :class:`LayerOutcome`: the weight state, the quantization
    parameters, the ``on_error`` policy, the per-attempt watchdog deadline
    and the in-place transient-retry loop.  The thread backend constructs
    one per run and calls :meth:`run` from its pool threads; the process
    backend (:mod:`repro.jobs.fleet`) constructs an identical runner inside
    each worker process — so a layer's disposition, and the exact bytes it
    produces, follow the same code path on every backend.

    Fields must be *resolved* concrete values (use :func:`resolve_on_error`
    and friends first); the runner does no environment fallback of its own.
    ``watchdog`` must already be started when ``layer_timeout`` is set.
    """

    state: Mapping[str, np.ndarray]
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD
    method: str = "gobo"
    max_iterations: int = 50
    on_error: str = "fail"
    validation: str = "strict"
    fault_injector: FaultInjector | None = None
    layer_timeout: float | None = None
    transient_retries: int = 0
    transient_backoff: float = DEFAULT_BACKOFF_BASE
    watchdog: Watchdog | None = None
    aux: Mapping[str, np.ndarray] | None = None

    def attempt(
        self, index: int, job: LayerJob, bits: int
    ) -> tuple[GoboQuantizedTensor, LayerRecord]:
        with obs.span("engine.layer", layer=job.name, bits=bits) as layer_span:
            weights = self.state[job.name]
            if self.fault_injector is not None:
                replacement = self.fault_injector(index, job, weights)
                if replacement is not None:
                    weights = replacement
            tensor, result = quantize_tensor(
                weights,
                bits=bits,
                log_prob_threshold=self.log_prob_threshold,
                method=job.method or self.method,
                max_iterations=self.max_iterations,
                validation=self.validation,
                aux=None if self.aux is None else self.aux.get(job.name),
            )
            original_bytes = tensor.total_count * BYTES_PER_FP32
            compressed_bytes = tensor.storage().compressed_bytes
            layer_span.set(
                iterations=result.iterations,
                converged=result.converged,
                outlier_fraction=tensor.outlier_fraction,
                original_bytes=original_bytes,
                compressed_bytes=compressed_bytes,
            )
        record = LayerRecord(
            name=job.name,
            bits=bits,
            seconds=layer_span.duration,
            iterations=result.iterations,
            converged=result.converged,
            outlier_fraction=tensor.outlier_fraction,
            original_bytes=original_bytes,
            compressed_bytes=compressed_bytes,
        )
        return tensor, record

    def attempt_supervised(
        self, index: int, job: LayerJob, bits: int
    ) -> tuple[GoboQuantizedTensor, LayerRecord]:
        """One attempt under a fresh watchdog deadline (when configured)."""
        if self.layer_timeout is None:
            return self.attempt(index, job, bits)
        deadline = Deadline(self.layer_timeout, label=job.name)
        self.watchdog.register(deadline)
        try:
            with deadline_scope(deadline):
                return self.attempt(index, job, bits)
        finally:
            self.watchdog.unregister(deadline)

    def attempt_resilient(
        self, index: int, job: LayerJob, bits: int, retries_used: list[int]
    ) -> tuple[GoboQuantizedTensor, LayerRecord]:
        """Attempt with in-place transient retries before any policy fires."""
        retry = 0
        while True:
            try:
                return self.attempt_supervised(index, job, bits)
            except Exception as exc:  # noqa: BLE001 — classified below
                if retry >= self.transient_retries or not is_transient(exc):
                    raise
                obs.counter(
                    "engine.retry",
                    layer=job.name,
                    bits=bits,
                    attempt=retry + 1,
                    error=type(exc).__name__,
                )
                time.sleep(
                    backoff_delay(
                        retry, base=self.transient_backoff, key=f"{job.name}:{bits}"
                    )
                )
                retries_used[0] += 1
                retry += 1

    def run(self, index: int, job: LayerJob) -> LayerOutcome:
        """Resolve one job to its final outcome under the ``on_error`` policy."""
        attempts = [job.bits]
        retries_used = [0]
        try:
            tensor, record = self.attempt_resilient(index, job, job.bits, retries_used)
            return LayerOutcome(job=job, tensor=tensor, record=record)
        except LayerSkipped as exc:
            # The skip validation policy always ships the layer FP32,
            # independent of on_error.
            return LayerOutcome(
                job=job,
                failure=LayerFailure(
                    name=job.name,
                    bits=job.bits,
                    action="validation-skip",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=tuple(attempts),
                    transient_retries=retries_used[0],
                ),
            )
        except LayerTimeoutError as exc:
            # The layer consumed its whole deadline: resolve it through the
            # on_error policy, but never retry it (in place or wider) — that
            # would stall the run all over again.
            obs.counter("engine.timeout", layer=job.name, bits=job.bits)
            if self.on_error == "fail":
                raise
            resolution = "skip" if self.on_error == "skip" else "fp32-fallback"
            return LayerOutcome(
                job=job,
                failure=LayerFailure(
                    name=job.name,
                    bits=job.bits,
                    action="timeout",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=tuple(attempts),
                    resolution=resolution,
                    transient_retries=retries_used[0],
                ),
            )
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            if self.on_error == "fail":
                raise
            if self.on_error == "retry-higher-bits":
                for retry_bits in range(job.bits + 1, MAX_RETRY_BITS + 1):
                    attempts.append(retry_bits)
                    try:
                        tensor, record = self.attempt_resilient(
                            index, job, retry_bits, retries_used
                        )
                    except LayerTimeoutError:
                        obs.counter("engine.timeout", layer=job.name, bits=retry_bits)
                        break  # widening further would time out again
                    except Exception:  # noqa: BLE001 — keep widening
                        continue
                    return LayerOutcome(
                        job=job,
                        tensor=tensor,
                        record=record,
                        failure=LayerFailure(
                            name=job.name,
                            bits=job.bits,
                            action="retry-higher-bits",
                            error_type=type(exc).__name__,
                            message=str(exc),
                            attempts=tuple(attempts),
                            recovered_bits=retry_bits,
                            transient_retries=retries_used[0],
                        ),
                    )
                action = "fp32-fallback"  # every retry failed
            else:
                action = self.on_error
            return LayerOutcome(
                job=job,
                failure=LayerFailure(
                    name=job.name,
                    bits=job.bits,
                    action=action,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=tuple(attempts),
                    transient_retries=retries_used[0],
                ),
            )


def assemble_outcomes(
    outcomes: Iterable[LayerOutcome], report: QuantizationReport
) -> tuple[dict[str, GoboQuantizedTensor], dict[str, int]]:
    """Fold job-ordered outcomes into ``(quantized, iterations)`` + ``report``.

    Shared by the thread path and the fleet supervisor so both backends
    assemble results — and emit the layer counters — identically.  Must run
    inside the run's obs scope so the counters land in ``report.metrics``.
    """
    quantized: dict[str, GoboQuantizedTensor] = {}
    iterations: dict[str, int] = {}
    for outcome in outcomes:
        if outcome.cancelled:
            report.pending.append(outcome.job.name)
            continue
        if outcome.record is not None and outcome.tensor is not None:
            quantized[outcome.record.name] = outcome.tensor
            iterations[outcome.record.name] = outcome.record.iterations
            report.layers.append(outcome.record)
        if outcome.failure is not None:
            report.failures.append(outcome.failure)
    # A cancellation that arrived after every job had already started
    # drained to a complete run; only unstarted work marks the run
    # interrupted.
    report.interrupted = bool(report.pending)
    obs.counter("engine.layers.quantized", len(report.layers))
    if report.failures:
        obs.counter("engine.layers.degraded", len(report.failures))
    if report.pending:
        obs.counter("engine.layers.cancelled", len(report.pending))
    return quantized, iterations


def quantize_layers(
    state: Mapping[str, np.ndarray],
    jobs: Iterable[LayerJob],
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    method: str = "gobo",
    max_iterations: int = 50,
    workers: int | None = 1,
    on_error: str | None = "fail",
    validation: str = "strict",
    fault_injector: FaultInjector | None = None,
    layer_timeout: float | None = None,
    transient_retries: int | None = None,
    transient_backoff: float = DEFAULT_BACKOFF_BASE,
    cancel: "threading.Event | None" = None,
    on_layer_complete: "Callable[[LayerOutcome], None] | None" = None,
    backend: str | None = None,
    aux: Mapping[str, np.ndarray] | None = None,
) -> tuple[dict[str, GoboQuantizedTensor], dict[str, int], QuantizationReport]:
    """Quantize every job's tensor, optionally fanning out over threads.

    Results are keyed in job order regardless of completion order, and each
    job is an independent pure computation, so the output is bit-for-bit
    identical for every worker count — including runs where some layers fail
    and a degradation policy applies (see module docstring for ``on_error``
    and :mod:`repro.core.validate` for ``validation``).  ``fault_injector``
    is the deterministic test hook used by :mod:`repro.testing.faults`.

    Supervision knobs (see module docstring): ``layer_timeout`` arms a
    watchdog deadline per attempt, ``transient_retries`` retries transient
    errors in place with ``transient_backoff``-based exponential backoff,
    ``cancel`` drains the run leaving unstarted jobs in ``report.pending``,
    and ``on_layer_complete`` receives each job's final
    :class:`LayerOutcome` as it finishes (calls are serialized; an exception
    from the hook aborts the run — durable storage failing is fatal).

    ``backend`` selects the fan-out mechanism: ``"thread"`` (default) runs
    jobs on a :class:`ThreadPoolExecutor` in this process; ``"process"``
    delegates to the supervised worker fleet
    (:func:`repro.jobs.fleet.run_fleet_layers`) for crash isolation.  Both
    produce bit-identical archives; ``None`` consults ``REPRO_BACKEND``.

    ``aux`` maps layer names to per-layer side data handed to the tensor
    method (e.g. GWQ's precomputed saliency outlier masks); layers without
    an entry receive ``None``.  Both backends deliver it identically.

    Returns ``(quantized, iterations, report)``; failed layers appear in
    ``report.failures`` instead of ``quantized``.
    """
    jobs = list(jobs)
    missing = [job.name for job in jobs if job.name not in state]
    if missing:
        raise QuantizationError(f"state dict is missing tensors: {missing}")
    if resolve_backend(backend) == "process":
        if fault_injector is not None:
            raise QuantizationError(
                "fault_injector objects cannot cross process boundaries; "
                "export a REPRO_FAULTS spec instead (see repro.testing.faults)"
            )
        # Lazy import: the fleet lives in the jobs subsystem and pulls in
        # multiprocessing machinery the thread path never needs.
        from repro.jobs.fleet import run_fleet_layers

        return run_fleet_layers(
            state,
            jobs,
            log_prob_threshold=log_prob_threshold,
            method=method,
            max_iterations=max_iterations,
            workers=workers,
            on_error=on_error,
            validation=validation,
            layer_timeout=layer_timeout,
            transient_retries=transient_retries,
            transient_backoff=transient_backoff,
            cancel=cancel,
            on_layer_complete=on_layer_complete,
            aux=aux,
        )
    workers = resolve_workers(workers)
    on_error = resolve_on_error(on_error)
    layer_timeout = resolve_layer_timeout(layer_timeout)
    transient_retries = resolve_transient_retries(transient_retries)
    watchdog = (
        Watchdog(poll_interval=min(0.02, layer_timeout / 5))
        if layer_timeout is not None
        else None
    )
    hook_lock = threading.Lock()
    runner = JobRunner(
        state=state,
        log_prob_threshold=log_prob_threshold,
        method=method,
        max_iterations=max_iterations,
        on_error=on_error,
        validation=validation,
        fault_injector=fault_injector,
        layer_timeout=layer_timeout,
        transient_retries=transient_retries,
        transient_backoff=transient_backoff,
        watchdog=watchdog,
        aux=aux,
    )

    indexed = list(enumerate(jobs))
    with obs.scope() as scoped:
        # The workers gauge is the one event whose payload legitimately
        # differs between otherwise identical runs at different worker
        # counts; determinism comparisons exclude it by name (DESIGN §5c).
        obs.gauge("engine.workers", workers)
        obs.gauge("engine.queue.jobs", len(jobs))
        if watchdog is not None:
            watchdog.start()
        try:
            with obs.span("engine.run") as engine_span:
                # Worker threads re-attach the submitting thread's span
                # context, so layer spans nest under engine.run at any
                # worker count.
                context = obs.capture_context()

                def run_in_context(item: tuple[int, LayerJob]) -> LayerOutcome:
                    with obs.use_context(context):
                        if cancel is not None and cancel.is_set():
                            return LayerOutcome(job=item[1], cancelled=True)
                        outcome = runner.run(*item)
                        if on_layer_complete is not None:
                            with hook_lock:
                                on_layer_complete(outcome)
                        return outcome

                if workers == 1 or len(jobs) <= 1:
                    outcomes = [run_in_context(item) for item in indexed]
                else:
                    with ThreadPoolExecutor(
                        max_workers=min(workers, len(jobs))
                    ) as pool:
                        outcomes = list(pool.map(run_in_context, indexed))
        finally:
            if watchdog is not None:
                watchdog.stop()

        report = QuantizationReport(
            workers=workers,
            wall_seconds=engine_span.duration,
            on_error=on_error,
            layer_timeout=layer_timeout,
        )
        quantized, iterations = assemble_outcomes(outcomes, report)
    report.metrics = scoped.snapshot()
    return quantized, iterations, report
