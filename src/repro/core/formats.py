"""Storage-format accounting: how many bytes a GOBO-compressed layer costs.

The paper quotes two kinds of ratio:

* the **potential compression ratio** ``32 / bits`` (Table IV's right column:
  10.67x for 3 bits, 8x for 4 bits), which ignores outliers and the
  centroid table, and
* **measured model ratios** (e.g. 9.83x in Table III) that include every
  overhead: FP32 outlier values, outlier positions, and the per-layer
  reconstruction table.

:func:`storage_report` computes the byte-accurate version; the
``compression_curve`` helper regenerates the compression-ratio-vs-dictionary-
size figure (ratio approaches ``32/bits`` as more weights share one table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitpack import packed_nbytes

BYTES_PER_FP32 = 4
BYTES_PER_POSITION = 4  # flat index of an outlier, stored as uint32


@dataclass(frozen=True)
class StorageReport:
    """Byte breakdown of one GOBO-compressed tensor."""

    total_weights: int
    outliers: int
    bits: int
    code_bytes: int
    outlier_value_bytes: int
    outlier_position_bytes: int
    table_bytes: int

    @property
    def gaussian_weights(self) -> int:
        return self.total_weights - self.outliers

    @property
    def compressed_bytes(self) -> int:
        return (
            self.code_bytes
            + self.outlier_value_bytes
            + self.outlier_position_bytes
            + self.table_bytes
        )

    @property
    def original_bytes(self) -> int:
        return self.total_weights * BYTES_PER_FP32

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def effective_bits_per_weight(self) -> float:
        if self.total_weights == 0:
            return 0.0
        return 8.0 * self.compressed_bytes / self.total_weights


def potential_compression_ratio(bits: int) -> float:
    """The paper's 'Potential Comp. Ratio' column: FP32 over ``bits``."""
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    return 32.0 / bits


def storage_report(total_weights: int, outliers: int, bits: int) -> StorageReport:
    """Byte-accurate storage cost of a tensor under GOBO's format."""
    if total_weights < 0 or outliers < 0 or outliers > total_weights:
        raise ValueError(
            f"invalid counts: total={total_weights}, outliers={outliers}"
        )
    # GOBO proper uses 1-8 bits; group-table encodings (qbert-group) pack
    # wider global code spaces, up to the bitpack limit.
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    gaussian = total_weights - outliers
    return StorageReport(
        total_weights=total_weights,
        outliers=outliers,
        bits=bits,
        code_bytes=packed_nbytes(gaussian, bits),
        outlier_value_bytes=outliers * BYTES_PER_FP32,
        outlier_position_bytes=outliers * BYTES_PER_POSITION,
        table_bytes=(1 << bits) * BYTES_PER_FP32,
    )


def compression_curve(
    bits: int,
    weight_counts: list[int],
    outlier_fraction: float = 0.0,
) -> list[tuple[int, float]]:
    """Compression ratio vs number of weights sharing one dictionary.

    Reproduces the paper's compression-ratio figure: for tiny groups the
    ``2^bits`` FP32 reconstruction table dominates and the ratio is poor; as
    the group grows the ratio asymptotes to ``32 / bits``.  This is exactly
    the argument for GOBO's single-table-per-layer design over Q-BERT's 128
    groups per layer.
    """
    points = []
    for count in weight_counts:
        outliers = int(round(count * outlier_fraction))
        report = storage_report(count, min(outliers, count), bits)
        points.append((count, report.compression_ratio))
    return points
