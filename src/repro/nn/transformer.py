"""The BERT encoder layer (Figure 1a): Attention, Intermediate, Output.

Per Table I of the paper, one BERT layer contributes six FC layers:
four ``hidden x hidden`` in attention, one ``hidden x intermediate``
(Intermediate) and one ``intermediate x hidden`` (Output).  Each component
ends with a residual connection and layer normalization.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import derive_rng


class BertEncoderLayer(Module):
    """One transformer encoder block with BERT's post-layer-norm layout."""

    def __init__(
        self,
        hidden_size: int,
        intermediate_size: int,
        num_heads: int,
        dropout_rate: float = 0.0,
        rng: int | np.random.Generator | None = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        self.attention = MultiHeadSelfAttention(
            hidden_size, num_heads, dropout_rate,
            rng=derive_rng(rng, "attention"), init_std=init_std,
        )
        self.attention_norm = LayerNorm(hidden_size)
        self.intermediate = Linear(
            hidden_size, intermediate_size,
            rng=derive_rng(rng, "intermediate"), init_std=init_std,
        )
        self.output = Linear(
            intermediate_size, hidden_size,
            rng=derive_rng(rng, "output"), init_std=init_std,
        )
        self.output_norm = LayerNorm(hidden_size)
        self.dropout = Dropout(dropout_rate, rng=derive_rng(rng, "dropout"))

    def forward(self, hidden: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        attended = self.attention(hidden, attention_mask)
        attended = self.dropout(attended)
        hidden = self.attention_norm(hidden + attended)

        transformed = self.output(F.gelu(self.intermediate(hidden)))
        transformed = self.dropout(transformed)
        return self.output_norm(hidden + transformed)
