"""Inference-time Linear that computes on the compressed representation.

:class:`QuantizedLinear` is the module-level face of :mod:`repro.kernels`:
it wraps one :class:`~repro.core.quantizer.GoboQuantizedTensor` and routes
the forward pass through a prepared :class:`~repro.kernels.LookupKernel`,
so ``y = x W^T + b`` runs without ever materializing the FP32 weight
matrix.  The bias (which GOBO leaves FP32) stays a plain
:class:`~repro.nn.module.Parameter`.

It is deliberately inference-only: GOBO quantizes *trained* models, and the
paper's latency/energy numbers are for serving.  Calling it in training
mode raises instead of silently detaching the graph.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantizer import GoboQuantizedTensor
from repro.errors import ShapeError
from repro.kernels import LookupKernel
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class QuantizedLinear(Module):
    """``y = x W^T + b`` where ``W`` stays in GOBO's compressed form.

    Parameters
    ----------
    tensor:
        The quantized weight, shape ``(out_features, in_features)`` — the
        same layout as :class:`repro.nn.Linear.weight`.
    bias:
        FP32 bias vector of length ``out_features``; zeros when omitted.

    The compressed tensor is not a :class:`Parameter` (it is not trainable
    and must not be decoded into a state dict); only the bias is registered,
    so ``named_parameters`` reflects exactly what remains FP32.
    """

    def __init__(
        self, tensor: GoboQuantizedTensor, bias: np.ndarray | None = None
    ) -> None:
        super().__init__()
        if len(tensor.shape) != 2:
            raise ShapeError(
                f"QuantizedLinear requires a 2-D weight tensor, got shape {tensor.shape}"
            )
        self.out_features, self.in_features = tensor.shape
        self.tensor = tensor
        self.kernel = LookupKernel(tensor)
        if bias is None:
            bias = np.zeros(self.out_features, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if bias.shape != (self.out_features,):
            raise ShapeError(
                f"QuantizedLinear bias must have shape ({self.out_features},), "
                f"got {bias.shape}"
            )
        self.bias = Parameter(bias)
        self.training = False

    @classmethod
    def from_linear(cls, linear: Module, tensor: GoboQuantizedTensor) -> "QuantizedLinear":
        """Build from an existing :class:`~repro.nn.Linear`, keeping its bias.

        A bias-free layer (``linear.bias is None``, as in some projection
        heads) falls back to the zero bias the constructor supplies.
        """
        if tuple(tensor.shape) != tuple(linear.weight.shape):
            raise ShapeError(
                f"quantized tensor shape {tensor.shape} does not match "
                f"Linear weight shape {tuple(linear.weight.shape)}"
            )
        bias = getattr(linear, "bias", None)
        return cls(tensor, bias=None if bias is None else bias.data.copy())

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            raise RuntimeError(
                "QuantizedLinear is inference-only (GOBO quantizes trained "
                "models); call model.eval() before the forward pass"
            )
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        return Tensor(self.kernel.matmul(data) + self.bias.data)

    def compression_ratio(self) -> float:
        return self.tensor.compression_ratio()
