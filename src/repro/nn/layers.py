"""Core layers: Linear (the FC layers GOBO quantizes), Embedding, LayerNorm,
Dropout."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``.

    The weight is stored as ``(out_features, in_features)`` — the HuggingFace
    convention GOBO's per-layer quantization operates on.

    ``activation_quantizer`` is an optional inference-time hook (an
    ``array -> array`` function applied to the input values before the
    matmul) used by the Q8BERT baseline to emulate 8-bit activations; it is
    ``None`` by default and never active in training mode.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: int | np.random.Generator | None = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError(f"invalid Linear dims ({in_features}, {out_features})")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.normal((out_features, in_features), std=init_std, rng=rng))
        self.bias = Parameter(init.zeros((out_features,)))
        self.activation_quantizer = None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        if self.activation_quantizer is not None and not self.training:
            x = Tensor(self.activation_quantizer(x.data))
        return x.matmul(self.weight.swapaxes(0, 1)) + self.bias


class Embedding(Module):
    """Lookup table of ``num_embeddings`` vectors of width ``embedding_dim``."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: int | np.random.Generator | None = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ShapeError(f"invalid Embedding dims ({num_embeddings}, {embedding_dim})")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=init_std, rng=rng))

    def forward(self, ids: np.ndarray) -> Tensor:
        return F.embedding_lookup(self.weight, ids)


class LayerNorm(Module):
    """Layer normalization with learnable affine parameters."""

    def __init__(self, normalized_dim: int, eps: float = 1e-12) -> None:
        super().__init__()
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_dim,)))
        self.bias = Parameter(init.zeros((normalized_dim,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, rate: float, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = ensure_rng(rng if rng is not None else 0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, training=self.training)
