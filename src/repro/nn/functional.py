"""Composite differentiable operations used by the transformer models."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ShapeError
from repro.nn.tensor import Tensor

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    out = x._make_child(np.maximum(x.data, 0.0), (x,))

    def backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * (x.data > 0.0))

    out._backward = backward
    return out


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as in the BERT release)."""
    inner = _SQRT_2_OVER_PI * (x.data + 0.044715 * x.data**3)
    t = np.tanh(inner)
    out = x._make_child(0.5 * x.data * (1.0 + t), (x,))

    def backward() -> None:
        if not x.requires_grad:
            return
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x.data**2)
        grad = 0.5 * (1.0 + t) + 0.5 * x.data * (1.0 - t**2) * d_inner
        x._accumulate(out.grad * grad)

    out._backward = backward
    return out


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    s = 1.0 / (1.0 + np.exp(-x.data))
    out = x._make_child(s, (x,))

    def backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * s * (1.0 - s))

    out._backward = backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=axis, keepdims=True)
    out = x._make_child(probs, (x,))

    def backward() -> None:
        if not x.requires_grad:
            return
        dot = (out.grad * probs).sum(axis=axis, keepdims=True)
        x._accumulate(probs * (out.grad - dot))

    out._backward = backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = x._make_child(log_probs, (x,))

    def backward() -> None:
        if not x.requires_grad:
            return
        probs = np.exp(log_probs)
        x._accumulate(out.grad - probs * out.grad.sum(axis=axis, keepdims=True))

    out._backward = backward
    return out


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-12) -> Tensor:
    """Layer normalization over the last axis (BERT uses ``eps=1e-12``)."""
    if weight.shape != (x.shape[-1],) or bias.shape != (x.shape[-1],):
        raise ShapeError(
            f"layer_norm params must match last dim {x.shape[-1]}, "
            f"got weight {weight.shape}, bias {bias.shape}"
        )
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mu) * inv_std
    out = x._make_child(x_hat * weight.data + bias.data, (x, weight, bias))

    def backward() -> None:
        grad = out.grad
        if weight.requires_grad:
            weight._accumulate((grad * x_hat).reshape(-1, x.shape[-1]).sum(axis=0))
        if bias.requires_grad:
            bias._accumulate(grad.reshape(-1, x.shape[-1]).sum(axis=0))
        if x.requires_grad:
            n = x.shape[-1]
            g = grad * weight.data
            term1 = g
            term2 = g.mean(axis=-1, keepdims=True)
            term3 = x_hat * (g * x_hat).mean(axis=-1, keepdims=True)
            x._accumulate(inv_std * (term1 - term2 - term3))

    out._backward = backward
    return out


def embedding_lookup(table: Tensor, ids: np.ndarray) -> Tensor:
    """Gather rows of ``table`` by integer ``ids`` (any shape of ids)."""
    ids = np.asarray(ids)
    if not np.issubdtype(ids.dtype, np.integer):
        raise TypeError(f"embedding ids must be integers, got {ids.dtype}")
    if ids.size and (ids.min() < 0 or ids.max() >= table.shape[0]):
        raise IndexError(
            f"embedding ids out of range [0, {table.shape[0]}): "
            f"min={ids.min()}, max={ids.max()}"
        )
    out = table._make_child(table.data[ids], (table,))

    def backward() -> None:
        if table.requires_grad:
            grad = np.zeros_like(table.data)
            np.add.at(grad, ids.ravel(), out.grad.reshape(-1, table.shape[-1]))
            table._accumulate(grad)

    out._backward = backward
    return out


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: identity when ``training`` is False or ``rate`` is 0."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep) / keep
    out = x._make_child(x.data * mask, (x,))

    def backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * mask)

    out._backward = backward
    return out


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Set positions where ``mask`` is True to ``value`` (no grad through them)."""
    mask = np.asarray(mask, dtype=bool)
    data = np.where(mask, value, x.data)
    out = x._make_child(data, (x,))

    def backward() -> None:
        if x.requires_grad:
            x._accumulate(np.where(mask, 0.0, out.grad))

    out._backward = backward
    return out
