"""Weight initializers.

BERT initializes weights from a truncated normal with std 0.02; the same
scheme is used here so that tiny trained models and synthetic full-scale
weight sets share the distribution shape the paper observes (Figure 1b).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def truncated_normal(
    shape: tuple[int, ...],
    std: float = 0.02,
    mean: float = 0.0,
    rng: int | np.random.Generator | None = None,
    truncation: float = 2.0,
) -> np.ndarray:
    """Normal samples re-drawn until they fall within ``truncation`` sigmas."""
    gen = ensure_rng(rng)
    samples = gen.normal(mean, std, size=shape)
    limit = truncation * std
    out_of_range = np.abs(samples - mean) > limit
    while out_of_range.any():
        samples[out_of_range] = gen.normal(mean, std, size=int(out_of_range.sum()))
        out_of_range = np.abs(samples - mean) > limit
    return samples


def normal(
    shape: tuple[int, ...],
    std: float = 0.02,
    mean: float = 0.0,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Plain normal initialization."""
    return ensure_rng(rng).normal(mean, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
