"""``Module``/``Parameter`` abstractions, mirroring the PyTorch conventions
the original GOBO implementation was built against.

A :class:`Module` owns named :class:`Parameter` tensors and child modules, and
exposes ``named_parameters`` with dotted paths (``encoder.layer.0.attention.
query.weight``).  The quantizers operate on that flat named view, exactly the
way GOBO operates on a HuggingFace ``state_dict``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for all network components."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # ----------------------------------------------------------- registration
    def __setattr__(self, key: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (for list-like containers)."""
        self._modules[name] = module

    # -------------------------------------------------------------- traversal
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """All parameters with dotted path names, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------ state dicts
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict` (strict)."""
        params = dict(self.named_parameters())
        missing = sorted(set(params) - set(state))
        unexpected = sorted(set(state) - set(params))
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={missing}, unexpected={unexpected}")
        for name, value in state.items():
            param = params[name]
            value = np.asarray(value, dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ modes
    def train(self) -> "Module":
        """Enable training mode (dropout active) for self and children."""
        for _, module in self.named_modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Enable inference mode (dropout disabled) for self and children."""
        for _, module in self.named_modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def named_gradients(self) -> dict[str, np.ndarray]:
        """Gradient arrays keyed by dotted path, after a ``backward`` call.

        Parameters the backward pass never reached report zeros (their
        sensitivity really is zero for that loss), so consumers like GWQ's
        saliency ranking can treat the result as a dense gradient view of
        :meth:`state_dict`.
        """
        return {
            name: (
                np.zeros_like(param.data)
                if param.grad is None
                else np.array(param.grad, dtype=np.float64, copy=True)
            )
            for name, param in self.named_parameters()
        }

    # ------------------------------------------------------------------- call
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of child modules."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._order: list[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]
