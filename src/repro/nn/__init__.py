"""NumPy deep-learning substrate: autograd tensors, layers, attention."""

from repro.nn import functional
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.qlinear import QuantizedLinear
from repro.nn.tensor import Tensor, as_tensor, concat, stack
from repro.nn.transformer import BertEncoderLayer

__all__ = [
    "BertEncoderLayer",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "ModuleList",
    "MultiHeadSelfAttention",
    "Parameter",
    "QuantizedLinear",
    "Tensor",
    "as_tensor",
    "concat",
    "functional",
    "stack",
]
