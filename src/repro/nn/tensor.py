"""A minimal reverse-mode autograd engine over NumPy arrays.

This is the substrate that replaces PyTorch in this reproduction: enough of a
tensor library to express BERT's forward pass (matmul, layernorm, softmax,
GELU, embedding lookup) and to backpropagate through it so that the small
evaluation models can be fine-tuned on the synthetic tasks.

Design notes
------------
* ``Tensor`` wraps a ``float64`` (default) NumPy array plus an optional
  gradient and a backward closure.  The graph is a classic tape: each op
  records its parents and how to push gradients to them.
* Broadcasting follows NumPy semantics; gradients of broadcast operands are
  reduced back to the operand's shape by :func:`_unbroadcast`.
* Only ops needed by the models are implemented — this is a substrate, not a
  framework.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.errors import ShapeError

Array = np.ndarray


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: Array | float | int | list,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Array | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._parents: tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ basics
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> Array:
        """The underlying array (not a copy; treat as read-only)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ShapeError(f"item() requires a scalar tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # --------------------------------------------------------------- graph ops
    def _make_child(self, data: Array, parents: Iterable["Tensor"]) -> "Tensor":
        parents = tuple(parents)
        child = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if child.requires_grad:
            child._parents = parents
        return child

    def _accumulate(self, grad: Array) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Array | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ShapeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        # Topological order via iterative DFS (deep graphs would overflow
        # Python's recursion limit for large encoder stacks).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.broadcast_to(grad, self.data.shape))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data + other.data, (self, other))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        out._backward = backward
        return out

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data * other.data, (self, other))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data / other.data, (self, other))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-out.grad * self.data / (other.data**2), other.shape)
                )

        out._backward = backward
        return out

    def __rtruediv__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_child(self.data**exponent, (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = backward
        return out

    # ------------------------------------------------------------ linear algebra
    def matmul(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data @ other.data, (self, other))

        def backward() -> None:
            if self.requires_grad:
                grad = out.grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                grad = np.swapaxes(self.data, -1, -2) @ out.grad
                other._accumulate(_unbroadcast(grad, other.shape))

        out._backward = backward
        return out

    __matmul__ = matmul

    # -------------------------------------------------------------- reductions
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))

        def backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        out._backward = backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=True)
        out = self._make_child(data if keepdims else np.squeeze(data, axis=axis), (self,))

        def backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad if keepdims else np.expand_dims(out.grad, axis)
            mask = self.data == data
            # Split the gradient among ties, matching the subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * grad / counts)

        out._backward = backward
        return out

    # ----------------------------------------------------------- shape plumbing
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.data.shape))

        out._backward = backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out = self._make_child(self.data.transpose(axes), (self,))
        inverse = tuple(np.argsort(axes))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out._backward = backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out = self._make_child(np.swapaxes(self.data, a, b), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(out.grad, a, b))

        out._backward = backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,))

        def backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out._backward = backward
        return out

    # ---------------------------------------------------------- element-wise ops
    def exp(self) -> "Tensor":
        out = self._make_child(np.exp(self.data), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        out = self._make_child(np.tanh(self.data), (self,))

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data**2))

        out._backward = backward
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5


def as_tensor(value: "Tensor | Array | float | int | list") -> Tensor:
    """Coerce plain values to (non-differentiable) tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    if not tensors:
        raise ShapeError("concat requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward() -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * data.ndim
                index[axis] = slice(int(start), int(stop))
                tensor._accumulate(out.grad[tuple(index)])

    out._backward = backward
    return out


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    if not tensors:
        raise ShapeError("stack requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors)

    def backward() -> None:
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(grad, axis=axis))

    out._backward = backward
    return out
