"""Multi-head self-attention, matching the BERT layer layout (Figure 1a).

The attention component contains exactly the four FC layers the paper's
Table I counts: Query, Key, Value projections and the self-attention Output
projection, each ``hidden x hidden``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import derive_rng


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads."""

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        dropout_rate: float = 0.0,
        rng: int | np.random.Generator | None = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        if hidden_size % num_heads != 0:
            raise ConfigError(
                f"hidden_size {hidden_size} is not divisible by num_heads {num_heads}"
            )
        self.hidden_size = hidden_size
        self.num_heads = num_heads
        self.head_dim = hidden_size // num_heads
        self.query = Linear(hidden_size, hidden_size, rng=derive_rng(rng, "query"), init_std=init_std)
        self.key = Linear(hidden_size, hidden_size, rng=derive_rng(rng, "key"), init_std=init_std)
        self.value = Linear(hidden_size, hidden_size, rng=derive_rng(rng, "value"), init_std=init_std)
        self.output = Linear(hidden_size, hidden_size, rng=derive_rng(rng, "output"), init_std=init_std)
        self.dropout = Dropout(dropout_rate, rng=derive_rng(rng, "dropout"))

    def _split_heads(self, x: Tensor) -> Tensor:
        """(batch, seq, hidden) -> (batch, heads, seq, head_dim)."""
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        """(batch, heads, seq, head_dim) -> (batch, seq, hidden)."""
        batch, _, seq, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.hidden_size)

    def forward(self, hidden: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        """Apply self-attention.

        Parameters
        ----------
        hidden:
            ``(batch, seq, hidden)`` input states.
        attention_mask:
            Optional ``(batch, seq)`` array; positions with value 0 are
            padding and receive no attention.
        """
        if hidden.ndim != 3 or hidden.shape[-1] != self.hidden_size:
            raise ShapeError(f"expected (batch, seq, {self.hidden_size}), got {hidden.shape}")
        q = self._split_heads(self.query(hidden))
        k = self._split_heads(self.key(hidden))
        v = self._split_heads(self.value(hidden))

        scores = q.matmul(k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.head_dim))
        if attention_mask is not None:
            mask = np.asarray(attention_mask)
            if mask.shape != hidden.shape[:2]:
                raise ShapeError(
                    f"attention_mask shape {mask.shape} does not match batch/seq "
                    f"{hidden.shape[:2]}"
                )
            blocked = (mask == 0)[:, None, None, :]
            scores = F.masked_fill(scores, np.broadcast_to(blocked, scores.shape), -1e9)
        probs = F.softmax(scores, axis=-1)
        probs = self.dropout(probs)
        context = self._merge_heads(probs.matmul(v))
        return self.output(context)
