"""Registry of the quantization methods the Table III comparison covers."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.quant.gobo_adapter import GoboModelQuantizer
from repro.quant.q8bert import Q8BertQuantizer
from repro.quant.qbert import QBertQuantizer


def build_quantizer(spec: str):
    """Build a model quantizer from a short spec string.

    Specs mirror the paper's Table III rows::

        q8bert            8-bit fixed point, 8-bit embeddings
        qbert-3bit        Q-BERT-like, 3-bit weights, 8-bit embeddings
        qbert-4bit        Q-BERT-like, 4-bit weights, 8-bit embeddings
        gobo-3bit         GOBO, 3-bit weights, 4-bit embeddings
        gobo-4bit         GOBO, 4-bit weights, 4-bit embeddings
    """
    if spec == "q8bert":
        return Q8BertQuantizer()
    if spec.startswith("qbert-") and spec.endswith("bit"):
        bits = _parse_bits(spec, "qbert-")
        return QBertQuantizer(weight_bits=bits)
    if spec.startswith("gobo-") and spec.endswith("bit"):
        bits = _parse_bits(spec, "gobo-")
        return GoboModelQuantizer(weight_bits=bits, embedding_bits=4)
    raise ConfigError(f"unknown quantizer spec {spec!r}")


def _parse_bits(spec: str, prefix: str) -> int:
    digits = spec[len(prefix) : -len("bit")]
    try:
        bits = int(digits)
    except ValueError:
        raise ConfigError(f"cannot parse bits from {spec!r}") from None
    if not 1 <= bits <= 8:
        raise ConfigError(f"bits must be in [1, 8], got {bits} in {spec!r}")
    return bits


TABLE3_SPECS = ("q8bert", "qbert-3bit", "qbert-4bit", "gobo-3bit", "gobo-4bit")
