"""Plug-in registry mapping method spec strings to configured quantizers.

A *spec* is ``family[-option...]`` — a family name followed by dash-separated
option tokens, each a value with a suffix declared by the family's grammar
(``gobo-3bit``, ``gwq-4bit-2pct``, ``mixed-12pct``).  Families are
registered with :func:`register`; the CLI (``repro quantize --method SPEC``),
the Table III harness and the cross-method contract suite all enumerate
:func:`available_specs`, so a method registered here is automatically
benchmarked, tested and servable.

Registration is strict: duplicate family names raise
:class:`~repro.errors.ConfigError` rather than silently overwriting — specs
are part of the reproducibility contract (they select archive bytes, and
travel into job fingerprints via the CLI's ``--method``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError

_FAMILY_NAME = re.compile(r"^[a-z0-9_]+$")


@dataclass(frozen=True)
class MethodOption:
    """One option in a family's spec grammar, e.g. ``<n>bit``.

    ``key`` is the factory keyword argument; ``suffix`` tags the token in
    the spec string.  Values are integers unless ``integer=False`` (floats
    like ``mixed-12.5pct``).  Bounds are inclusive.
    """

    key: str
    suffix: str
    default: float | int
    minimum: float | int
    maximum: float | int
    integer: bool = True

    def parse(self, text: str, spec: str) -> float | int:
        try:
            value = int(text) if self.integer else float(text)
        except ValueError:
            kind = "an integer" if self.integer else "a number"
            raise ConfigError(
                f"option {text + self.suffix!r} in {spec!r} needs {kind} "
                f"before {self.suffix!r}{_spec_help()}"
            ) from None
        if not self.minimum <= value <= self.maximum:
            raise ConfigError(
                f"{self.key} must be in [{self.minimum:g}, {self.maximum:g}], "
                f"got {value:g} in {spec!r}{_spec_help()}"
            )
        return value


@dataclass(frozen=True)
class MethodFamily:
    """A registered quantization method family and its option grammar."""

    name: str
    factory: Callable[..., object]
    description: str
    options: tuple[MethodOption, ...] = ()
    canonical_specs: tuple[str, ...] = field(default=())

    def grammar(self) -> str:
        if not self.options:
            return self.name
        tokens = "".join(f"[-<{opt.key}>{opt.suffix}]" for opt in self.options)
        return f"{self.name}{tokens}"


_FAMILIES: dict[str, MethodFamily] = {}


def register(family: MethodFamily) -> None:
    """Register a method family.  Duplicate names raise ``ConfigError``."""
    if not _FAMILY_NAME.match(family.name):
        raise ConfigError(
            f"family name {family.name!r} must match {_FAMILY_NAME.pattern} "
            "(dashes separate options in specs)"
        )
    if family.name in _FAMILIES:
        raise ConfigError(f"method family {family.name!r} is already registered")
    suffixes = [opt.suffix for opt in family.options]
    if len(set(suffixes)) != len(suffixes):
        raise ConfigError(f"family {family.name!r} declares duplicate option suffixes")
    _FAMILIES[family.name] = family


def unregister(name: str) -> None:
    """Remove a registered family (test cleanup helper)."""
    _FAMILIES.pop(name, None)


def available_specs() -> tuple[str, ...]:
    """Every canonical spec, in family registration order.

    The cross-method contract suite parametrizes over this list; the Table
    III zoo comparison and ``repro quantize --method help`` enumerate it.
    """
    specs: list[str] = []
    for family in _FAMILIES.values():
        specs.extend(family.canonical_specs)
    return tuple(specs)


def describe_specs() -> str:
    """Human-readable spec grammar for ``--method help`` and error text."""
    lines = ["Available quantization method specs:"]
    for family in _FAMILIES.values():
        lines.append(f"  {family.grammar()}")
        lines.append(f"      {family.description}")
        if family.canonical_specs:
            lines.append(f"      e.g. {', '.join(family.canonical_specs)}")
    return "\n".join(lines)


def _spec_help() -> str:
    return f"; available specs: {', '.join(available_specs())}"


def parse_spec(spec: str) -> tuple[MethodFamily, dict[str, float | int]]:
    """Parse ``spec`` into its family and fully defaulted option values."""
    if not spec:
        raise ConfigError(f"empty method spec{_spec_help()}")
    head, _, rest = spec.partition("-")
    family = _FAMILIES.get(head)
    if family is None:
        raise ConfigError(f"unknown method family in {spec!r}{_spec_help()}")
    values: dict[str, float | int] = {opt.key: opt.default for opt in family.options}
    seen: set[str] = set()
    for token in rest.split("-") if rest else []:
        if not token:
            raise ConfigError(f"malformed spec {spec!r}: empty option token{_spec_help()}")
        for option in family.options:
            if token.endswith(option.suffix) and len(token) > len(option.suffix):
                if option.key in seen:
                    raise ConfigError(
                        f"duplicate {option.key} option in {spec!r}{_spec_help()}"
                    )
                seen.add(option.key)
                values[option.key] = option.parse(token[: -len(option.suffix)], spec)
                break
        else:
            raise ConfigError(
                f"unrecognized option {token!r} in {spec!r}; "
                f"{head} takes {family.grammar()!r}{_spec_help()}"
            )
    return family, values


def build_quantizer(spec: str):
    """Instantiate the quantizer a spec string describes.

    Raises :class:`~repro.errors.ConfigError` (whose message lists
    :func:`available_specs`) for unknown families, malformed option tokens
    and out-of-range values.
    """
    family, values = parse_spec(spec)
    return family.factory(**values)


# ----------------------------------------------------------- built-in families


def _bits_option(default: int, minimum: int = 1, maximum: int = 8) -> MethodOption:
    return MethodOption(
        key="bits", suffix="bit", default=default, minimum=minimum, maximum=maximum
    )


def _register_builtins() -> None:
    from repro.quant.gobo_adapter import GoboModelQuantizer
    from repro.quant.gwq import GwqQuantizer
    from repro.quant.mixedbits import MixedBitsQuantizer
    from repro.quant.q8bert import Q8BertQuantizer
    from repro.quant.qbert import QBertQuantizer
    from repro.quant.zeroshot import ZeroShotQuantizer

    register(
        MethodFamily(
            name="q8bert",
            factory=lambda: Q8BertQuantizer(),
            description="symmetric 8-bit fixed point, weights + embeddings (Q8BERT)",
            canonical_specs=("q8bert",),
        )
    )
    register(
        MethodFamily(
            name="qbert",
            factory=lambda bits: QBertQuantizer(weight_bits=bits),
            description="group-wise dictionaries (128/layer), 8-bit embeddings (Q-BERT)",
            options=(_bits_option(default=3),),
            canonical_specs=("qbert-3bit", "qbert-4bit"),
        )
    )
    register(
        MethodFamily(
            name="gobo",
            factory=lambda bits: GoboModelQuantizer(weight_bits=bits, embedding_bits=4),
            description="Gaussian outlier split + L1 centroids, 4-bit embeddings (GOBO)",
            options=(_bits_option(default=3),),
            canonical_specs=("gobo-3bit", "gobo-4bit"),
        )
    )
    register(
        MethodFamily(
            name="zeroshot",
            factory=lambda bits: ZeroShotQuantizer(bits=bits),
            description="zero-shot dynamic: uniform grid over mean±3σ, no calibration",
            options=(_bits_option(default=8, minimum=2),),
            canonical_specs=("zeroshot",),
        )
    )
    register(
        MethodFamily(
            name="gwq",
            factory=lambda bits, pct: GwqQuantizer(weight_bits=bits, outlier_pct=pct),
            description="gradient-aware outliers by saliency rank + GOBO centroids (GWQ)",
            options=(
                _bits_option(default=3),
                MethodOption(
                    key="pct",
                    suffix="pct",
                    default=1.0,
                    minimum=0.0,
                    maximum=99.0,
                    integer=False,
                ),
            ),
            canonical_specs=("gwq-3bit", "gwq-4bit"),
        )
    )
    register(
        MethodFamily(
            name="mixed",
            factory=lambda pct: MixedBitsQuantizer(budget_pct=pct),
            description="sensitivity-driven per-layer bit widths under a byte budget",
            options=(
                MethodOption(
                    key="pct",
                    suffix="pct",
                    default=12.0,
                    minimum=1.0,
                    maximum=100.0,
                    integer=False,
                ),
            ),
            canonical_specs=("mixed-12pct",),
        )
    )


_register_builtins()

#: The paper's Table III lineup (kept stable for the pinned benchmarks).
TABLE3_SPECS = ("q8bert", "qbert-3bit", "qbert-4bit", "gobo-3bit", "gobo-4bit")
