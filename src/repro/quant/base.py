"""Common interface for whole-model weight quantizers.

Every baseline (and GOBO itself, via an adapter) exposes the same contract:
``compress(state_dict, fc_names, embedding_names)`` returns a
:class:`CompressedModel` that can report its compressed byte size and
reconstruct an FP32 state dict.  The Table III comparison iterates over this
interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

BYTES_PER_FP32 = 4


@dataclass(frozen=True)
class CompressedTensor:
    """One tensor's compressed form: reconstructed values + byte cost.

    Baselines differ wildly in storage layout; for comparison purposes each
    reports the reconstructed FP32 array (to evaluate accuracy) and its
    compressed size in bytes (to evaluate compression ratio).
    """

    reconstructed: np.ndarray
    compressed_bytes: int

    @property
    def original_bytes(self) -> int:
        return int(self.reconstructed.size) * BYTES_PER_FP32


@dataclass
class CompressedModel:
    """A model compressed by one method: per-tensor results + passthrough."""

    method: str
    tensors: dict[str, CompressedTensor]
    fp32: dict[str, np.ndarray]

    def state_dict(self) -> dict[str, np.ndarray]:
        """Reconstructed FP32 state dict (plug-in compatible decode)."""
        state = {name: value.copy() for name, value in self.fp32.items()}
        for name, tensor in self.tensors.items():
            state[name] = tensor.reconstructed.copy()
        return state

    def compression_ratio(self) -> float:
        """FP32-vs-compressed ratio over the tensors the method touched."""
        original = sum(t.original_bytes for t in self.tensors.values())
        compressed = sum(t.compressed_bytes for t in self.tensors.values())
        return original / compressed if compressed else float("inf")

    def compressed_bytes(self) -> int:
        return sum(t.compressed_bytes for t in self.tensors.values())


class ModelQuantizer(Protocol):
    """The interface Table III's method comparison iterates over."""

    name: str
    requires_finetuning: bool

    def compress(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> CompressedModel:
        """Compress the named tensors of ``state``; pass the rest through."""
        ...
