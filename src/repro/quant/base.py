"""Common interface for whole-model weight quantizers.

Every baseline (and GOBO itself, via an adapter) exposes the same contract:
``compress(state_dict, fc_names, embedding_names)`` returns a
:class:`CompressedModel` that can report its compressed byte size and
reconstruct an FP32 state dict.  The Table III comparison iterates over this
interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

BYTES_PER_FP32 = 4


@dataclass(frozen=True)
class CompressedTensor:
    """One tensor's compressed form: reconstructed values + byte cost.

    Baselines differ wildly in storage layout; for comparison purposes each
    reports the reconstructed FP32 array (to evaluate accuracy) and its
    compressed size in bytes (to evaluate compression ratio).
    """

    reconstructed: np.ndarray
    compressed_bytes: int

    @property
    def original_bytes(self) -> int:
        return int(self.reconstructed.size) * BYTES_PER_FP32


@dataclass
class CompressedModel:
    """A model compressed by one method: per-tensor results + passthrough."""

    method: str
    tensors: dict[str, CompressedTensor]
    fp32: dict[str, np.ndarray]

    def state_dict(self) -> dict[str, np.ndarray]:
        """Reconstructed FP32 state dict (plug-in compatible decode)."""
        state = {name: value.copy() for name, value in self.fp32.items()}
        for name, tensor in self.tensors.items():
            state[name] = tensor.reconstructed.copy()
        return state

    def compression_ratio(self) -> float:
        """FP32-vs-compressed ratio over the tensors the method touched."""
        original = sum(t.original_bytes for t in self.tensors.values())
        compressed = sum(t.compressed_bytes for t in self.tensors.values())
        return original / compressed if compressed else float("inf")

    def compressed_bytes(self) -> int:
        return sum(t.compressed_bytes for t in self.tensors.values())


class ModelQuantizer(Protocol):
    """The interface Table III's method comparison iterates over."""

    name: str
    requires_finetuning: bool

    def compress(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> CompressedModel:
        """Compress the named tensors of ``state``; pass the rest through."""
        ...


class EngineBackedQuantizer:
    """Base for quantizers that run through the layer-parallel engine.

    Subclasses implement :meth:`engine_options` — the keyword arguments that
    pick their tensor method, bit widths and any per-layer side data — and
    inherit a full-featured :meth:`quantize` (deterministic, durable,
    fault-policy-aware, any backend) plus the :class:`ModelQuantizer`
    ``compress`` contract for the Table III harness.  Everything downstream
    of the engine (serialization format v3, jobs, serving) works unchanged
    for every subclass.
    """

    name: str = "engine"
    requires_finetuning: bool = False

    def engine_options(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> dict:
        """Keyword arguments for ``quantize_state_dict`` (method, bits, aux)."""
        raise NotImplementedError

    def quantize(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...] = (),
        *,
        workers: int | None = None,
        on_error: str | None = "fail",
        validation: str = "strict",
        fault_injector=None,
        layer_timeout: float | None = None,
        transient_retries: int | None = None,
        cancel=None,
        backend: str | None = None,
        engine=None,
    ):
        """Run this method through the engine, returning a ``QuantizedModel``."""
        # Lazy import: repro.quant must stay importable without dragging in
        # the whole engine (plug-in tensor-method modules import the other way).
        from repro.core.model_quantizer import quantize_state_dict

        options = self.engine_options(state, fc_names, embedding_names)
        return quantize_state_dict(
            state,
            fc_names=fc_names,
            embedding_names=embedding_names,
            workers=workers,
            on_error=on_error,
            validation=validation,
            fault_injector=fault_injector,
            layer_timeout=layer_timeout,
            transient_retries=transient_retries,
            cancel=cancel,
            backend=backend,
            engine=engine,
            **options,
        )

    def compress(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...] = (),
        workers: int | None = None,
    ) -> CompressedModel:
        quantized = self.quantize(state, fc_names, embedding_names, workers=workers)
        tensors = {
            name: CompressedTensor(
                reconstructed=tensor.dequantize(dtype=np.float64),
                compressed_bytes=tensor.storage().compressed_bytes,
            )
            for name, tensor in quantized.quantized.items()
        }
        return CompressedModel(method=self.name, tensors=tensors, fp32=dict(quantized.fp32))
