"""Whole-model quantization methods and the spec registry that names them.

The paper's baselines (Q8BERT, Q-BERT), GOBO itself, and the post-training
method zoo grown from the related work (zero-shot dynamic, gradient-aware
outliers, mixed-precision allocation) — all behind the common
:class:`ModelQuantizer` interface and the ``family[-option...]`` spec
grammar of :mod:`repro.quant.registry`.
"""

from repro.quant.base import (
    CompressedModel,
    CompressedTensor,
    EngineBackedQuantizer,
    ModelQuantizer,
)
from repro.quant.gobo_adapter import GoboModelQuantizer
from repro.quant.gwq import GwqQuantizer
from repro.quant.mixedbits import MixedBitsQuantizer, allocate_bits
from repro.quant.pruning import (
    magnitude_prune,
    prune_then_quantize,
    pruned_storage,
)
from repro.quant.q8bert import (
    Q8BertQuantizer,
    disable_activation_quantization,
    enable_activation_quantization,
    fake_quantize_model,
    symmetric_dequantize,
    symmetric_quantize,
)
from repro.quant.qbert import QBertQuantizer, quantize_groupwise
from repro.quant.registry import (
    TABLE3_SPECS,
    MethodFamily,
    MethodOption,
    available_specs,
    build_quantizer,
    describe_specs,
    parse_spec,
    register,
    unregister,
)
from repro.quant.zeroshot import ZeroShotQuantizer, quantize_at_load

__all__ = [
    "CompressedModel",
    "CompressedTensor",
    "EngineBackedQuantizer",
    "GoboModelQuantizer",
    "GwqQuantizer",
    "MethodFamily",
    "MethodOption",
    "MixedBitsQuantizer",
    "ModelQuantizer",
    "Q8BertQuantizer",
    "QBertQuantizer",
    "TABLE3_SPECS",
    "ZeroShotQuantizer",
    "allocate_bits",
    "available_specs",
    "build_quantizer",
    "describe_specs",
    "disable_activation_quantization",
    "enable_activation_quantization",
    "fake_quantize_model",
    "magnitude_prune",
    "parse_spec",
    "prune_then_quantize",
    "pruned_storage",
    "quantize_at_load",
    "quantize_groupwise",
    "register",
    "symmetric_dequantize",
    "symmetric_quantize",
    "unregister",
]
