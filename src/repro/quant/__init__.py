"""Baseline quantizers: Q8BERT-like, Q-BERT-like, and the common interface."""

from repro.quant.base import CompressedModel, CompressedTensor, ModelQuantizer
from repro.quant.gobo_adapter import GoboModelQuantizer
from repro.quant.q8bert import (
    Q8BertQuantizer,
    disable_activation_quantization,
    enable_activation_quantization,
    fake_quantize_model,
    symmetric_dequantize,
    symmetric_quantize,
)
from repro.quant.pruning import (
    magnitude_prune,
    prune_then_quantize,
    pruned_storage,
)
from repro.quant.qbert import QBertQuantizer, quantize_groupwise
from repro.quant.registry import TABLE3_SPECS, build_quantizer

__all__ = [
    "CompressedModel",
    "CompressedTensor",
    "GoboModelQuantizer",
    "ModelQuantizer",
    "Q8BertQuantizer",
    "QBertQuantizer",
    "TABLE3_SPECS",
    "build_quantizer",
    "disable_activation_quantization",
    "enable_activation_quantization",
    "fake_quantize_model",
    "magnitude_prune",
    "prune_then_quantize",
    "pruned_storage",
    "quantize_groupwise",
    "symmetric_dequantize",
    "symmetric_quantize",
]
