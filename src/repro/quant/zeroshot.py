"""Zero-shot dynamic quantization (El-Kurdi et al.).

*Zero-Shot Dynamic Quantization for Transformer Inference* observes that
transformer weight tensors are near-Gaussian, so a uniform grid placed over
``mean ± 3σ`` captures almost all weights without any calibration data —
quantization parameters come from the tensor itself, at load time.  The few
weights outside the clip range (≈0.27% under the Gaussian assumption, at
most 1/9 by Chebyshev's inequality) would otherwise stretch the grid and
waste levels; we store them FP32 through GOBO's outlier channel, which the
paper's "outliers are rare but matter" finding motivates.

The method is registered as the ``"zeroshot"`` tensor method, so it flows
through the layer-parallel engine, durable jobs, format v3 archives and the
serving stack unchanged.  Default width is 8 bits: with no fine-tuning pass
to recover rounding error, zero-shot methods run at higher precision than
calibrated ones.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantizer import (
    TensorMethodContext,
    TensorMethodResult,
    register_tensor_method,
    single_pass_result,
)
from repro.errors import QuantizationError
from repro.quant.base import EngineBackedQuantizer

#: Half-width of the uniform grid in standard deviations.
ZEROSHOT_CLIP_SIGMAS = 3.0


def zeroshot_grid(
    values: np.ndarray, bits: int, clip_sigmas: float = ZEROSHOT_CLIP_SIGMAS
) -> tuple[float, float, np.ndarray]:
    """Data-free uniform grid over ``mean ± clip_sigmas * std``.

    Returns ``(lo, hi, centroids)`` where centroids are the ``2^bits``
    mid-rise level representatives.  Raises when the grid would collapse
    (zero variance) — callers reach this only through the engine, whose
    validation layer reroutes degenerate tensors to exact linear binning
    first.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        raise QuantizationError("cannot quantize an empty tensor")
    mean = float(flat.mean())
    std = float(flat.std())
    if std == 0.0:
        raise QuantizationError("zero-variance tensor has no zero-shot grid")
    lo = mean - clip_sigmas * std
    hi = mean + clip_sigmas * std
    levels = 1 << bits
    step = (hi - lo) / levels
    centroids = lo + (np.arange(levels, dtype=np.float64) + 0.5) * step
    return lo, hi, centroids


def _zeroshot_method(
    weights: np.ndarray, ctx: TensorMethodContext
) -> TensorMethodResult:
    flat = np.asarray(weights, dtype=np.float64).ravel()
    lo, hi, centroids = zeroshot_grid(flat, ctx.bits)
    outlier_mask = (flat < lo) | (flat > hi)
    inliers = flat[~outlier_mask]
    levels = 1 << ctx.bits
    step = (hi - lo) / levels
    assignment = np.clip(
        np.floor((inliers - lo) / step), 0, levels - 1
    ).astype(np.int64)
    clustering = single_pass_result(inliers, centroids, assignment)
    return TensorMethodResult(outlier_mask=outlier_mask, clustering=clustering)


register_tensor_method("zeroshot", _zeroshot_method)


class ZeroShotQuantizer(EngineBackedQuantizer):
    """Whole-model zero-shot dynamic quantization (no calibration pass)."""

    requires_finetuning = False

    def __init__(self, bits: int = 8) -> None:
        if not 2 <= bits <= 8:
            raise QuantizationError(f"bits must be in [2, 8], got {bits}")
        self.bits = bits
        self.name = "zeroshot" if bits == 8 else f"zeroshot-{bits}bit"

    def engine_options(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> dict:
        return {
            "weight_bits": self.bits,
            "embedding_bits": self.bits,
            "method": "zeroshot",
        }


def quantize_at_load(
    state: dict[str, np.ndarray],
    fc_names: tuple[str, ...],
    embedding_names: tuple[str, ...] = (),
    bits: int = 8,
    **engine_kwargs,
):
    """Quantize a freshly loaded state dict in one call, no calibration.

    The zero-shot entry point: hand it the state dict straight off disk and
    get a ``QuantizedModel`` back.  ``engine_kwargs`` forward to
    :meth:`EngineBackedQuantizer.quantize` (workers, backend, policies...).
    """
    return ZeroShotQuantizer(bits=bits).quantize(
        state, fc_names, embedding_names, **engine_kwargs
    )
