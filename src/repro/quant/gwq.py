"""GWQ-style gradient-aware outlier selection.

*GWQ: Gradient-Aware Weight Quantization for Large Language Models* keeps
the weights with the largest gradient saliency in FP32 and quantizes the
rest at low precision — the insight being that first-order sensitivity, not
distributional rarity, is what makes a weight an "outlier".  This module
replaces GOBO's Gaussian log-probability split with a saliency ranking while
reusing the GOBO centroid machinery (L1-monitored clustering) for the
inlier group.

Saliency needs gradients, which need a forward/backward pass, which needs a
model — but quantization operates on bare state dicts.  So
:class:`GwqQuantizer` rebuilds a proxy :class:`~repro.models.bert.BertModel`
whose architecture is inferred from the state dict's tensor shapes, runs one
deterministic synthetic batch through the existing :mod:`repro.nn` autograd
tape, and ranks weights by ``|gradient x weight|`` (the first-order Taylor
estimate of the loss change from zeroing a weight).  The per-layer outlier
masks travel to the engine as ``aux`` side data; the ``"gwq"`` tensor method
consumes them inside the engine, so archives stay format v3, deterministic
and resumable.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import gobo_cluster
from repro.core.quantizer import (
    TensorMethodContext,
    TensorMethodResult,
    register_tensor_method,
)
from repro.errors import QuantizationError
from repro.quant.base import EngineBackedQuantizer

_WORD_EMBEDDINGS = "embeddings.word_embeddings.weight"

#: Proxy batch geometry: large enough to excite every head and FFN unit,
#: small enough that the saliency pass is negligible next to clustering.
PROXY_BATCH = 4
PROXY_SEQ_LEN = 32


def _gwq_method(weights: np.ndarray, ctx: TensorMethodContext) -> TensorMethodResult:
    """Saliency-ranked outliers (from ``aux``) + GOBO centroids for inliers."""
    flat = np.asarray(weights, dtype=np.float64).ravel()
    if ctx.aux is None:
        raise QuantizationError(
            "the 'gwq' method needs a saliency outlier mask as aux data; "
            "run it through GwqQuantizer (or pass aux= to the engine)"
        )
    mask = np.asarray(ctx.aux, dtype=bool).ravel()
    if mask.size != flat.size:
        raise QuantizationError(
            f"gwq aux mask has {mask.size} entries for a {flat.size}-element tensor"
        )
    inliers = flat[~mask]
    if inliers.size == 0:
        raise QuantizationError("gwq mask classifies every weight as an outlier")
    result = gobo_cluster(inliers, ctx.bits, max_iterations=ctx.max_iterations)
    return TensorMethodResult(outlier_mask=mask.copy(), clustering=result)


register_tensor_method("gwq", _gwq_method)


def infer_bert_config(state: dict[str, np.ndarray], prefix: str):
    """Reconstruct a proxy :class:`BertConfig` from state-dict tensor shapes.

    Everything the proxy forward needs is recoverable: vocab/hidden from the
    word-embedding table, depth by counting encoder layers, FFN width from
    the intermediate projection (Linear weights are ``(out, in)``).  The
    head count only shapes the attention reshape — any divisor of
    ``hidden_size`` yields valid gradients — so the largest divisor ≤ 8 is
    chosen deterministically.
    """
    from repro.models.config import BertConfig

    def shape_of(name: str) -> tuple[int, ...]:
        key = prefix + name
        if key not in state:
            raise QuantizationError(
                f"cannot infer a proxy model for GWQ: state dict lacks {key!r}"
            )
        return np.asarray(state[key]).shape

    vocab_size, hidden_size = shape_of(_WORD_EMBEDDINGS)
    max_position = shape_of("embeddings.position_embeddings.weight")[0]
    type_vocab_size = shape_of("embeddings.token_type_embeddings.weight")[0]
    num_layers = len(
        {
            key[len(prefix) :].split(".")[1]
            for key in state
            if key.startswith(f"{prefix}encoder.")
        }
    )
    if num_layers == 0:
        raise QuantizationError(
            "cannot infer a proxy model for GWQ: state dict has no encoder layers"
        )
    intermediate_size = shape_of("encoder.0.intermediate.weight")[0]
    num_heads = next(h for h in range(min(8, hidden_size), 0, -1) if hidden_size % h == 0)
    return BertConfig(
        name="gwq-proxy",
        vocab_size=vocab_size,
        hidden_size=hidden_size,
        num_layers=num_layers,
        num_heads=num_heads,
        intermediate_size=intermediate_size,
        max_position=max_position,
        type_vocab_size=type_vocab_size,
        dropout_rate=0.0,
    )


def gradient_saliency(
    state: dict[str, np.ndarray], seed: int = 0
) -> dict[str, np.ndarray]:
    """Per-weight ``|gradient x weight|`` from one synthetic proxy batch.

    Returns saliency arrays keyed like ``state`` (BERT parameters only).
    The loss is the energy of the output activations — with no labels
    available, "which weights most move what the model computes" is the
    zero-data sensitivity signal.  Deterministic in ``seed``; non-finite
    weights are sanitized for the proxy pass only (the engine's validation
    policy still judges the originals).
    """
    from repro.models.bert import BertModel

    anchors = [key for key in state if key.endswith(_WORD_EMBEDDINGS)]
    if not anchors:
        raise QuantizationError(
            "cannot infer a proxy model for GWQ: no word-embedding table "
            f"(a key ending with {_WORD_EMBEDDINGS!r}) in the state dict"
        )
    prefix = min(anchors)[: -len(_WORD_EMBEDDINGS)]
    config = infer_bert_config(state, prefix)
    model = BertModel(config, rng=0)
    proxy_state = {}
    for name in model.state_dict():
        key = prefix + name
        if key not in state:
            raise QuantizationError(
                f"cannot infer a proxy model for GWQ: state dict lacks {key!r}"
            )
        # Non-finite entries become 0 (not float64 max, which would overflow
        # the proxy matmuls); the engine's validation policy still judges
        # the original values.
        proxy_state[name] = np.nan_to_num(
            np.asarray(state[key], dtype=np.float64),
            copy=True, nan=0.0, posinf=0.0, neginf=0.0,
        )
    model.load_state_dict(proxy_state)
    model.eval()
    model.zero_grad()

    rng = np.random.default_rng(seed)
    seq_len = min(PROXY_SEQ_LEN, config.max_position)
    input_ids = rng.integers(0, config.vocab_size, size=(PROXY_BATCH, seq_len))
    hidden, pooled = model(input_ids)
    loss = (hidden * hidden).mean() + (pooled * pooled).mean()
    loss.backward()

    return {
        prefix + name: np.abs(grad) * np.abs(proxy_state[name])
        for name, grad in model.named_gradients().items()
    }


def saliency_masks(
    state: dict[str, np.ndarray],
    names: tuple[str, ...],
    outlier_pct: float,
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Top-``outlier_pct``% saliency masks (flat bool) for each named layer."""
    saliency = gradient_saliency(state, seed=seed)
    masks: dict[str, np.ndarray] = {}
    for name in names:
        if name not in saliency:
            raise QuantizationError(
                f"layer {name!r} is not part of the inferred proxy model; "
                "GWQ can only rank parameters the proxy forward reaches"
            )
        flat = saliency[name].ravel()
        keep = int(round(flat.size * outlier_pct / 100.0))
        keep = max(0, min(keep, flat.size - 1))
        mask = np.zeros(flat.size, dtype=bool)
        if keep:
            order = np.argsort(-flat, kind="stable")
            mask[order[:keep]] = True
        masks[name] = mask
    return masks


class GwqQuantizer(EngineBackedQuantizer):
    """Gradient-aware outlier selection + GOBO centroids, whole-model."""

    requires_finetuning = False

    def __init__(
        self,
        weight_bits: int = 3,
        embedding_bits: int | None = 4,
        outlier_pct: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= outlier_pct < 100.0:
            raise QuantizationError(
                f"outlier_pct must be in [0, 100), got {outlier_pct}"
            )
        self.weight_bits = weight_bits
        self.embedding_bits = embedding_bits
        self.outlier_pct = outlier_pct
        self.seed = seed
        self.name = f"gwq-{weight_bits}bit"

    def engine_options(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> dict:
        targets = tuple(fc_names)
        if self.embedding_bits is not None:
            targets += tuple(embedding_names)
        return {
            "weight_bits": self.weight_bits,
            "embedding_bits": self.embedding_bits,
            "method": "gwq",
            "aux": saliency_masks(state, targets, self.outlier_pct, seed=self.seed),
        }
