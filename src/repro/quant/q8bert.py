"""Q8BERT-like baseline: symmetric 8-bit fixed-point quantization.

Intel's Q8BERT [Zafrir et al. 2019] quantizes weights and embeddings to 8-bit
fixed point with a per-tensor symmetric scale (fine-tuning with a
straight-through estimator recovers the accuracy loss; here the uniform
rounding error at 8 bits is small enough that the tiny models tolerate it
directly, and an optional quantization-aware fine-tuning hook is provided by
:func:`fake_quantize_model` for parity experiments).  Storage: one int8 per
weight plus a scale per tensor, a fixed 4x compression over FP32 — the
paper's Table III row.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantizer import (
    TensorMethodContext,
    TensorMethodResult,
    register_tensor_method,
    single_pass_result,
)
from repro.errors import QuantizationError
from repro.quant.base import CompressedModel, CompressedTensor, EngineBackedQuantizer


def symmetric_quantize(values: np.ndarray, bits: int = 8) -> tuple[np.ndarray, float]:
    """Quantize to signed ``bits``-bit integers with a symmetric scale.

    Returns ``(codes, scale)`` with ``values ~= codes * scale``.
    """
    if not 2 <= bits <= 16:
        raise QuantizationError(f"bits must be in [2, 16], got {bits}")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise QuantizationError("cannot quantize an empty tensor")
    limit = float(np.abs(values).max())
    max_code = (1 << (bits - 1)) - 1
    if limit == 0.0:
        return np.zeros(values.shape, dtype=np.int32), 1.0
    scale = limit / max_code
    codes = np.clip(np.round(values / scale), -max_code - 1, max_code).astype(np.int32)
    return codes, scale


def symmetric_dequantize(codes: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`symmetric_quantize`."""
    return np.asarray(codes, dtype=np.float64) * scale


def _q8bert_grid_method(
    weights: np.ndarray, ctx: TensorMethodContext
) -> TensorMethodResult:
    """Symmetric fixed-point grid as an engine tensor method.

    The ``2^bits`` uniformly spaced code values become the centroid table
    (``code * scale``), so the engine's generic packed-codes + centroids
    archive reproduces :func:`symmetric_dequantize` arithmetic exactly.
    No weight is ever an outlier — the grid covers the full range.
    """
    flat = np.asarray(weights, dtype=np.float64).ravel()
    codes, scale = symmetric_quantize(flat, ctx.bits)
    max_code = (1 << (ctx.bits - 1)) - 1
    centroids = np.arange(-max_code - 1, max_code + 1, dtype=np.float64) * scale
    assignment = codes.astype(np.int64).ravel() + max_code + 1
    result = single_pass_result(flat, centroids, assignment)
    return TensorMethodResult(
        outlier_mask=np.zeros(flat.size, dtype=bool), clustering=result
    )


register_tensor_method("q8bert-grid", _q8bert_grid_method)


class Q8BertQuantizer(EngineBackedQuantizer):
    """Whole-model 8-bit fixed-point quantization (weights + embeddings).

    :meth:`compress` keeps the method's native storage accounting (one int8
    per weight + one FP32 scale); :meth:`quantize` (inherited) runs the same
    grid through the engine as the ``"q8bert-grid"`` tensor method, so
    Q8BERT models flow through format v3 archives, durable jobs and the
    serving stack like any other method.
    """

    name = "q8bert"
    requires_finetuning = True  # the original method fine-tunes; see module doc

    def __init__(self, bits: int = 8) -> None:
        if not 2 <= bits <= 16:
            raise QuantizationError(f"bits must be in [2, 16], got {bits}")
        self.bits = bits

    def engine_options(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> dict:
        return {
            "weight_bits": self.bits,
            "embedding_bits": self.bits,
            "method": "q8bert-grid",
        }

    def compress(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> CompressedModel:
        targets = (*fc_names, *embedding_names)
        missing = [n for n in targets if n not in state]
        if missing:
            raise QuantizationError(f"state dict is missing tensors: {missing}")
        tensors: dict[str, CompressedTensor] = {}
        for name in targets:
            codes, scale = symmetric_quantize(state[name], self.bits)
            nbytes = codes.size * self.bits // 8 + 4  # codes + FP32 scale
            tensors[name] = CompressedTensor(
                reconstructed=symmetric_dequantize(codes, scale).reshape(state[name].shape),
                compressed_bytes=nbytes,
            )
        fp32 = {n: v for n, v in state.items() if n not in tensors}
        return CompressedModel(method=self.name, tensors=tensors, fp32=fp32)


def enable_activation_quantization(model, bits: int = 8) -> int:
    """Install 8-bit activation quantization on every Linear of ``model``.

    Q8BERT quantizes activations as well as weights; this hook emulates that
    at inference time (training mode is unaffected).  Each Linear input is
    symmetric-quantized per call — the dynamic-range variant.  Returns the
    number of layers instrumented; pass ``bits=None``-like behaviour by
    calling :func:`disable_activation_quantization` to undo.
    """
    from repro.nn.layers import Linear

    def quantize(values):
        codes, scale = symmetric_quantize(values, bits)
        return symmetric_dequantize(codes, scale).reshape(values.shape)

    count = 0
    for _, module in model.named_modules():
        if isinstance(module, Linear):
            module.activation_quantizer = quantize
            count += 1
    return count


def disable_activation_quantization(model) -> int:
    """Remove activation-quantization hooks; returns how many were removed."""
    from repro.nn.layers import Linear

    count = 0
    for _, module in model.named_modules():
        if isinstance(module, Linear) and module.activation_quantizer is not None:
            module.activation_quantizer = None
            count += 1
    return count


def fake_quantize_model(
    state: dict[str, np.ndarray],
    names: tuple[str, ...],
    bits: int = 8,
) -> dict[str, np.ndarray]:
    """Straight-through 'fake quantization' of selected tensors.

    Used to emulate Q8BERT's quantization-aware fine-tuning: apply between
    optimizer steps so the forward pass sees quantized weights while the
    FP32 master copy keeps training.
    """
    out = dict(state)
    for name in names:
        codes, scale = symmetric_quantize(state[name], bits)
        out[name] = symmetric_dequantize(codes, scale).reshape(state[name].shape)
    return out
