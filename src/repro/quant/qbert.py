"""Q-BERT-like baseline: group-wise dictionary quantization.

Q-BERT [Shen et al. 2019] splits each layer's weight matrix into groups
(128 per layer gives acceptable accuracy), quantizes each group to its own
dictionary of ``2^bits`` values, and stores weights as indexes.  Embedding
tables are kept at 8 bits to avoid a large accuracy loss.  The original
selects levels with second-order (Hessian) information during fine-tuning;
this reimplementation uses per-group Lloyd clustering, which matches its
storage format exactly — ``bits`` per weight plus 128 dictionaries per layer
— and hence its compression ratios (Table III: 6.52x at 4 bits, 7.81x at
3 bits with 8-bit embeddings).
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import kmeans_cluster
from repro.errors import QuantizationError
from repro.quant.base import BYTES_PER_FP32, CompressedModel, CompressedTensor
from repro.quant.q8bert import symmetric_dequantize, symmetric_quantize
from repro.utils.bitpack import packed_nbytes


def quantize_groupwise(
    values: np.ndarray, bits: int, num_groups: int
) -> tuple[np.ndarray, int]:
    """Cluster ``values`` per group; return (reconstructed, compressed_bytes)."""
    if num_groups <= 0:
        raise QuantizationError(f"num_groups must be positive, got {num_groups}")
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        raise QuantizationError("cannot quantize an empty tensor")
    groups = min(num_groups, flat.size)
    bounds = np.linspace(0, flat.size, groups + 1).round().astype(np.int64)
    reconstructed = np.empty_like(flat)
    total_bytes = 0
    for g in range(groups):
        lo, hi = int(bounds[g]), int(bounds[g + 1])
        if hi <= lo:
            continue
        segment = flat[lo:hi]
        result = kmeans_cluster(segment, bits)
        reconstructed[lo:hi] = result.centroids[result.assignment]
        total_bytes += packed_nbytes(hi - lo, bits)  # indexes
        total_bytes += (1 << bits) * BYTES_PER_FP32  # per-group dictionary
    return reconstructed.reshape(np.asarray(values).shape), total_bytes


class QBertQuantizer:
    """Whole-model group-wise dictionary quantization with 8-bit embeddings."""

    name = "qbert"
    requires_finetuning = True  # the original fine-tunes with Hessian guidance

    def __init__(self, weight_bits: int = 3, num_groups: int = 128, embedding_bits: int = 8):
        if not 1 <= weight_bits <= 8:
            raise QuantizationError(f"weight_bits must be in [1, 8], got {weight_bits}")
        self.weight_bits = weight_bits
        self.num_groups = num_groups
        self.embedding_bits = embedding_bits

    def compress(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> CompressedModel:
        missing = [n for n in (*fc_names, *embedding_names) if n not in state]
        if missing:
            raise QuantizationError(f"state dict is missing tensors: {missing}")
        tensors: dict[str, CompressedTensor] = {}
        for name in fc_names:
            reconstructed, nbytes = quantize_groupwise(
                state[name], self.weight_bits, self.num_groups
            )
            tensors[name] = CompressedTensor(reconstructed=reconstructed, compressed_bytes=nbytes)
        for name in embedding_names:
            codes, scale = symmetric_quantize(state[name], self.embedding_bits)
            nbytes = codes.size * self.embedding_bits // 8 + 4
            tensors[name] = CompressedTensor(
                reconstructed=symmetric_dequantize(codes, scale).reshape(state[name].shape),
                compressed_bytes=nbytes,
            )
        fp32 = {n: v for n, v in state.items() if n not in tensors}
        return CompressedModel(method=self.name, tensors=tensors, fp32=fp32)
