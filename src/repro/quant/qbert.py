"""Q-BERT-like baseline: group-wise dictionary quantization.

Q-BERT [Shen et al. 2019] splits each layer's weight matrix into groups
(128 per layer gives acceptable accuracy), quantizes each group to its own
dictionary of ``2^bits`` values, and stores weights as indexes.  Embedding
tables are kept at 8 bits to avoid a large accuracy loss.  The original
selects levels with second-order (Hessian) information during fine-tuning;
this reimplementation uses per-group Lloyd clustering, which matches its
storage format exactly — ``bits`` per weight plus 128 dictionaries per layer
— and hence its compression ratios (Table III: 6.52x at 4 bits, 7.81x at
3 bits with 8-bit embeddings).
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import kmeans_cluster
from repro.core.quantizer import (
    TensorMethodContext,
    TensorMethodResult,
    register_tensor_method,
    single_pass_result,
)
from repro.errors import QuantizationError
from repro.quant.base import (
    BYTES_PER_FP32,
    CompressedModel,
    CompressedTensor,
    EngineBackedQuantizer,
)
from repro.quant.q8bert import symmetric_dequantize, symmetric_quantize
from repro.utils.bitpack import packed_nbytes

#: Q-BERT's group count (128 per layer gives acceptable accuracy, see above).
DEFAULT_NUM_GROUPS = 128


def quantize_groupwise(
    values: np.ndarray, bits: int, num_groups: int
) -> tuple[np.ndarray, int]:
    """Cluster ``values`` per group; return (reconstructed, compressed_bytes)."""
    if num_groups <= 0:
        raise QuantizationError(f"num_groups must be positive, got {num_groups}")
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        raise QuantizationError("cannot quantize an empty tensor")
    groups = min(num_groups, flat.size)
    bounds = np.linspace(0, flat.size, groups + 1).round().astype(np.int64)
    reconstructed = np.empty_like(flat)
    total_bytes = 0
    for g in range(groups):
        lo, hi = int(bounds[g]), int(bounds[g + 1])
        if hi <= lo:
            continue
        segment = flat[lo:hi]
        result = kmeans_cluster(segment, bits)
        reconstructed[lo:hi] = result.centroids[result.assignment]
        total_bytes += packed_nbytes(hi - lo, bits)  # indexes
        total_bytes += (1 << bits) * BYTES_PER_FP32  # per-group dictionary
    return reconstructed.reshape(np.asarray(values).shape), total_bytes


def _qbert_group_method(
    weights: np.ndarray, ctx: TensorMethodContext
) -> TensorMethodResult:
    """Group-wise dictionary quantization as an engine tensor method.

    Uses the same contiguous group bounds as :func:`quantize_groupwise`
    (``min(128, size)`` groups), clusters each group independently, then
    concatenates the per-group dictionaries into one global centroid table
    with block-offset codes — so the result fits the engine's generic
    packed-codes + centroid-table archive.  ``stored_bits`` widens to cover
    the global code space (up to 15 bits at 128 groups x 2^bits levels);
    storage accounting therefore differs from Q-BERT's native per-group
    layout, which :meth:`QBertQuantizer.compress` still reports.
    """
    flat = np.asarray(weights, dtype=np.float64).ravel()
    groups = min(DEFAULT_NUM_GROUPS, flat.size)
    bounds = np.linspace(0, flat.size, groups + 1).round().astype(np.int64)
    centroid_blocks: list[np.ndarray] = []
    assignment = np.empty(flat.size, dtype=np.int64)
    offset = 0
    for g in range(groups):
        lo, hi = int(bounds[g]), int(bounds[g + 1])
        if hi <= lo:
            continue
        result = kmeans_cluster(flat[lo:hi], ctx.bits)
        centroid_blocks.append(result.centroids)
        assignment[lo:hi] = result.assignment + offset
        offset += result.centroids.size
    centroids = np.concatenate(centroid_blocks)
    stored_bits = max(1, int(centroids.size - 1).bit_length())
    clustering = single_pass_result(flat, centroids, assignment)
    return TensorMethodResult(
        outlier_mask=np.zeros(flat.size, dtype=bool),
        clustering=clustering,
        stored_bits=stored_bits,
    )


register_tensor_method("qbert-group", _qbert_group_method)


class QBertQuantizer(EngineBackedQuantizer):
    """Whole-model group-wise dictionary quantization with 8-bit embeddings.

    :meth:`compress` keeps Q-BERT's native storage accounting (per-group
    dictionaries); :meth:`quantize` (inherited) runs the same values through
    the engine as the ``"qbert-group"`` tensor method (FC layers) and
    ``"q8bert-grid"`` (embeddings), so Q-BERT models land in format v3
    archives like every other method.
    """

    name = "qbert"
    requires_finetuning = True  # the original fine-tunes with Hessian guidance

    def __init__(
        self,
        weight_bits: int = 3,
        num_groups: int = DEFAULT_NUM_GROUPS,
        embedding_bits: int = 8,
    ):
        if not 1 <= weight_bits <= 8:
            raise QuantizationError(f"weight_bits must be in [1, 8], got {weight_bits}")
        self.weight_bits = weight_bits
        self.num_groups = num_groups
        self.embedding_bits = embedding_bits

    def engine_options(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> dict:
        return {
            "weight_bits": self.weight_bits,
            "embedding_bits": self.embedding_bits,
            "method": "qbert-group",
            "embedding_method": "q8bert-grid",
        }

    def compress(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> CompressedModel:
        missing = [n for n in (*fc_names, *embedding_names) if n not in state]
        if missing:
            raise QuantizationError(f"state dict is missing tensors: {missing}")
        tensors: dict[str, CompressedTensor] = {}
        for name in fc_names:
            reconstructed, nbytes = quantize_groupwise(
                state[name], self.weight_bits, self.num_groups
            )
            tensors[name] = CompressedTensor(reconstructed=reconstructed, compressed_bytes=nbytes)
        for name in embedding_names:
            codes, scale = symmetric_quantize(state[name], self.embedding_bits)
            nbytes = codes.size * self.embedding_bits // 8 + 4
            tensors[name] = CompressedTensor(
                reconstructed=symmetric_dequantize(codes, scale).reshape(state[name].shape),
                compressed_bytes=nbytes,
            )
        fp32 = {n: v for n, v in state.items() if n not in tensors}
        return CompressedModel(method=self.name, tensors=tensors, fp32=fp32)
