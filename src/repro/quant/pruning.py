"""Magnitude pruning, and its composition with GOBO.

Related work (Section III): magnitude pruning removes 30-40% of BERT's
weights with minimal accuracy impact, but "a pruning method should remove
nearly 90% of the weights" to match GOBO's ~10x; the paper leaves "GOBO
could complement pruning" as future work.  This module implements that
future-work item: magnitude pruning of the FC weights, zero-aware storage
accounting, and a pruned-then-GOBO pipeline in which the zero weights form
their own (exactly representable) cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.formats import BYTES_PER_FP32
from repro.core.quantizer import GoboQuantizedTensor, quantize_tensor
from repro.errors import QuantizationError
from repro.utils.bitpack import packed_nbytes


def magnitude_prune(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Zero the smallest-magnitude fraction ``sparsity`` of ``weights``."""
    if not 0.0 <= sparsity < 1.0:
        raise QuantizationError(f"sparsity must be in [0, 1), got {sparsity}")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0:
        raise QuantizationError("cannot prune an empty tensor")
    if sparsity == 0.0:
        return weights.copy()
    k = int(round(weights.size * sparsity))
    if k == 0:
        return weights.copy()
    flat = weights.ravel()
    threshold = np.partition(np.abs(flat), k - 1)[k - 1]
    pruned = np.where(np.abs(weights) <= threshold, 0.0, weights)
    return pruned


@dataclass(frozen=True)
class PrunedStorage:
    """Zero-aware storage: a bitmap of nonzeros plus dense FP32 values."""

    total_weights: int
    nonzero_weights: int

    @property
    def sparsity(self) -> float:
        if self.total_weights == 0:
            return 0.0
        return 1.0 - self.nonzero_weights / self.total_weights

    @property
    def compressed_bytes(self) -> int:
        bitmap = packed_nbytes(self.total_weights, 1)
        return bitmap + self.nonzero_weights * BYTES_PER_FP32

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.total_weights * BYTES_PER_FP32 / self.compressed_bytes


def pruned_storage(weights: np.ndarray) -> PrunedStorage:
    """Storage report for a pruned tensor under bitmap + dense-values encoding."""
    weights = np.asarray(weights)
    return PrunedStorage(
        total_weights=int(weights.size),
        nonzero_weights=int(np.count_nonzero(weights)),
    )


def prune_then_quantize(
    weights: np.ndarray,
    sparsity: float,
    bits: int = 3,
    method: str = "gobo",
) -> tuple[GoboQuantizedTensor, np.ndarray]:
    """The paper's future-work composition: prune, then GOBO-quantize.

    The pruned zeros form a dense spike at 0 which equal-population binning
    dedicates (at least) one centroid to, so they are represented exactly
    for free; GOBO's 3-bit codes then apply to zeros and survivors alike.
    Returns the quantized tensor and the pruned FP32 tensor it encodes.
    """
    pruned = magnitude_prune(weights, sparsity)
    quantized, _ = quantize_tensor(pruned, bits=bits, method=method)
    return quantized, pruned
