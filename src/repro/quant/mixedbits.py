"""Sensitivity-driven mixed-precision bit allocation under a footprint budget.

Section V of the paper hand-picks a mixed 3b/4b policy for RoBERTa from a
per-layer sensitivity scan.  This module automates that judgment: run the
data-free reconstruction-sensitivity scan
(:func:`repro.experiments.sensitivity.reconstruction_sensitivity_scan`) over
every FC layer, then allocate per-layer bit widths greedily — every layer
starts at the narrowest candidate width, and the single upgrade with the
best error-reduction-per-byte is applied repeatedly until the global byte
budget is exhausted.  The result is a
:class:`~repro.core.policy.LayerPolicy`, so the allocation flows through the
unchanged engine/jobs/serialization stack exactly like the paper's
hand-written recipe.

The budget is expressed as a percentage of the FP32 footprint of the FC
weights (``budget_pct=12`` keeps the quantized FC layers under 12% of their
FP32 bytes, i.e. a guaranteed >= 8.3x compression on those layers).
"""

from __future__ import annotations

import re

import numpy as np

from repro.core.policy import LayerPolicy, PolicyRule
from repro.errors import QuantizationError
from repro.quant.base import BYTES_PER_FP32, EngineBackedQuantizer

DEFAULT_BUDGET_PCT = 12.0
DEFAULT_CANDIDATES = (2, 3, 4, 5)


def allocate_bits(
    state: dict[str, np.ndarray],
    layer_names: tuple[str, ...],
    budget_pct: float = DEFAULT_BUDGET_PCT,
    candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
) -> dict[str, int]:
    """Greedy error-per-byte bit allocation; returns ``{layer: bits}``.

    Deterministic: upgrades are ranked by error reduction per extra byte
    with ties broken by layer name, so the same state dict always yields
    the same allocation (and therefore the same archive bytes).
    """
    # Lazy import: repro.experiments pulls the training/data stack, which
    # repro.quant must not require at import time.
    from repro.experiments.sensitivity import reconstruction_sensitivity_scan

    if not layer_names:
        return {}
    widths = tuple(sorted(set(candidates)))
    if not widths:
        raise QuantizationError("mixed-precision allocation needs candidate widths")
    scan = reconstruction_sensitivity_scan(state, layer_names, widths)
    budget_bytes = (
        budget_pct
        / 100.0
        * sum(int(np.asarray(state[name]).size) * BYTES_PER_FP32 for name in layer_names)
    )
    allocation = {name: widths[0] for name in layer_names}
    total = sum(scan[name][widths[0]].compressed_bytes for name in layer_names)
    if total > budget_bytes:
        raise QuantizationError(
            f"budget of {budget_pct:g}% cannot fit even the {widths[0]}-bit floor "
            f"({total} bytes needed, {budget_bytes:.0f} allowed); raise the budget"
        )
    while True:
        best = None  # (error_drop_per_byte, -extra_bytes, name, next_bits)
        for name in sorted(layer_names):
            current = allocation[name]
            index = widths.index(current)
            if index + 1 == len(widths):
                continue
            upgrade = widths[index + 1]
            extra = (
                scan[name][upgrade].compressed_bytes
                - scan[name][current].compressed_bytes
            )
            if total + extra > budget_bytes:
                continue
            drop = scan[name][current].squared_error - scan[name][upgrade].squared_error
            gain = drop / extra if extra > 0 else float("inf")
            if best is None or gain > best[0]:
                best = (gain, extra, name, upgrade)
        if best is None:
            return allocation
        _, extra, name, upgrade = best
        allocation[name] = upgrade
        total += extra


def allocation_policy(allocation: dict[str, int], default_bits: int) -> LayerPolicy:
    """Wrap an allocation in a LayerPolicy with exact-match rules."""
    rules = tuple(
        PolicyRule(pattern=f"^{re.escape(name)}$", bits=bits)
        for name, bits in sorted(allocation.items())
    )
    return LayerPolicy(default_bits=default_bits, rules=rules)


class MixedBitsQuantizer(EngineBackedQuantizer):
    """GOBO with per-layer bit widths allocated under a global budget."""

    requires_finetuning = False

    def __init__(
        self,
        budget_pct: float = DEFAULT_BUDGET_PCT,
        candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
        embedding_bits: int | None = 4,
    ) -> None:
        if not 0.0 < budget_pct <= 100.0:
            raise QuantizationError(
                f"budget_pct must be in (0, 100], got {budget_pct}"
            )
        self.budget_pct = budget_pct
        self.candidates = tuple(sorted(set(candidates)))
        if not self.candidates:
            raise QuantizationError("candidates must be non-empty")
        self.embedding_bits = embedding_bits
        self.name = f"mixed-{budget_pct:g}pct"

    def allocate(
        self, state: dict[str, np.ndarray], fc_names: tuple[str, ...]
    ) -> dict[str, int]:
        """The per-layer bit allocation this quantizer would apply."""
        return allocate_bits(state, fc_names, self.budget_pct, self.candidates)

    def engine_options(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> dict:
        allocation = self.allocate(state, fc_names)
        return {
            "weight_bits": allocation_policy(allocation, self.candidates[0]),
            "embedding_bits": self.embedding_bits,
            "method": "gobo",
        }
