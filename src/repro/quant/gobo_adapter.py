"""Adapter exposing GOBO through the baseline :class:`ModelQuantizer` interface."""

from __future__ import annotations

import numpy as np

from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD
from repro.core.policy import LayerPolicy
from repro.quant.base import EngineBackedQuantizer


class GoboModelQuantizer(EngineBackedQuantizer):
    """GOBO (or its centroid-policy ablations) behind the common interface."""

    requires_finetuning = False

    def __init__(
        self,
        weight_bits: int | LayerPolicy = 3,
        embedding_bits: int | None = 4,
        method: str = "gobo",
        log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    ) -> None:
        self.weight_bits = weight_bits
        self.embedding_bits = embedding_bits
        self.method = method
        self.log_prob_threshold = log_prob_threshold
        suffix = "" if method == "gobo" else f"-{method}"
        self.name = f"gobo{suffix}"

    def engine_options(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
    ) -> dict:
        return {
            "weight_bits": self.weight_bits,
            "embedding_bits": self.embedding_bits,
            "method": self.method,
            "log_prob_threshold": self.log_prob_threshold,
        }
