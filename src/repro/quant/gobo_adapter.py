"""Adapter exposing GOBO through the baseline :class:`ModelQuantizer` interface."""

from __future__ import annotations

import numpy as np

from repro.core.model_quantizer import quantize_state_dict
from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD
from repro.core.policy import LayerPolicy
from repro.quant.base import CompressedModel, CompressedTensor


class GoboModelQuantizer:
    """GOBO (or its centroid-policy ablations) behind the common interface."""

    requires_finetuning = False

    def __init__(
        self,
        weight_bits: int | LayerPolicy = 3,
        embedding_bits: int | None = 4,
        method: str = "gobo",
        log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    ) -> None:
        self.weight_bits = weight_bits
        self.embedding_bits = embedding_bits
        self.method = method
        self.log_prob_threshold = log_prob_threshold
        suffix = "" if method == "gobo" else f"-{method}"
        self.name = f"gobo{suffix}"

    def compress(
        self,
        state: dict[str, np.ndarray],
        fc_names: tuple[str, ...],
        embedding_names: tuple[str, ...],
        workers: int | None = None,
    ) -> CompressedModel:
        quantized = quantize_state_dict(
            state,
            fc_names=fc_names,
            embedding_names=embedding_names,
            weight_bits=self.weight_bits,
            embedding_bits=self.embedding_bits,
            method=self.method,
            log_prob_threshold=self.log_prob_threshold,
            workers=workers,
        )
        tensors = {
            # float64 decode: the common interface's reconstructed tensors
            # feed straight back into the float64 compute substrate.
            name: CompressedTensor(
                reconstructed=tensor.dequantize(dtype=np.float64),
                compressed_bytes=tensor.storage().compressed_bytes,
            )
            for name, tensor in quantized.quantized.items()
        }
        return CompressedModel(method=self.name, tensors=tensors, fp32=dict(quantized.fp32))
