"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned ASCII/markdown-style tables.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object, float_fmt: str = "{:.2f}") -> str:
    """Render a table cell: floats via ``float_fmt``, ``None`` as ``-``."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    rendered = [[format_cell(cell, float_fmt) for cell in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in rendered:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def percentage(value: float, digits: int = 2) -> str:
    """Format a fraction in [0, 1] as a percentage string, e.g. ``0.69%``."""
    return f"{value * 100:.{digits}f}%"
