"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalise that input and derive
independent child generators so that experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    ``None`` yields a freshly seeded generator (non-reproducible); an ``int``
    seeds a new generator; an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected int, Generator or None, got {type(rng).__name__}")


def derive_rng(rng: int | np.random.Generator | None, *tags: object) -> np.random.Generator:
    """Derive an independent generator from ``rng`` and a sequence of tags.

    The same ``(rng, tags)`` pair always yields the same stream, while
    different tags yield statistically independent streams.  Tags may be
    strings or integers (e.g. layer names, epoch numbers).
    """
    base = ensure_rng(rng)
    # Hash the tags into a stable 64-bit mix without using Python's salted hash.
    mix = np.uint64(0x9E3779B97F4A7C15)
    for tag in tags:
        for byte in str(tag).encode("utf-8"):
            mix = np.uint64((int(mix) ^ byte) * 0x100000001B3 % (1 << 64))
    child_seed = int(base.integers(0, 2**63)) ^ int(mix)
    return np.random.default_rng(child_seed % (1 << 63))


def spawn_rngs(rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators."""
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def seeded_permutation(rng: int | np.random.Generator | None, items: Iterable) -> list:
    """Return ``items`` in a deterministic shuffled order under ``rng``."""
    items = list(items)
    order = ensure_rng(rng).permutation(len(items))
    return [items[i] for i in order]
