"""Dense bit-packing of small unsigned integers.

GOBO stores each "G"-group weight as a ``bits``-wide index (2..8 bits).  The
paper's compression ratios assume these indexes are stored densely, so the
storage format packs them back to back into a byte stream with no padding
between values (only the final byte may carry unused trailing bits).

Layout: value ``k`` occupies bits ``[k*bits, (k+1)*bits)`` of the stream,
LSB first within each value, and stream bit ``i`` lives in byte ``i // 8``
at bit position ``i % 8`` (little-endian bit order).

Two implementations share that layout:

* a **grouped fast path** for every width whose bit-groups fit a 64-bit
  word (1-8, 10, 12, 14 and 16 — in particular the 2/3/4/8-bit widths the
  quantizer actually emits): ``lcm(bits, 8) / bits`` values are packed into
  ``lcm(bits, 8) / 8`` bytes with vectorized shifts, so the working set
  stays proportional to the payload;
* a **bit-matrix fallback** for the remaining widths (9, 11, 13, 15),
  which expands each value into its bits before calling ``np.packbits`` —
  correct but ~``bits``x the payload in temporaries.

The fast path matters: the lookup kernels in :mod:`repro.kernels` unpack
codes on the serving path, where the fallback's ``count x bits`` uint64
bit matrix (~24x the payload for 3-bit codes on a 768x768 layer) would
dominate the latency the kernel is meant to remove.
"""

from __future__ import annotations

import math

import numpy as np


def packed_nbytes(count: int, bits: int) -> int:
    """Number of bytes needed to store ``count`` values of ``bits`` width."""
    _check_bits(bits)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return (count * bits + 7) // 8


def _group_geometry(bits: int) -> tuple[int, int] | None:
    """(values per group, bytes per group) for the fast path, else None.

    A group is the smallest run of values whose packed form is whole bytes:
    ``lcm(bits, 8) // bits`` values in ``lcm(bits, 8) // 8`` bytes.  The
    fast path requires the group to fit one uint64 word.
    """
    gcd = math.gcd(bits, 8)
    values_per_group = 8 // gcd
    bytes_per_group = bits // gcd
    if bits * values_per_group > 64:
        return None
    return values_per_group, bytes_per_group


def pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack an array of unsigned integers into a dense little-endian bitstream.

    Values must be a non-negative integer (or boolean) array and fit in
    ``bits`` bits.  Float arrays are rejected rather than silently
    truncated, and negative values are rejected rather than wrapped through
    the unsigned conversion.  The inverse is :func:`unpack_bits`.
    """
    _check_bits(bits)
    array = np.asarray(values)
    if array.dtype != np.bool_ and not np.issubdtype(array.dtype, np.integer):
        raise TypeError(
            f"pack_bits requires an integer array, got dtype {array.dtype}; "
            "round or cast explicitly before packing"
        )
    flat = array.ravel()
    if flat.size:
        low = int(flat.min())
        if low < 0:
            raise ValueError(
                f"pack_bits requires non-negative values, got {low}"
            )
        high = int(flat.max())
        if high >= (1 << bits):
            raise ValueError(f"value {high} does not fit in {bits} bits")
    flat = np.ascontiguousarray(flat, dtype=np.uint64)
    geometry = _group_geometry(bits)
    if geometry is None:
        return _pack_bits_bitmatrix(flat, bits)
    return _pack_bits_grouped(flat, bits, *geometry)


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: recover ``count`` values from ``data``."""
    _check_bits(bits)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    needed = packed_nbytes(count, bits)
    if len(data) < needed:
        raise ValueError(f"need {needed} bytes for {count} x {bits}-bit values, got {len(data)}")
    raw = np.frombuffer(data, dtype=np.uint8, count=needed)
    geometry = _group_geometry(bits)
    if geometry is None:
        return _unpack_bits_bitmatrix(raw, bits, count)
    return _unpack_bits_grouped(raw, bits, count, *geometry)


# --------------------------------------------------------------- fast path
def _pack_bits_grouped(
    flat: np.ndarray, bits: int, values_per_group: int, bytes_per_group: int
) -> bytes:
    if flat.size == 0:
        return b""
    groups = -(-flat.size // values_per_group)
    padded = np.zeros(groups * values_per_group, dtype=np.uint64)
    padded[: flat.size] = flat
    shifts = (np.arange(values_per_group, dtype=np.uint64) * np.uint64(bits))
    words = np.bitwise_or.reduce(
        padded.reshape(groups, values_per_group) << shifts, axis=1
    )
    group_bytes = (
        words.astype("<u8", copy=False).view(np.uint8).reshape(groups, 8)[:, :bytes_per_group]
    )
    stream = np.ascontiguousarray(group_bytes).tobytes()
    return stream[: packed_nbytes(flat.size, bits)]


def _unpack_bits_grouped(
    raw: np.ndarray, bits: int, count: int, values_per_group: int, bytes_per_group: int
) -> np.ndarray:
    if count == 0:
        return np.empty(0, dtype=np.int64)
    groups = -(-count // values_per_group)
    padded = np.zeros(groups * bytes_per_group, dtype=np.uint8)
    padded[: raw.size] = raw
    buffer = np.zeros((groups, 8), dtype=np.uint8)
    buffer[:, :bytes_per_group] = padded.reshape(groups, bytes_per_group)
    words = buffer.view("<u8").astype(np.uint64, copy=False).reshape(groups)
    shifts = np.arange(values_per_group, dtype=np.uint64) * np.uint64(bits)
    mask = np.uint64((1 << bits) - 1)
    values = (words[:, None] >> shifts) & mask
    return values.reshape(-1)[:count].astype(np.int64)


# ---------------------------------------------------------------- fallback
def _pack_bits_bitmatrix(flat: np.ndarray, bits: int) -> bytes:
    """Reference implementation: expand to bits (LSB first), np.packbits."""
    bit_matrix = (flat[:, None] >> np.arange(bits, dtype=np.uint64)) & np.uint64(1)
    return np.packbits(bit_matrix.astype(np.uint8).ravel(), bitorder="little").tobytes()


def _unpack_bits_bitmatrix(raw: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Reference implementation: np.unpackbits, recombine bit columns."""
    bit_stream = np.unpackbits(raw, bitorder="little")[: count * bits]
    bit_matrix = bit_stream.reshape(count, bits).astype(np.uint64)
    weights = np.uint64(1) << np.arange(bits, dtype=np.uint64)
    return (bit_matrix * weights).sum(axis=1).astype(np.int64)


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
