"""Dense bit-packing of small unsigned integers.

GOBO stores each "G"-group weight as a ``bits``-wide index (2..8 bits).  The
paper's compression ratios assume these indexes are stored densely, so the
storage format packs them back to back into a byte stream with no padding
between values (only the final byte may carry unused trailing bits).
"""

from __future__ import annotations

import numpy as np


def packed_nbytes(count: int, bits: int) -> int:
    """Number of bytes needed to store ``count`` values of ``bits`` width."""
    _check_bits(bits)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return (count * bits + 7) // 8


def pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack an array of unsigned integers into a dense little-endian bitstream.

    Values must fit in ``bits`` bits.  The inverse is :func:`unpack_bits`.
    """
    _check_bits(bits)
    flat = np.ascontiguousarray(values, dtype=np.uint64).ravel()
    if flat.size and int(flat.max()) >= (1 << bits):
        raise ValueError(f"value {int(flat.max())} does not fit in {bits} bits")
    # Expand each value into its bits (LSB first), then let numpy pack them.
    bit_matrix = (flat[:, None] >> np.arange(bits, dtype=np.uint64)) & np.uint64(1)
    return np.packbits(bit_matrix.astype(np.uint8).ravel(), bitorder="little").tobytes()


def unpack_bits(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: recover ``count`` values from ``data``."""
    _check_bits(bits)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    needed = packed_nbytes(count, bits)
    if len(data) < needed:
        raise ValueError(f"need {needed} bytes for {count} x {bits}-bit values, got {len(data)}")
    raw = np.frombuffer(data, dtype=np.uint8, count=needed)
    bit_stream = np.unpackbits(raw, bitorder="little")[: count * bits]
    bit_matrix = bit_stream.reshape(count, bits).astype(np.uint64)
    weights = np.uint64(1) << np.arange(bits, dtype=np.uint64)
    return (bit_matrix * weights).sum(axis=1).astype(np.int64)


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
