"""Crash-safe archive writes: write-tmp, fsync, rename.

``np.savez`` writes the destination in place, so a crash (or a full disk)
mid-write leaves a truncated zip that readers then have to treat as corrupt.
:func:`atomic_savez` instead writes to a temporary sibling, flushes it to
stable storage, and atomically renames it over the destination — readers see
either the old complete archive or the new complete archive, never a torn
one.  The directory entry is fsynced as well so the rename itself survives a
power loss.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path
from typing import Mapping

import numpy as np


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry to stable storage (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_savez(path: str | Path, payload: Mapping[str, np.ndarray]) -> int:
    """Atomically write ``payload`` as an npz archive at ``path``.

    The caller is responsible for suffix normalization; ``path`` is written
    exactly as given.  Returns the byte size of the file written.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **dict(payload))
            handle.flush()
            os.fsync(handle.fileno())
        size = tmp.stat().st_size
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(path.parent)
    return size
