"""Crash-safe, byte-deterministic archive writes: write-tmp, fsync, rename.

``np.savez`` writes the destination in place, so a crash (or a full disk)
mid-write leaves a truncated zip that readers then have to treat as corrupt.
:func:`atomic_savez` instead writes to a temporary sibling, flushes it to
stable storage, and atomically renames it over the destination — readers see
either the old complete archive or the new complete archive, never a torn
one.  The directory entry is fsynced as well so the rename itself survives a
power loss.

The zip is also **byte-deterministic**: ``np.savez`` stamps each member with
the wall-clock DOS timestamp (2-second granularity), so two identical
payloads saved moments apart produce different files.  Here every member
carries a fixed epoch timestamp and fixed attributes, so identical payloads
produce identical bytes — which is what lets the test suite assert that
archives are *bit-identical* across worker counts and tracing modes, and
lets golden fixtures be regenerated reproducibly.  The member layout
(``<name>.npy`` entries in payload order, numpy ``.npy`` v1 encoding,
ZIP_STORED) matches ``np.savez``, so ``np.load`` reads the result
unchanged.
"""

from __future__ import annotations

import os
import uuid
import zipfile
from pathlib import Path
from typing import IO, Mapping

import numpy as np
from numpy.lib import format as _npformat

#: The DOS-epoch timestamp stamped on every archive member (determinism).
ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry to stable storage (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_npz(handle: IO[bytes], payload: Mapping[str, np.ndarray]) -> None:
    """Write ``payload`` as a byte-deterministic npz stream to ``handle``.

    Mirrors ``np.savez`` (one ``<name>.npy`` member per array, ZIP_STORED)
    but stamps every member with :data:`ZIP_EPOCH` and fixed attributes so
    identical payloads always yield identical bytes.
    """
    with zipfile.ZipFile(handle, "w", zipfile.ZIP_STORED, allowZip64=True) as archive:
        for name, value in payload.items():
            info = zipfile.ZipInfo(f"{name}.npy", date_time=ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_STORED
            info.create_system = 0
            info.external_attr = 0o644 << 16
            with archive.open(info, "w", force_zip64=True) as member:
                _npformat.write_array(
                    member, np.asanyarray(value), allow_pickle=False
                )


def durable_append(path: str | Path, data: bytes) -> int:
    """Append ``data`` to ``path`` and flush it to stable storage.

    The journal's write primitive: open in append mode, write, fsync.  An
    append is not atomic the way a rename is — a crash can still leave a
    torn final record — but because each journal record carries its own
    checksum, a torn tail is detected and discarded on read; everything
    fsynced before it is durable.  Returns the number of bytes appended.
    """
    path = Path(path)
    created = not path.exists()
    with open(path, "ab") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    if created:
        fsync_directory(path.parent)
    return len(data)


def atomic_savez(path: str | Path, payload: Mapping[str, np.ndarray]) -> int:
    """Atomically write ``payload`` as an npz archive at ``path``.

    The caller is responsible for suffix normalization; ``path`` is written
    exactly as given.  Returns the byte size of the file written.  Identical
    payloads produce byte-identical archives (see :func:`write_npz`).
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
    try:
        with open(tmp, "wb") as handle:
            write_npz(handle, payload)
            handle.flush()
            os.fsync(handle.fileno())
        size = tmp.stat().st_size
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(path.parent)
    return size
