"""Shared utilities: RNG handling, bit packing, table rendering, serialization."""

from repro.utils.bitpack import pack_bits, packed_nbytes, unpack_bits
from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs
from repro.utils.tables import format_table

__all__ = [
    "derive_rng",
    "ensure_rng",
    "format_table",
    "pack_bits",
    "packed_nbytes",
    "spawn_rngs",
    "unpack_bits",
]
