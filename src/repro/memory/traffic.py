"""Off-chip traffic accounting for one inference pass.

Because BERT is dominated by FC layers over a short hidden-state vector
(Section II), weights must be streamed from off-chip memory every inference
while activations stay small.  This module converts a model configuration
plus a compression scheme into per-inference byte traffic, feeding the
energy model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import BertConfig
from repro.models.footprint import BYTES_PER_FP32, fc_weight_count, memory_footprint


@dataclass(frozen=True)
class TrafficReport:
    """Bytes moved per inference, by source."""

    weight_bytes: int
    embedding_bytes: int
    activation_bytes: int

    @property
    def offchip_bytes(self) -> int:
        """Weights and embeddings stream from DRAM."""
        return self.weight_bytes + self.embedding_bytes

    @property
    def total_bytes(self) -> int:
        return self.offchip_bytes + self.activation_bytes


def fp32_traffic(config: BertConfig, sequence_length: int = 128) -> TrafficReport:
    """Per-inference traffic of the uncompressed FP32 model."""
    footprint = memory_footprint(config, sequence_length)
    # Embedding tables are read per token (one row each from word/position/
    # type tables), not streamed wholesale.
    embedding_row_bytes = 3 * config.hidden_size * BYTES_PER_FP32
    return TrafficReport(
        weight_bytes=footprint.weight_bytes,
        embedding_bytes=embedding_row_bytes * sequence_length,
        activation_bytes=footprint.activation_bytes,
    )


def compressed_traffic(
    config: BertConfig,
    weight_bits: float,
    embedding_bits: float,
    sequence_length: int = 128,
) -> TrafficReport:
    """Per-inference traffic with weights/embeddings stored compressed.

    ``weight_bits``/``embedding_bits`` are *effective* bits per value (e.g.
    GOBO's 3-bit indexes plus outlier and table overhead come to ~3.1).
    """
    if weight_bits <= 0 or embedding_bits <= 0:
        raise ValueError("effective bit widths must be positive")
    base = fp32_traffic(config, sequence_length)
    weight_bytes = int(fc_weight_count(config) * weight_bits / 8)
    embedding_fraction = embedding_bits / 32.0  # row reads scale with this ratio
    return TrafficReport(
        weight_bytes=weight_bytes,
        embedding_bytes=int(base.embedding_bytes * embedding_fraction),
        activation_bytes=base.activation_bytes,
    )
