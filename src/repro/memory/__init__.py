"""Memory traffic and access-energy models (the paper's Section I motivation)."""

from repro.memory.energy import (
    EnergyModel,
    EnergyReport,
    compression_energy_report,
)
from repro.memory.traffic import TrafficReport, compressed_traffic, fp32_traffic

__all__ = [
    "EnergyModel",
    "EnergyReport",
    "TrafficReport",
    "compressed_traffic",
    "compression_energy_report",
    "fp32_traffic",
]
