"""Parametric memory-access energy model.

Section I of the paper motivates GOBO with the cost asymmetry of modern
memory systems: "off-chip memory accesses are two orders of magnitude more
expensive in terms of energy and latency compared to accesses to on-chip
memory."  This model makes that argument quantitative: given a traffic
breakdown (bytes streamed from DRAM vs. bytes served on-chip) it reports
energy, and thus the energy amplification a 10x-smaller model buys.

Default per-byte energies follow the commonly used 45nm figures (Horowitz,
ISSCC 2014): ~1.3 pJ/byte for a large SRAM access versus ~160 pJ/byte for
LPDDR DRAM — about 120x, matching the paper's "two orders of magnitude".
"""

from __future__ import annotations

from dataclasses import dataclass

PJ_PER_BYTE_DRAM = 160.0
PJ_PER_BYTE_SRAM = 1.3


@dataclass(frozen=True)
class EnergyModel:
    """Per-byte access energies, in picojoules."""

    dram_pj_per_byte: float = PJ_PER_BYTE_DRAM
    sram_pj_per_byte: float = PJ_PER_BYTE_SRAM

    def __post_init__(self) -> None:
        if self.dram_pj_per_byte <= 0 or self.sram_pj_per_byte <= 0:
            raise ValueError("per-byte energies must be positive")

    @property
    def offchip_ratio(self) -> float:
        """How much more expensive DRAM is than SRAM per byte."""
        return self.dram_pj_per_byte / self.sram_pj_per_byte

    def access_energy_pj(self, dram_bytes: int, sram_bytes: int = 0) -> float:
        """Total access energy for a traffic breakdown, in picojoules."""
        if dram_bytes < 0 or sram_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        return dram_bytes * self.dram_pj_per_byte + sram_bytes * self.sram_pj_per_byte


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one inference before and after compression."""

    baseline_pj: float
    compressed_pj: float

    @property
    def saving_ratio(self) -> float:
        if self.compressed_pj == 0:
            return float("inf")
        return self.baseline_pj / self.compressed_pj


def compression_energy_report(
    fp32_bytes: int,
    compressed_bytes: int,
    activation_bytes: int = 0,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Weight-streaming energy before/after compression.

    BERT inference is weight-bound (Table II: weights dwarf activations), so
    each inference streams the whole model from DRAM once; activations move
    on-chip.  Decompressed weights are consumed directly, so compressed
    streaming reads ``compressed_bytes`` instead of ``fp32_bytes``.
    """
    model = model or EnergyModel()
    return EnergyReport(
        baseline_pj=model.access_energy_pj(fp32_bytes, activation_bytes),
        compressed_pj=model.access_energy_pj(compressed_bytes, activation_bytes),
    )
