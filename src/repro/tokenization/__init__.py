"""Tokenization for the synthetic evaluation languages."""

from repro.tokenization.tokenizer import Encoding, Tokenizer
from repro.tokenization.vocab import CLS, MASK, PAD, SEP, SPECIAL_TOKENS, UNK, Vocabulary

__all__ = [
    "CLS",
    "Encoding",
    "MASK",
    "PAD",
    "SEP",
    "SPECIAL_TOKENS",
    "Tokenizer",
    "UNK",
    "Vocabulary",
]
