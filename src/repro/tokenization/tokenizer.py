"""Deterministic word-level tokenizer for the synthetic languages.

The synthetic tasks generate text over a closed vocabulary, so a whitespace
word tokenizer plays the role WordPiece plays for real BERT: it produces the
``[CLS] a ... [SEP] b ... [SEP]`` id sequences, attention masks and segment
ids the models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tokenization.vocab import Vocabulary


@dataclass(frozen=True)
class Encoding:
    """One encoded (pair of) sentence(s), fixed length."""

    input_ids: np.ndarray
    attention_mask: np.ndarray
    token_type_ids: np.ndarray


class Tokenizer:
    """Whitespace tokenizer over a fixed :class:`Vocabulary`."""

    def __init__(self, vocab: Vocabulary) -> None:
        self.vocab = vocab

    def tokenize(self, text: str) -> list[str]:
        return text.split()

    def encode(
        self,
        text_a: str,
        text_b: str | None = None,
        max_length: int = 64,
    ) -> Encoding:
        """Encode a sentence or sentence pair to fixed-length arrays.

        Layout matches BERT: ``[CLS] A [SEP]`` or ``[CLS] A [SEP] B [SEP]``,
        padded with ``[PAD]``; segment ids are 0 for A (incl. both leading
        specials) and 1 for B and its trailing ``[SEP]``.
        """
        if max_length < 4:
            raise ValueError(f"max_length must be >= 4, got {max_length}")
        tokens_a = self.tokenize(text_a)
        tokens_b = self.tokenize(text_b) if text_b is not None else []
        # Truncate the longer sequence first until the pair fits.
        budget = max_length - (3 if tokens_b else 2)
        while len(tokens_a) + len(tokens_b) > budget:
            if len(tokens_a) >= len(tokens_b):
                tokens_a = tokens_a[:-1]
            else:
                tokens_b = tokens_b[:-1]

        ids = [self.vocab.cls_id]
        segments = [0]
        ids.extend(self.vocab.id_of(t) for t in tokens_a)
        segments.extend([0] * len(tokens_a))
        ids.append(self.vocab.sep_id)
        segments.append(0)
        if tokens_b:
            ids.extend(self.vocab.id_of(t) for t in tokens_b)
            segments.extend([1] * len(tokens_b))
            ids.append(self.vocab.sep_id)
            segments.append(1)

        mask = [1] * len(ids)
        padding = max_length - len(ids)
        ids.extend([self.vocab.pad_id] * padding)
        segments.extend([0] * padding)
        mask.extend([0] * padding)
        return Encoding(
            input_ids=np.array(ids, dtype=np.int64),
            attention_mask=np.array(mask, dtype=np.int64),
            token_type_ids=np.array(segments, dtype=np.int64),
        )

    def encode_batch(
        self,
        pairs: list[tuple[str, str | None]],
        max_length: int = 64,
    ) -> Encoding:
        """Encode many examples into stacked arrays."""
        encodings = [self.encode(a, b, max_length) for a, b in pairs]
        return Encoding(
            input_ids=np.stack([e.input_ids for e in encodings]),
            attention_mask=np.stack([e.attention_mask for e in encodings]),
            token_type_ids=np.stack([e.token_type_ids for e in encodings]),
        )
