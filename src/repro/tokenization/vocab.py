"""Vocabulary with the special tokens the BERT input pipeline expects."""

from __future__ import annotations

from typing import Iterable

PAD, UNK, CLS, SEP, MASK = "[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"
SPECIAL_TOKENS = (PAD, UNK, CLS, SEP, MASK)


class Vocabulary:
    """A frozen token-to-id mapping; id 0 is always [PAD]."""

    def __init__(self, tokens: Iterable[str]) -> None:
        self._id_to_token: list[str] = list(SPECIAL_TOKENS)
        seen = set(self._id_to_token)
        for token in tokens:
            if token not in seen:
                seen.add(token)
                self._id_to_token.append(token)
        self._token_to_id = {tok: i for i, tok in enumerate(self._id_to_token)}

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP]

    def id_of(self, token: str) -> int:
        """Token id, falling back to [UNK] for unknown tokens."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, token_id: int) -> str:
        if not 0 <= token_id < len(self._id_to_token):
            raise IndexError(f"token id {token_id} out of range [0, {len(self)})")
        return self._id_to_token[token_id]

    def tokens(self) -> list[str]:
        """All tokens in id order."""
        return list(self._id_to_token)
