"""Supervised worker fleet: crash-isolated multi-process quantization.

The thread backend (:func:`repro.core.parallel.quantize_layers`) shares one
address space, so a SIGKILL, an OOM kill or a native-code crash takes down
the *whole run* — the durable journal limits the damage to "resume later",
but the process is still gone.  :func:`run_fleet_layers` is the
``backend="process"`` engine: a supervisor in the calling process leases
layers to N worker processes, and a worker dying (or wedging) mid-layer
costs only that layer's in-flight attempt, never the run.

Architecture (DESIGN.md §5g):

* **One duplex pipe per worker, no shared queue.**  A SIGKILLed process can
  leave a shared ``multiprocessing.Queue`` with a held lock or a torn item;
  a per-worker :func:`multiprocessing.Pipe` confines the damage to that
  worker's channel, which simply reads EOF.  The supervisor multiplexes
  with :func:`multiprocessing.connection.wait` over every pipe plus every
  process sentinel.
* **Leases through the journal.**  When a ``job_dir`` journal is attached
  (the durable runner does), every assignment appends a ``lease`` record
  (layer, worker id, pid, attempt, heartbeat deadline) and every death a
  ``lease-broken`` record.  Both are informational — resume derives state
  from ``layer-done``/``layer-failed`` alone — but ``repro jobs status``
  renders them as the fleet view.
* **Heartbeats.**  Each worker runs a daemon thread sending ``beat``
  messages every ``heartbeat_interval`` seconds; the supervisor keeps a
  :class:`~repro.jobs.watchdog.LivenessMonitor` ledger.  A worker silent
  past ``heartbeat_timeout`` is presumed wedged, SIGKILLed, and treated as
  dead.  Because the sender is a thread, a worker stuck in GIL-holding
  native code goes silent *by construction* — exactly the hang class the
  cooperative in-process watchdog cannot catch.  The sender also watches
  ``getppid()``: a worker orphaned by supervisor death exits immediately
  rather than leaking.
* **Reassignment before degradation.**  A dead worker's leased layer is
  retried on a surviving worker — with the same deterministic backoff
  jitter as in-place transient retries — up to ``max_reassignments`` times
  before the ``on_error`` policy fires (process death says nothing about
  the tensor).  If every worker dies, :class:`~repro.errors.WorkerCrashError`
  is raised.
* **Determinism.**  Workers execute the exact
  :class:`~repro.core.parallel.JobRunner` code the thread backend runs, and
  the supervisor assembles outcomes in job order, so archives are
  byte-identical across backend, worker count, and any kill-and-resume or
  mid-run worker-death schedule.
* **Observability.**  Workers record to worker-local JSONL traces
  (``worker-<id>.jsonl``; their sinks cannot span processes); the
  supervisor merges them back with
  :func:`~repro.obs.events.read_trace_lenient` — tolerant of the torn final
  line a SIGKILL legitimately leaves — and
  :func:`~repro.obs.recorder.replay`, so one trace and one metrics snapshot
  cover the whole run.

Fault injectors hold locks and cannot cross process boundaries, so the
fleet takes *fault specs* (the ``REPRO_FAULTS`` text format) and each
worker rebuilds its injector locally; stateful injectors therefore count
per worker, not globally.  :func:`current_worker_id` and
:func:`mute_heartbeat` are the hooks the process-level injectors
(``kill-worker``, ``mute-worker``, ``hang-worker``) use to target one
worker from inside it.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from pathlib import Path
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD
from repro.core.parallel import (
    JobRunner,
    LayerFailure,
    LayerJob,
    LayerOutcome,
    QuantizationReport,
    assemble_outcomes,
    resolve_layer_timeout,
    resolve_on_error,
    resolve_transient_retries,
    resolve_workers,
)
from repro.errors import QuantizationError, WorkerCrashError
from repro.jobs.journal import JobJournal
from repro.jobs.retry import DEFAULT_BACKOFF_BASE, backoff_delay
from repro.jobs.watchdog import LivenessMonitor, Watchdog
from repro.obs import recorder as obs
from repro.obs.events import read_trace_lenient
from repro.obs.sinks import JsonlSink

#: Environment knobs (all overridable per call).
HEARTBEAT_INTERVAL_ENV = "REPRO_HEARTBEAT_INTERVAL"
HEARTBEAT_TIMEOUT_ENV = "REPRO_HEARTBEAT_TIMEOUT"
MAX_REASSIGNMENTS_ENV = "REPRO_MAX_REASSIGNMENTS"
#: Set in each worker's environment to its worker id (fault targeting).
WORKER_ID_ENV = "REPRO_FLEET_WORKER"

DEFAULT_HEARTBEAT_INTERVAL = 0.2
DEFAULT_HEARTBEAT_TIMEOUT = 10.0
DEFAULT_MAX_REASSIGNMENTS = 3


def _positive_float_env(env: str, default: float, what: str) -> float:
    raw = os.environ.get(env)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise QuantizationError(f"{env} must be a number, got {raw!r}") from None
    if not value > 0:
        raise QuantizationError(f"{what} must be > 0 seconds, got {value!r}")
    return value


def default_heartbeat_interval() -> float:
    return _positive_float_env(
        HEARTBEAT_INTERVAL_ENV, DEFAULT_HEARTBEAT_INTERVAL, "heartbeat interval"
    )


def default_heartbeat_timeout() -> float:
    return _positive_float_env(
        HEARTBEAT_TIMEOUT_ENV, DEFAULT_HEARTBEAT_TIMEOUT, "heartbeat timeout"
    )


def default_max_reassignments() -> int:
    raw = os.environ.get(MAX_REASSIGNMENTS_ENV)
    if not raw:
        return DEFAULT_MAX_REASSIGNMENTS
    try:
        value = int(raw)
    except ValueError:
        raise QuantizationError(
            f"{MAX_REASSIGNMENTS_ENV} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise QuantizationError(f"max reassignments must be >= 0, got {value}")
    return value


def _mp_context():
    """Fork when the platform offers it (cheap, inherits state); else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _portable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a summary that does.

    Worker exceptions travel over a pipe; an exception holding an open file
    or a lock would kill the *supervisor* with a pickling error — the one
    process that must not die.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 — any pickling failure means "summarize"
        return QuantizationError(f"{type(exc).__name__}: {exc}")


# ------------------------------------------------------------------ worker side

@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs besides the weights (picklable for spawn)."""

    log_prob_threshold: float
    method: str
    max_iterations: int
    on_error: str
    validation: str
    layer_timeout: float | None
    transient_retries: int
    transient_backoff: float
    fault_spec: str
    heartbeat_interval: float
    obs_dir: str


class _HeartbeatSender:
    """Worker-side daemon thread: beats, orphan watch, mute hook."""

    def __init__(self, send: Callable[[tuple], None], worker_id: int, interval: float):
        self.worker_id = worker_id
        self.interval = interval
        self._send = send
        self._stop = threading.Event()
        self._muted = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name=f"repro-fleet-beat-{self.worker_id}", daemon=True
        )
        self._thread.start()

    def mute(self) -> None:
        """Stop beating without stopping the worker (heartbeat-silence fault)."""
        self._muted.set()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None

    def _run(self) -> None:
        parent = os.getppid()
        while not self._stop.wait(self.interval):
            if os.getppid() != parent:
                # Orphaned: the supervisor died. Exit rather than leak.
                os._exit(1)
            if self._muted.is_set():
                continue
            try:
                self._send(("beat", self.worker_id))
            except (OSError, ValueError):
                os._exit(1)  # pipe gone: nobody is listening anymore


@dataclass
class WorkerRuntime:
    """Per-process identity of a fleet worker (set by :func:`_worker_main`)."""

    worker_id: int
    heartbeat: _HeartbeatSender


_runtime: WorkerRuntime | None = None


def current_worker_id() -> int | None:
    """This process's fleet worker id, or None outside a fleet worker.

    Falls back to the :data:`WORKER_ID_ENV` environment variable so code in
    a worker's *sub*process (or a test) can still identify the worker.
    """
    if _runtime is not None:
        return _runtime.worker_id
    raw = os.environ.get(WORKER_ID_ENV, "")
    try:
        return int(raw) if raw else None
    except ValueError:
        return None


def mute_heartbeat() -> bool:
    """Silence this worker's heartbeats; True if a fleet worker, else False.

    The hook behind the ``mute-worker`` fault: the worker keeps running but
    looks dead to the supervisor, which must SIGKILL it and reassign.
    """
    if _runtime is None:
        return False
    _runtime.heartbeat.mute()
    return True


def _worker_main(
    worker_id: int,
    config: WorkerConfig,
    state: Mapping[str, np.ndarray],
    conn,
    aux: Mapping[str, np.ndarray] | None = None,
) -> None:
    """Worker process entry point: recv tasks, run them, send outcomes.

    Group-delivered SIGINT/SIGTERM are ignored — drain decisions belong to
    the supervisor, which tells workers to stop (or dies, which the
    heartbeat thread's ``getppid`` watch converts into a prompt exit).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    os.environ[WORKER_ID_ENV] = str(worker_id)
    # A forked worker inherits the supervisor's sinks, scopes and span
    # stack; shed them before installing the worker-local sink.
    obs.reset()

    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        with send_lock:
            conn.send(message)

    heartbeat = _HeartbeatSender(send, worker_id, config.heartbeat_interval)
    global _runtime
    _runtime = WorkerRuntime(worker_id=worker_id, heartbeat=heartbeat)

    sink = obs.install(JsonlSink(Path(config.obs_dir) / f"worker-{worker_id}.jsonl"))
    # Injectors are rebuilt from the text spec in each worker: injector
    # objects hold locks and cannot cross the process boundary.
    from repro.testing.faults import injector_from_spec

    injector = (
        injector_from_spec(config.fault_spec) if config.fault_spec.strip() else None
    )
    watchdog = (
        Watchdog(poll_interval=min(0.02, config.layer_timeout / 5)).start()
        if config.layer_timeout is not None
        else None
    )
    runner = JobRunner(
        state=state,
        log_prob_threshold=config.log_prob_threshold,
        method=config.method,
        max_iterations=config.max_iterations,
        on_error=config.on_error,
        validation=config.validation,
        fault_injector=injector,
        layer_timeout=config.layer_timeout,
        transient_retries=config.transient_retries,
        transient_backoff=config.transient_backoff,
        watchdog=watchdog,
        aux=aux,
    )
    heartbeat.start()
    try:
        send(("ready", worker_id, os.getpid()))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, index, job = message
            try:
                with obs.span("fleet.task", worker=worker_id, layer=job.name):
                    outcome = runner.run(index, job)
            except BaseException as exc:  # noqa: BLE001 — ships to supervisor
                send(("error", worker_id, index, _portable_error(exc)))
                continue
            send(("done", worker_id, index, outcome))
    except (EOFError, OSError):
        pass  # supervisor went away mid-recv/send: exit quietly
    finally:
        heartbeat.stop()
        if watchdog is not None:
            watchdog.stop()
        obs.uninstall(sink)
        sink.close()


# -------------------------------------------------------------- supervisor side

@dataclass
class _WorkerHandle:
    worker_id: int
    process: multiprocessing.process.BaseProcess
    conn: connection.Connection
    pid: int | None = None
    ready: bool = False
    task: "_PendingTask | None" = None
    alive: bool = True


@dataclass
class _PendingTask:
    index: int
    job: LayerJob
    attempt: int = 0
    not_before: float = 0.0


def run_fleet_layers(
    state: Mapping[str, np.ndarray],
    jobs: Iterable[LayerJob],
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    method: str = "gobo",
    max_iterations: int = 50,
    workers: int | None = 1,
    on_error: str | None = "fail",
    validation: str = "strict",
    fault_injector=None,
    layer_timeout: float | None = None,
    transient_retries: int | None = None,
    transient_backoff: float = DEFAULT_BACKOFF_BASE,
    cancel: "threading.Event | None" = None,
    on_layer_complete: "Callable[[LayerOutcome], None] | None" = None,
    aux: Mapping[str, np.ndarray] | None = None,
    *,
    journal: JobJournal | None = None,
    fault_spec: str | None = None,
    heartbeat_interval: float | None = None,
    heartbeat_timeout: float | None = None,
    max_reassignments: int | None = None,
    obs_dir: str | Path | None = None,
) -> tuple[dict, dict[str, int], QuantizationReport]:
    """Engine-compatible supervised process-pool run (see module docstring).

    Drop-in for :func:`~repro.core.parallel.quantize_layers` (which
    delegates here for ``backend="process"``); the keyword-only parameters
    configure supervision.  ``fault_spec`` defaults to the ``REPRO_FAULTS``
    environment variable; ``obs_dir`` is where worker-local traces land
    (a temporary directory, merged and discarded, when not given).
    Raises :class:`~repro.errors.WorkerCrashError` when every worker dies,
    or when one dies past its layer's reassignment budget under
    ``on_error="fail"``.
    """
    jobs = list(jobs)
    missing = [job.name for job in jobs if job.name not in state]
    if missing:
        raise QuantizationError(f"state dict is missing tensors: {missing}")
    if fault_injector is not None:
        raise QuantizationError(
            "fault_injector objects cannot cross process boundaries; "
            "export a REPRO_FAULTS spec instead (see repro.testing.faults)"
        )
    workers = resolve_workers(workers)
    on_error = resolve_on_error(on_error)
    layer_timeout = resolve_layer_timeout(layer_timeout)
    transient_retries = resolve_transient_retries(transient_retries)
    if heartbeat_interval is None:
        heartbeat_interval = default_heartbeat_interval()
    if heartbeat_timeout is None:
        heartbeat_timeout = default_heartbeat_timeout()
    if max_reassignments is None:
        max_reassignments = default_max_reassignments()
    if not heartbeat_interval > 0:
        raise QuantizationError(
            f"heartbeat interval must be > 0 seconds, got {heartbeat_interval!r}"
        )
    if not heartbeat_timeout > heartbeat_interval:
        raise QuantizationError(
            f"heartbeat timeout ({heartbeat_timeout!r}s) must exceed the "
            f"heartbeat interval ({heartbeat_interval!r}s)"
        )
    if fault_spec is None:
        fault_spec = os.environ.get("REPRO_FAULTS", "")
    if fault_spec.strip():
        # Validate supervisor-side so a typo fails the run loudly instead of
        # crashing (or silently disarming) every worker.
        from repro.testing.faults import injector_from_spec

        try:
            injector_from_spec(fault_spec)
        except ValueError as exc:
            raise QuantizationError(f"bad fault spec for fleet workers: {exc}") from exc

    if not jobs:
        with obs.scope() as scoped:
            report = QuantizationReport(
                workers=workers,
                on_error=on_error,
                layer_timeout=layer_timeout,
                backend="process",
            )
            quantized, iterations = assemble_outcomes([], report)
        report.metrics = scoped.snapshot()
        return quantized, iterations, report

    obs_cleanup = None
    if obs_dir is None:
        obs_cleanup = tempfile.TemporaryDirectory(prefix="repro-fleet-obs-")
        obs_dir = Path(obs_cleanup.name)
    else:
        obs_dir = Path(obs_dir)
        obs_dir.mkdir(parents=True, exist_ok=True)

    n = min(workers, len(jobs))
    ctx = _mp_context()
    monitor = LivenessMonitor(timeout=heartbeat_timeout)
    config = WorkerConfig(
        log_prob_threshold=log_prob_threshold,
        method=method,
        max_iterations=max_iterations,
        on_error=on_error,
        validation=validation,
        layer_timeout=layer_timeout,
        transient_retries=transient_retries,
        transient_backoff=transient_backoff,
        fault_spec=fault_spec,
        heartbeat_interval=heartbeat_interval,
        obs_dir=str(obs_dir),
    )
    # Workers only need the tensors they might quantize (and any per-layer
    # method side data for those same layers).
    needed = {job.name: state[job.name] for job in jobs}
    needed_aux = (
        None
        if aux is None
        else {job.name: aux[job.name] for job in jobs if job.name in aux}
    )

    pending: deque[_PendingTask] = deque(
        _PendingTask(index, job) for index, job in enumerate(jobs)
    )
    outcomes: dict[int, LayerOutcome] = {}
    handles: list[_WorkerHandle] = []
    worker_deaths = 0
    reassignments = 0
    error: BaseException | None = None
    tick = min(heartbeat_interval / 2.0, 0.05)

    def finish(index: int, outcome: LayerOutcome) -> None:
        nonlocal error
        outcomes[index] = outcome
        if on_layer_complete is not None:
            try:
                on_layer_complete(outcome)
            except BaseException as exc:  # noqa: BLE001 — durable storage failed
                error = exc  # aborts the run, matching the thread backend

    def next_runnable(now: float) -> _PendingTask | None:
        for position, task in enumerate(pending):
            if task.not_before <= now:
                del pending[position]
                return task
        return None

    def mark_dead(handle: _WorkerHandle, reason: str) -> None:
        nonlocal error, worker_deaths, reassignments
        if not handle.alive:
            return
        handle.alive = False
        worker_deaths += 1
        monitor.forget(handle.worker_id)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover — already closed
            pass
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)
        obs.counter("fleet.worker_deaths", worker=handle.worker_id, reason=reason)
        task = handle.task
        handle.task = None
        if task is None:
            return
        job = task.job
        crash = WorkerCrashError(
            f"fleet worker {handle.worker_id} (pid {handle.pid}) died "
            f"mid-layer {job.name!r}: {reason}"
        )
        survivors = any(h.alive for h in handles)
        drained = cancel is not None and cancel.is_set()
        reassign = (
            survivors and not drained and task.attempt < max_reassignments
        )
        if journal is not None:
            journal.append(
                {
                    "type": "lease-broken",
                    "name": job.name,
                    "worker": handle.worker_id,
                    "pid": handle.pid,
                    "reason": reason,
                    "reassigned": reassign,
                }
            )
        if drained:
            finish(task.index, LayerOutcome(job=job, cancelled=True))
            return
        if not survivors:
            error = WorkerCrashError(
                f"every fleet worker died; last was worker {handle.worker_id} "
                f"({reason}) while quantizing {job.name!r} — "
                f"resume the job to continue from the journal"
            )
            return
        if reassign:
            # Same deterministic jitter as in-place transient retries: the
            # crash is transient from the layer's point of view.
            obs.counter(
                "engine.retry",
                layer=job.name,
                bits=job.bits,
                attempt=task.attempt + 1,
                error="WorkerCrashError",
            )
            obs.counter("fleet.reassignments", layer=job.name)
            reassignments += 1
            pending.append(
                _PendingTask(
                    index=task.index,
                    job=job,
                    attempt=task.attempt + 1,
                    not_before=time.monotonic()
                    + backoff_delay(task.attempt, base=transient_backoff, key=job.name),
                )
            )
            return
        # Reassignment budget exhausted: the on_error policy decides.
        if on_error == "fail":
            error = crash
            return
        finish(
            task.index,
            LayerOutcome(
                job=job,
                failure=LayerFailure(
                    name=job.name,
                    bits=job.bits,
                    action="skip" if on_error == "skip" else "fp32-fallback",
                    error_type=type(crash).__name__,
                    message=str(crash),
                    attempts=(job.bits,),
                    transient_retries=task.attempt,
                ),
            ),
        )

    def handle_message(handle: _WorkerHandle, message: tuple) -> None:
        nonlocal error
        kind = message[0]
        if kind == "beat":
            monitor.beat(handle.worker_id)
        elif kind == "ready":
            handle.ready = True
            handle.pid = message[2]
            monitor.beat(handle.worker_id)
        elif kind == "done":
            _, _, index, outcome = message
            handle.task = None
            monitor.beat(handle.worker_id)
            finish(index, outcome)
        elif kind == "error":
            _, _, index, exc = message
            handle.task = None
            error = exc

    try:
        with obs.scope() as scoped:
            obs.gauge("engine.workers", n)
            obs.gauge("engine.queue.jobs", len(jobs))
            with obs.span("engine.run", backend="process") as engine_span:
                for worker_id in range(n):
                    parent_conn, child_conn = ctx.Pipe(duplex=True)
                    process = ctx.Process(
                        target=_worker_main,
                        args=(worker_id, config, needed, child_conn, needed_aux),
                        name=f"repro-fleet-{worker_id}",
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    handles.append(
                        _WorkerHandle(
                            worker_id=worker_id, process=process, conn=parent_conn
                        )
                    )
                    monitor.beat(worker_id)  # spawn counts as the first beat
                try:
                    while len(outcomes) < len(jobs) and error is None:
                        now = time.monotonic()
                        if cancel is not None and cancel.is_set():
                            # Drain: unstarted layers are cancelled; leased
                            # layers finish and are journaled normally.
                            while pending:
                                task = pending.popleft()
                                finish(
                                    task.index,
                                    LayerOutcome(job=task.job, cancelled=True),
                                )
                            if len(outcomes) >= len(jobs) or error is not None:
                                break
                        for handle in handles:
                            if not (
                                handle.alive and handle.ready and handle.task is None
                            ):
                                continue
                            task = next_runnable(now)
                            if task is None:
                                break
                            handle.task = task
                            try:
                                handle.conn.send(("task", task.index, task.job))
                            except (OSError, ValueError):
                                mark_dead(handle, "pipe broke on task send")
                                continue
                            obs.counter(
                                "fleet.leases",
                                layer=task.job.name,
                                worker=handle.worker_id,
                                attempt=task.attempt,
                            )
                            if journal is not None:
                                journal.append(
                                    {
                                        "type": "lease",
                                        "name": task.job.name,
                                        "bits": task.job.bits,
                                        "worker": handle.worker_id,
                                        "pid": handle.pid,
                                        "attempt": task.attempt,
                                        "deadline": time.time() + heartbeat_timeout,
                                    }
                                )
                        if len(outcomes) >= len(jobs) or error is not None:
                            break
                        alive = [h for h in handles if h.alive]
                        if not alive:
                            if error is None:
                                error = WorkerCrashError(
                                    "every fleet worker died before the run finished"
                                )
                            break
                        wait_for = tick
                        if pending and not any(
                            t.not_before <= now for t in pending
                        ):
                            soonest = min(t.not_before for t in pending)
                            wait_for = min(tick, max(0.001, soonest - now))
                        by_conn = {h.conn: h for h in alive}
                        by_sentinel = {h.process.sentinel: h for h in alive}
                        ready_objects = connection.wait(
                            list(by_conn) + list(by_sentinel), timeout=wait_for
                        )
                        for obj in ready_objects:
                            handle = by_conn.get(obj)
                            if handle is None:
                                continue
                            while handle.alive:
                                try:
                                    if not handle.conn.poll():
                                        break
                                    message = handle.conn.recv()
                                except (EOFError, OSError):
                                    mark_dead(handle, "pipe closed (worker died)")
                                    break
                                handle_message(handle, message)
                        for obj in ready_objects:
                            handle = by_sentinel.get(obj)
                            if handle is not None and handle.alive:
                                # Drain any final messages racing the exit.
                                while True:
                                    try:
                                        if not handle.conn.poll():
                                            break
                                        handle_message(handle, handle.conn.recv())
                                    except (EOFError, OSError):
                                        break
                                mark_dead(handle, "process exited unexpectedly")
                        for worker_id in monitor.silent():
                            handle = handles[worker_id]
                            if handle.alive:
                                mark_dead(
                                    handle,
                                    f"no heartbeat for {heartbeat_timeout:g}s",
                                )
                finally:
                    for handle in handles:
                        if handle.alive:
                            try:
                                handle.conn.send(("stop",))
                            except (OSError, ValueError):
                                pass
                    for handle in handles:
                        handle.process.join(timeout=5.0)
                        if handle.process.is_alive():
                            handle.process.kill()
                            handle.process.join(timeout=5.0)
                        try:
                            handle.conn.close()
                        except OSError:
                            pass
            # Merge worker-local traces so one trace + one snapshot cover
            # the run; lenient because SIGKILLed workers leave torn tails.
            merged = torn = 0
            for worker_id in range(n):
                trace_path = Path(obs_dir) / f"worker-{worker_id}.jsonl"
                if not trace_path.exists():
                    continue
                try:
                    events, skipped = read_trace_lenient(trace_path)
                except OSError:  # pragma: no cover — unreadable trace
                    continue
                merged += obs.replay(events)
                torn += skipped
            if merged:
                obs.counter("fleet.worker_events_merged", merged)
            if torn:
                obs.counter("fleet.worker_events_torn", torn)
            if error is not None:
                raise error
            report = QuantizationReport(
                workers=workers,
                wall_seconds=engine_span.duration,
                on_error=on_error,
                layer_timeout=layer_timeout,
                backend="process",
                worker_deaths=worker_deaths,
                reassignments=reassignments,
            )
            quantized, iterations = assemble_outcomes(
                [outcomes[index] for index in range(len(jobs))], report
            )
        report.metrics = scoped.snapshot()
        return quantized, iterations, report
    finally:
        if obs_cleanup is not None:
            obs_cleanup.cleanup()
