"""Graceful interruption: drain on the first signal, hard-exit on the second.

A durable run should treat Ctrl-C (SIGINT) and a supervisor's SIGTERM as a
request to *stop cleanly*: stop starting new layers, let in-flight layers
finish (their shards and journal records land as usual), flush the
``interrupted`` journal record, and exit with :data:`EXIT_INTERRUPTED` so
callers and shell scripts can distinguish "resume me later" from success
and from failure.  A second signal means "stop NOW" and hard-exits with the
conventional ``128 + signum`` code without any draining.

Exit-code contract (documented in DESIGN.md §5d and README):

* ``0`` — run completed (possibly with degraded layers, as before),
* ``75`` — :data:`EXIT_INTERRUPTED` (BSD ``EX_TEMPFAIL``): gracefully
  interrupted, the job directory is valid, rerun with ``--resume``,
* ``128+signum`` (``130``/``143``) — second signal, hard exit.

Signal handlers can only be installed from the main thread; construct
:class:`GracefulInterrupt` there (the CLI does).  The ``cancel`` event it
exposes is what :func:`repro.core.parallel.quantize_layers` polls before
starting each layer.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from types import FrameType

#: Exit code of a gracefully interrupted run (BSD sysexits EX_TEMPFAIL):
#: the job is incomplete but resumable.
EXIT_INTERRUPTED = 75

#: Signals a durable run drains on.
DRAIN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class GracefulInterrupt:
    """Context manager wiring SIGINT/SIGTERM to a drain event.

    Usage::

        with GracefulInterrupt() as interrupt:
            quantized = durable_quantize_state_dict(..., cancel=interrupt.event)
        if interrupt.triggered:
            sys.exit(EXIT_INTERRUPTED)

    The first signal sets :attr:`event` (and notes which signal in
    :attr:`signum`); the second calls ``os._exit(128 + signum)``
    immediately — no draining, no Python cleanup — because a user mashing
    Ctrl-C wants out *now*.
    """

    def __init__(self, signals: tuple[signal.Signals, ...] = DRAIN_SIGNALS):
        self.signals = signals
        self.event = threading.Event()
        self.signum: int | None = None
        self._count = 0
        self._previous: dict[int, object] = {}

    @property
    def triggered(self) -> bool:
        return self.event.is_set()

    def _handle(self, signum: int, _frame: FrameType | None) -> None:
        self._count += 1
        if self._count >= 2:
            os._exit(128 + signum)
        self.signum = signum
        self.event.set()
        print(
            f"received {signal.Signals(signum).name}: draining in-flight layers "
            f"(signal again to hard-exit); rerun with --resume to continue",
            file=sys.stderr,
            flush=True,
        )

    def __enter__(self) -> "GracefulInterrupt":
        for sig in self.signals:
            self._previous[sig] = signal.getsignal(sig)
            signal.signal(sig, self._handle)
        return self

    def __exit__(self, *_exc) -> None:
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()
