"""Transient-error classification and backoff for in-place layer retries.

Not every layer failure means the layer cannot quantize: an ``OSError``
reading a weight shard, a filesystem hiccup in a fault-injection test, a
momentary resource squeeze — these are *transient* and the right response
is to retry the same attempt, not to degrade the layer.  The engine
consults :func:`is_transient` before any ``on_error`` policy fires and
sleeps :func:`backoff_delay` between attempts (exponential with
deterministic jitter, so tests never flake on randomized sleeps).

This is deliberately distinct from the ``retry-higher-bits`` policy, which
is an *accuracy* fallback for layers that genuinely fail at the requested
width; transient retries re-run the identical attempt and therefore cannot
change the output bytes.
"""

from __future__ import annotations

import hashlib

from repro.errors import LayerTimeoutError, WorkerCrashError

#: Exception types retried in place before ``on_error`` applies.  ``OSError``
#: covers I/O errors (including the injected ``InjectedIOError``);
#: ``ConnectionError``/``InterruptedError`` are OSError subclasses already.
#: :class:`~repro.errors.WorkerCrashError` — a fleet worker process dying
#: mid-layer (SIGKILLed, OOM-killed, ``BrokenProcessPool``-style death, or
#: an injected I/O error that took the child down) — is transient in the
#: same sense: the layer is retried on a *surviving* worker before any
#: ``on_error`` degradation policy fires.
TRANSIENT_EXCEPTIONS: tuple[type[BaseException], ...] = (OSError, WorkerCrashError)

#: Default backoff parameters (seconds).
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` should be retried in place.

    A :class:`~repro.errors.LayerTimeoutError` is never transient — the
    layer already consumed its whole deadline, so retrying it in place
    would just stall the run again.
    """
    if isinstance(exc, LayerTimeoutError):
        return False
    return isinstance(exc, TRANSIENT_EXCEPTIONS)


def backoff_delay(
    attempt: int,
    base: float = DEFAULT_BACKOFF_BASE,
    cap: float = DEFAULT_BACKOFF_CAP,
    key: str = "",
) -> float:
    """Exponential backoff with deterministic jitter for retry ``attempt``.

    ``attempt`` is 0-based (the delay before the first retry).  The jitter
    is a ±25% perturbation derived from ``key`` (typically the layer name)
    and the attempt number, so two layers retrying concurrently do not
    thunder in lockstep yet every run sleeps identically — important for
    tests that bound wall-clock.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    delay = min(float(base) * (2.0 ** attempt), float(cap))
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    fraction = digest[0] / 255.0  # deterministic in [0, 1]
    return delay * (0.75 + 0.5 * fraction)
