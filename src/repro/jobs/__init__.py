"""Durable quantization jobs: checkpoint/resume, watchdogs, graceful exits.

A whole-model GOBO run is embarrassingly parallel *in space* (every layer is
independent — :mod:`repro.core.parallel`) but, before this package, it was
all-or-nothing *in time*: a crash, a hung layer or a Ctrl-C threw away every
completed layer.  This package wraps the layer-parallel engine in a
supervised, resumable run:

* :mod:`repro.jobs.journal` — a checksummed JSONL journal plus per-layer
  shard files; every completed layer is durably recorded the moment it
  finishes (write + fsync), so no completed work is ever lost.
* :mod:`repro.jobs.runner` — the durable runner:
  :func:`durable_quantize_state_dict` / :func:`run_durable_layers` journal
  each layer as it completes and, on ``resume=True``, load journaled layers
  from their shards and quantize only the remainder.  The final archive is
  **bit-identical** to an uninterrupted run at any worker count.
* :mod:`repro.jobs.watchdog` — per-layer deadlines: a cooperative
  :class:`Deadline` checked inside the clustering iteration loop plus a
  monitor thread, converting a hung layer into a
  ``LayerFailure(action="timeout")`` instead of a stalled run.
* :mod:`repro.jobs.retry` — transient-error classification and exponential
  backoff used by the engine to retry I/O-flavoured failures in place
  before any ``on_error`` policy fires.
* :mod:`repro.jobs.signals` — SIGINT/SIGTERM handling that drains in-flight
  layers, flushes the journal, and exits with :data:`EXIT_INTERRUPTED`
  (a second signal hard-exits immediately).
* :mod:`repro.jobs.fleet` — the ``backend="process"`` engine: a supervisor
  leases layers to N worker processes over per-worker pipes, monitors
  heartbeats, SIGKILLs wedged workers and reassigns their leased layers to
  survivors — crash isolation the thread backend cannot offer, with
  byte-identical archives.

Exports are resolved lazily (PEP 562) so that low-level modules —
``repro.core.clustering`` imports the deadline checkpoint,
``repro.core.parallel`` imports the retry/watchdog helpers — can import
``repro.jobs.<module>`` without dragging in :mod:`repro.jobs.runner` (which
itself imports the engine) and creating an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "Deadline": "repro.jobs.watchdog",
    "LivenessMonitor": "repro.jobs.watchdog",
    "Watchdog": "repro.jobs.watchdog",
    "checkpoint": "repro.jobs.watchdog",
    "current_deadline": "repro.jobs.watchdog",
    "deadline_scope": "repro.jobs.watchdog",
    "current_worker_id": "repro.jobs.fleet",
    "mute_heartbeat": "repro.jobs.fleet",
    "run_fleet_layers": "repro.jobs.fleet",
    "JobJournal": "repro.jobs.journal",
    "JournalReadResult": "repro.jobs.journal",
    "read_journal": "repro.jobs.journal",
    "backoff_delay": "repro.jobs.retry",
    "is_transient": "repro.jobs.retry",
    "JobStatus": "repro.jobs.runner",
    "durable_quantize_state_dict": "repro.jobs.runner",
    "job_fingerprint": "repro.jobs.runner",
    "job_status": "repro.jobs.runner",
    "render_status": "repro.jobs.runner",
    "run_durable_layers": "repro.jobs.runner",
    "EXIT_INTERRUPTED": "repro.jobs.signals",
    "GracefulInterrupt": "repro.jobs.signals",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
