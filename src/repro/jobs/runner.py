"""The durable runner: journaled, shard-backed, resumable engine runs.

:func:`run_durable_layers` is a drop-in engine for
:func:`repro.core.model_quantizer.quantize_state_dict` (its ``engine=``
parameter): it calls :func:`repro.core.parallel.quantize_layers` with an
``on_layer_complete`` hook that, the moment each layer finishes,

1. writes the quantized tensor to a per-layer **shard** file under
   ``<job_dir>/shards/`` via :func:`repro.utils.atomic.atomic_savez`
   (atomic, checksummed, byte-deterministic), and
2. appends a checksummed ``layer-done`` record (or ``layer-failed`` for a
   degraded layer) to the job's JSONL journal, fsynced before the append
   returns.

On ``resume=True`` the journal is recovered (a torn tail from SIGKILL costs
at most one record), every journaled layer is loaded back from its shard —
checksum-verified twice: the journaled SHA-256 of the shard file, then the
archive's own content checksum — and only the remaining layers go through
the engine.  Because each layer is a pure function of its inputs and shards
store full float64 precision, the merged result is **bit-identical** to an
uninterrupted run at any worker count: the engine's determinism guarantee
extended across process lifetimes.

Resume is refused (:class:`~repro.errors.JobStateError`) when the job
directory's fingerprint — jobs, method, threshold, validation, ``on_error``
— does not match the requested run; worker count and supervision knobs
(timeout, retries) are deliberately *not* fingerprinted, so a run may be
resumed with different parallelism or stricter deadlines.
"""

from __future__ import annotations

import functools
import hashlib
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.core.model_quantizer import QuantizedModel, quantize_state_dict
from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD
from repro.core.parallel import (
    FaultInjector,
    LayerFailure,
    LayerJob,
    LayerOutcome,
    LayerRecord,
    QuantizationReport,
    quantize_layers,
    resolve_backend,
    resolve_on_error,
)
from repro.core.policy import LayerPolicy
from repro.core.quantizer import GoboQuantizedTensor
from repro.core.serialization import CHECKSUM_KEY, payload_checksum
from repro.errors import ChecksumMismatchError, JobStateError, SerializationError
from repro.jobs.journal import JobJournal, canonical_record, read_journal
from repro.obs import recorder as obs
from repro.utils.atomic import atomic_savez

#: Subdirectory of a job dir holding the per-layer shard archives.
SHARD_DIR = "shards"
#: Shard format version (first element of the shard ``meta`` array).
SHARD_VERSION = 1


class ShardCorruptionWarning(UserWarning):
    """A journaled shard failed verification and its layer will requantize."""


# --------------------------------------------------------------------- shards

def shard_filename(name: str) -> str:
    """Collision-free file name for a layer shard.

    The sanitized layer name keeps shards greppable; the digest suffix keeps
    distinct layers distinct even when sanitization collides.
    """
    safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in name)
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:10]
    return f"{safe[:80]}-{digest}.npz"


def save_shard(
    job_dir: Path, name: str, tensor: GoboQuantizedTensor, iterations: int
) -> tuple[str, str, int]:
    """Atomically write one layer's shard; returns (relpath, sha256, bytes).

    Shards store centroids and outliers at float64 — unlike the final
    archive's float32 — so a tensor loaded back from a shard is *bit-exact*
    equal to the freshly quantized one, which is what makes a resumed run's
    final archive byte-identical to an uninterrupted run's.
    """
    shard_dir = job_dir / SHARD_DIR
    shard_dir.mkdir(parents=True, exist_ok=True)
    relpath = f"{SHARD_DIR}/{shard_filename(name)}"
    payload: dict[str, np.ndarray] = {
        "codes": np.frombuffer(tensor.packed_codes, dtype=np.uint8),
        "centroids": np.asarray(tensor.centroids, dtype=np.float64),
        "positions": np.asarray(tensor.outlier_positions, dtype=np.int64),
        "outliers": np.asarray(tensor.outlier_values, dtype=np.float64),
        "meta": np.array(
            [SHARD_VERSION, tensor.bits, iterations, *tensor.shape], dtype=np.int64
        ),
        "name": np.array([name], dtype=np.str_),
    }
    payload[CHECKSUM_KEY] = np.frombuffer(payload_checksum(payload), dtype=np.uint8)
    size = atomic_savez(job_dir / relpath, payload)
    sha = hashlib.sha256((job_dir / relpath).read_bytes()).hexdigest()
    obs.counter("job.shard_bytes_written", size)
    return relpath, sha, size


def load_shard(path: Path) -> tuple[str, GoboQuantizedTensor, int]:
    """Load and checksum-verify one shard; returns (name, tensor, iterations)."""
    try:
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except Exception as exc:  # noqa: BLE001 — any unreadable shard is corrupt
        raise SerializationError(f"cannot read shard {path}: {exc}") from exc
    if CHECKSUM_KEY not in arrays:
        raise ChecksumMismatchError(f"shard {path} carries no checksum")
    recorded = bytes(np.asarray(arrays[CHECKSUM_KEY], dtype=np.uint8).tobytes())
    actual = payload_checksum(arrays)
    if recorded != actual:
        raise ChecksumMismatchError(f"shard {path} failed checksum verification")
    meta = arrays["meta"]
    version, bits, iterations, shape = (
        int(meta[0]), int(meta[1]), int(meta[2]), tuple(int(d) for d in meta[3:]),
    )
    if version != SHARD_VERSION:
        raise SerializationError(
            f"shard {path} has version {version}; this reader supports {SHARD_VERSION}"
        )
    tensor = GoboQuantizedTensor(
        shape=shape,
        bits=bits,
        centroids=arrays["centroids"].astype(np.float64),
        packed_codes=arrays["codes"].tobytes(),
        outlier_positions=arrays["positions"].astype(np.int64),
        outlier_values=arrays["outliers"].astype(np.float64),
    )
    return str(arrays["name"][0]), tensor, iterations


# ---------------------------------------------------------------- fingerprint

def _job_entry(job: LayerJob) -> list:
    # Jobs without a per-layer method override keep the historical
    # two-element encoding, so fingerprints of pre-existing job dirs are
    # unchanged and remain resumable.
    if job.method is None:
        return [job.name, job.bits]
    return [job.name, job.bits, job.method]


def job_fingerprint(
    jobs: Iterable[LayerJob],
    method: str,
    log_prob_threshold: float,
    validation: str,
    on_error: str,
    max_iterations: int,
    extra: Mapping[str, object] | None = None,
    aux: Mapping[str, np.ndarray] | None = None,
) -> str:
    """SHA-256 over everything that determines the run's output bytes.

    Worker count and supervision settings (timeout, retry budget) are
    excluded on purpose: they cannot change the output, so a job may be
    resumed under different parallelism or deadlines.  ``aux`` side data
    (per-layer method inputs such as GWQ saliency masks) *does* determine
    output bytes, so its content is digested in — but only when present,
    keeping fingerprints of aux-free jobs stable across versions.
    """
    record = {
        "jobs": [_job_entry(job) for job in jobs],
        "method": method,
        "log_prob_threshold": float(log_prob_threshold),
        "validation": validation,
        "on_error": on_error,
        "max_iterations": int(max_iterations),
        "extra": dict(sorted((extra or {}).items())),
    }
    if aux:
        record["aux"] = {
            name: hashlib.sha256(
                np.ascontiguousarray(np.asarray(value)).tobytes()
            ).hexdigest()
            for name, value in sorted(aux.items())
        }
    return hashlib.sha256(canonical_record(record).encode("utf-8")).hexdigest()


def _record_to_dict(record: LayerRecord) -> dict:
    return {
        "name": record.name,
        "bits": record.bits,
        "seconds": record.seconds,
        "iterations": record.iterations,
        "converged": record.converged,
        "outlier_fraction": record.outlier_fraction,
        "original_bytes": record.original_bytes,
        "compressed_bytes": record.compressed_bytes,
    }


def _failure_to_dict(failure: LayerFailure) -> dict:
    return {
        "name": failure.name,
        "bits": failure.bits,
        "action": failure.action,
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": list(failure.attempts),
        "recovered_bits": failure.recovered_bits,
        "resolution": failure.resolution,
        "transient_retries": failure.transient_retries,
    }


def _failure_from_dict(data: Mapping) -> LayerFailure:
    return LayerFailure(
        name=data["name"],
        bits=int(data["bits"]),
        action=data["action"],
        error_type=data["error_type"],
        message=data["message"],
        attempts=tuple(int(b) for b in data.get("attempts", ())),
        recovered_bits=data.get("recovered_bits"),
        resolution=data.get("resolution", ""),
        transient_retries=int(data.get("transient_retries", 0)),
    )


# -------------------------------------------------------------------- running

def run_durable_layers(
    state: Mapping[str, np.ndarray],
    jobs: Iterable[LayerJob],
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    method: str = "gobo",
    max_iterations: int = 50,
    workers: int | None = 1,
    on_error: str | None = "fail",
    validation: str = "strict",
    fault_injector: FaultInjector | None = None,
    layer_timeout: float | None = None,
    transient_retries: int | None = None,
    cancel=None,
    backend: str | None = None,
    aux: Mapping[str, np.ndarray] | None = None,
    *,
    job_dir: str | Path,
    resume: bool = False,
    fingerprint_extra: Mapping[str, object] | None = None,
) -> tuple[dict[str, GoboQuantizedTensor], dict[str, int], QuantizationReport]:
    """Engine-compatible durable run over ``job_dir`` (see module docstring).

    Drop-in for :func:`~repro.core.parallel.quantize_layers`; the extra
    keyword-only parameters configure durability.  ``backend="process"``
    runs the remaining layers on the supervised worker fleet
    (:mod:`repro.jobs.fleet`) with leases journaled to this job's journal
    and worker traces under ``<job_dir>/obs/``; like the worker count, the
    backend is not fingerprinted — a job may be resumed on either backend
    and the archive bytes do not change.  Raises
    :class:`~repro.errors.JobStateError` when ``job_dir`` holds a journal
    for a different job, or holds any journal while ``resume`` is False.
    """
    jobs = list(jobs)
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise JobStateError("durable jobs require unique layer names")
    job_dir = Path(job_dir)
    on_error_resolved = resolve_on_error(on_error)
    fingerprint = job_fingerprint(
        jobs,
        method=method,
        log_prob_threshold=log_prob_threshold,
        validation=validation,
        on_error=on_error_resolved,
        max_iterations=max_iterations,
        extra=fingerprint_extra,
        aux=aux,
    )
    journal = JobJournal(job_dir)

    completed: dict[str, tuple[GoboQuantizedTensor, LayerRecord]] = {}
    failures: dict[str, LayerFailure] = {}
    had_complete = False
    existing = journal.recover() if journal.exists() else None
    if existing is not None and existing.records:
        if not resume:
            raise JobStateError(
                f"{journal.path} already journals {len(existing.records)} record(s); "
                f"pass resume=True (--resume) to continue it, or use a fresh job dir"
            )
        meta = existing.meta
        if meta is None:
            raise JobStateError(f"{journal.path} has no job-meta record; cannot resume")
        if meta.get("fingerprint") != fingerprint:
            raise JobStateError(
                f"{journal.path} was written by a different job "
                f"(fingerprint {str(meta.get('fingerprint'))[:12]}… != requested "
                f"{fingerprint[:12]}…); same layers, bits, method, threshold, "
                f"validation and on_error are required to resume"
            )
        had_complete = bool(existing.of_type("complete"))
        with obs.span("job.resume", job_dir=str(job_dir)):
            job_bits = {job.name: job.bits for job in jobs}
            for record in existing.of_type("layer-done"):
                name = record["name"]
                if name not in job_bits:
                    continue
                shard_path = job_dir / record["shard"]
                try:
                    if not shard_path.exists():
                        raise SerializationError(f"shard {shard_path} is missing")
                    actual_sha = hashlib.sha256(shard_path.read_bytes()).hexdigest()
                    if actual_sha != record.get("shard_sha256"):
                        raise ChecksumMismatchError(
                            f"shard {shard_path} does not match its journaled SHA-256"
                        )
                    shard_name, tensor, iterations = load_shard(shard_path)
                    if shard_name != name:
                        raise SerializationError(
                            f"shard {shard_path} holds layer {shard_name!r}, "
                            f"journal says {name!r}"
                        )
                except (SerializationError, OSError) as exc:
                    warnings.warn(
                        f"journaled shard for layer {name!r} failed verification "
                        f"({exc}); the layer will be requantized",
                        ShardCorruptionWarning,
                        stacklevel=2,
                    )
                    obs.counter("job.shard_requantized", layer=name)
                    continue
                completed[name] = (tensor, LayerRecord(**record["record"]))
            for record in existing.of_type("layer-failed"):
                failure = _failure_from_dict(record["failure"])
                if failure.name in job_bits:
                    failures[failure.name] = failure
        obs.counter("job.resumed_layers", len(completed) + len(failures))
    else:
        journal.append(
            {
                "type": "job-meta",
                "version": 1,
                "fingerprint": fingerprint,
                "jobs": [_job_entry(job) for job in jobs],
                "params": {
                    "method": method,
                    "log_prob_threshold": float(log_prob_threshold),
                    "validation": validation,
                    "on_error": on_error_resolved,
                    "max_iterations": int(max_iterations),
                },
                "extra": dict(sorted((fingerprint_extra or {}).items())),
            }
        )

    def journal_layer(outcome: LayerOutcome) -> None:
        # Called by the engine (serialized) the moment a layer finishes:
        # shard first, then the journal record pointing at it — a crash
        # between the two costs only a re-quantization of that layer.
        if outcome.tensor is not None and outcome.record is not None:
            relpath, sha, size = save_shard(
                job_dir, outcome.record.name, outcome.tensor, outcome.record.iterations
            )
            journal.append(
                {
                    "type": "layer-done",
                    "name": outcome.record.name,
                    "bits": outcome.job.bits,
                    "shard": relpath,
                    "shard_sha256": sha,
                    "size": size,
                    "record": _record_to_dict(outcome.record),
                }
            )
        if outcome.failure is not None:
            journal.append(
                {"type": "layer-failed", "failure": _failure_to_dict(outcome.failure)}
            )

    remaining = [
        job for job in jobs if job.name not in completed and job.name not in failures
    ]
    if resolve_backend(backend) == "process":
        # The fleet journals leases/broken leases alongside the layer
        # records and keeps worker-local traces inside the job dir, where
        # they survive for post-mortem even if the supervisor dies.
        from repro.jobs.fleet import run_fleet_layers

        engine = functools.partial(
            run_fleet_layers, journal=journal, obs_dir=job_dir / "obs"
        )
    else:
        engine = quantize_layers
    fresh_quantized, fresh_iterations, report = engine(
        state,
        remaining,
        log_prob_threshold=log_prob_threshold,
        method=method,
        max_iterations=max_iterations,
        workers=workers,
        on_error=on_error_resolved,
        validation=validation,
        fault_injector=fault_injector,
        layer_timeout=layer_timeout,
        transient_retries=transient_retries,
        cancel=cancel,
        on_layer_complete=journal_layer,
        aux=aux,
    )

    # Merge journaled work back in *original job order*, so the assembled
    # dicts — and therefore the final archive's member order and bytes —
    # match an uninterrupted run exactly.
    quantized: dict[str, GoboQuantizedTensor] = {}
    iterations: dict[str, int] = {}
    fresh_records = {record.name: record for record in report.layers}
    fresh_failures = {failure.name: failure for failure in report.failures}
    merged_records: list[LayerRecord] = []
    merged_failures: list[LayerFailure] = []
    for job in jobs:
        if job.name in fresh_quantized:
            quantized[job.name] = fresh_quantized[job.name]
            iterations[job.name] = fresh_iterations[job.name]
        elif job.name in completed:
            tensor, record = completed[job.name]
            quantized[job.name] = tensor
            iterations[job.name] = record.iterations
        if job.name in fresh_records:
            merged_records.append(fresh_records[job.name])
        elif job.name in completed:
            merged_records.append(completed[job.name][1])
        if job.name in fresh_failures:
            merged_failures.append(fresh_failures[job.name])
        elif job.name in failures:
            merged_failures.append(failures[job.name])
    report.layers = merged_records
    report.failures = merged_failures
    report.resumed_layers = len(completed) + len(failures)

    if report.interrupted:
        journal.append({"type": "interrupted", "pending": list(report.pending)})
    elif not had_complete:
        journal.append(
            {
                "type": "complete",
                "layers": len(report.layers),
                "failures": len(report.failures),
            }
        )
    return quantized, iterations, report


def durable_quantize_state_dict(
    state: dict[str, np.ndarray],
    fc_names: tuple[str, ...],
    embedding_names: tuple[str, ...] = (),
    weight_bits: "int | LayerPolicy" = 3,
    embedding_bits: int | None = 4,
    method: str = "gobo",
    log_prob_threshold: float = DEFAULT_LOG_PROB_THRESHOLD,
    workers: int | None = 1,
    on_error: str | None = "fail",
    validation: str = "strict",
    fault_injector: FaultInjector | None = None,
    layer_timeout: float | None = None,
    transient_retries: int | None = None,
    cancel=None,
    backend: str | None = None,
    *,
    job_dir: str | Path,
    resume: bool = False,
    fingerprint_extra: Mapping[str, object] | None = None,
) -> QuantizedModel:
    """:func:`~repro.core.model_quantizer.quantize_state_dict`, durably.

    Identical semantics and bit-identical output, with every completed layer
    journaled to ``job_dir`` and ``resume=True`` continuing an interrupted
    run (on either backend).  Inspect progress with :func:`job_status`.
    """
    engine = functools.partial(
        run_durable_layers,
        job_dir=job_dir,
        resume=resume,
        fingerprint_extra=fingerprint_extra,
    )
    return quantize_state_dict(
        state,
        fc_names=fc_names,
        embedding_names=embedding_names,
        weight_bits=weight_bits,
        embedding_bits=embedding_bits,
        method=method,
        log_prob_threshold=log_prob_threshold,
        workers=workers,
        on_error=on_error,
        validation=validation,
        fault_injector=fault_injector,
        layer_timeout=layer_timeout,
        transient_retries=transient_retries,
        cancel=cancel,
        backend=backend,
        engine=engine,
    )


# --------------------------------------------------------------------- status

@dataclass
class JobStatus:
    """What the journal says about a job directory (see :func:`job_status`)."""

    job_dir: Path
    fingerprint: str | None
    jobs: list[tuple[str, int]] = field(default_factory=list)
    completed: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    complete: bool = False
    interruptions: int = 0
    intact: bool = True
    journal_bytes: int = 0
    records: int = 0
    #: Fleet view (``backend="process"`` runs): layer name -> the lease
    #: still outstanding for it ({"worker", "pid", "attempt"}); leases are
    #: cleared by layer-done/layer-failed/lease-broken records in journal
    #: order, so anything left here was in flight when the journal ends —
    #: in-flight right now, or lost to a dead supervisor.
    active_leases: dict[str, dict] = field(default_factory=dict)
    broken_leases: int = 0
    worker_deaths: int = 0

    @property
    def pending(self) -> list[str]:
        done = set(self.completed) | set(self.failed)
        return [name for name, _bits in self.jobs if name not in done]

    @property
    def state(self) -> str:
        if self.complete:
            return "complete"
        if self.interruptions:
            return "interrupted"
        return "incomplete"


def job_status(job_dir: str | Path) -> JobStatus:
    """Summarize a job directory from its journal alone (no shard reads)."""
    job_dir = Path(job_dir)
    journal_path = JobJournal(job_dir).path
    if not journal_path.exists():
        raise JobStateError(f"no journal at {journal_path}; not a job directory?")
    result = read_journal(journal_path)
    meta = result.meta
    status = JobStatus(
        job_dir=job_dir,
        fingerprint=None if meta is None else meta.get("fingerprint"),
        jobs=[(name, int(bits)) for name, bits, *_ in (meta or {}).get("jobs", [])],
        completed=[r["name"] for r in result.of_type("layer-done")],
        failed={
            r["failure"]["name"]: r["failure"]["action"]
            for r in result.of_type("layer-failed")
        },
        complete=bool(result.of_type("complete")),
        interruptions=len(result.of_type("interrupted")),
        intact=result.intact,
        journal_bytes=journal_path.stat().st_size,
        records=len(result.records),
    )
    # Replay fleet supervision markers in journal order: a lease is active
    # until the layer resolves or the lease is declared broken.
    dead_workers: set[tuple] = set()
    for record in result.records:
        kind = record.get("type")
        if kind == "lease":
            status.active_leases[record["name"]] = {
                "worker": record.get("worker"),
                "pid": record.get("pid"),
                "attempt": record.get("attempt", 0),
            }
        elif kind == "lease-broken":
            status.active_leases.pop(record.get("name"), None)
            status.broken_leases += 1
            dead_workers.add((record.get("worker"), record.get("pid")))
        elif kind == "layer-done":
            status.active_leases.pop(record.get("name"), None)
        elif kind == "layer-failed":
            status.active_leases.pop(record.get("failure", {}).get("name"), None)
    status.worker_deaths = len(dead_workers)
    return status


def render_status(status: JobStatus) -> str:
    """Human-readable status block for ``repro jobs status``."""
    lines = [
        f"job dir:    {status.job_dir}",
        f"journal:    {status.records} record(s), {status.journal_bytes} bytes"
        + ("" if status.intact else " (torn tail: will be recovered on resume)"),
        f"fingerprint: {(status.fingerprint or '?')[:16]}…",
        f"state:      {status.state}"
        + (f" ({status.interruptions} interruption(s))" if status.interruptions else ""),
        f"layers:     {len(status.jobs)} total, {len(status.completed)} completed, "
        f"{len(status.failed)} failed, {len(status.pending)} pending",
    ]
    if status.failed:
        lines.append(
            "failed:     "
            + ", ".join(f"{name} [{action}]" for name, action in status.failed.items())
        )
    if status.pending:
        shown = status.pending[:8]
        suffix = "" if len(status.pending) <= 8 else f", … +{len(status.pending) - 8}"
        lines.append("pending:    " + ", ".join(shown) + suffix)
    if status.broken_leases or status.active_leases:
        lines.append(
            f"fleet:      {status.worker_deaths} worker death(s), "
            f"{status.broken_leases} broken lease(s)"
        )
    if status.active_leases:
        leased = [
            f"{name} → worker {lease['worker']} (pid {lease['pid']})"
            for name, lease in list(status.active_leases.items())[:8]
        ]
        more = len(status.active_leases) - len(leased)
        lines.append(
            "leased:     " + ", ".join(leased) + ("" if more <= 0 else f", … +{more}")
        )
    return "\n".join(lines)
