"""Checksummed JSONL journal: the durable record of a quantization job.

One journal line per event, append-only, fsynced per append
(:func:`repro.utils.atomic.durable_append`)::

    {"r": {<record>}, "sha256": "<hex digest of the canonical record>"}

The checksum covers the *canonical* JSON encoding of the record (sorted
keys, no whitespace), so the digest is stable regardless of how the line
itself was serialized.  Record types written by the runner:

``job-meta``
    First line of a fresh journal: the job fingerprint, the ordered
    ``[name, bits]`` job list, and the engine parameters that affect output
    bytes.  Resume refuses to continue a journal whose fingerprint does not
    match the requested run.
``layer-done``
    One completed layer: its shard file (relative path), the SHA-256 of the
    shard's bytes, and the :class:`~repro.core.parallel.LayerRecord` fields.
``layer-failed``
    One degraded layer: the :class:`~repro.core.parallel.LayerFailure`
    fields.  Journaled failures are final on resume — re-running a
    deterministically failing layer would reproduce the same failure.
``interrupted`` / ``complete``
    Run lifecycle markers; ``interrupted`` lists the still-pending layers.
``lease`` / ``lease-broken``
    Fleet supervision markers (:mod:`repro.jobs.fleet`): a ``lease`` records
    which worker process (owner pid + heartbeat deadline) a layer was handed
    to; ``lease-broken`` records that the worker died or went silent and how
    the layer was disposed of (reassigned to a survivor, or resolved by the
    ``on_error`` policy).  Both are informational — resume derives state from
    ``layer-done``/``layer-failed`` alone — but ``repro jobs status`` renders
    them as the fleet view.

Reading is prefix-safe: :func:`read_journal` returns every record up to the
first unparseable or checksum-failing line and reports how many valid bytes
that prefix spans.  A torn tail (the expected after-effect of SIGKILL mid
append) therefore costs at most one record; the runner truncates the file
back to the valid prefix before appending again.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.errors import JobStateError
from repro.obs import recorder as obs
from repro.utils.atomic import durable_append

#: Journal file name inside a job directory.
JOURNAL_NAME = "journal.jsonl"
#: Journal format version, recorded in the ``job-meta`` line.
JOURNAL_VERSION = 1

RECORD_TYPES = (
    "job-meta",
    "layer-done",
    "layer-failed",
    "interrupted",
    "complete",
    "lease",
    "lease-broken",
)


def canonical_record(record: dict) -> str:
    """Canonical JSON encoding of a record (sorted keys, no whitespace)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_checksum(record: dict) -> str:
    """SHA-256 hex digest of a record's canonical encoding."""
    return hashlib.sha256(canonical_record(record).encode("utf-8")).hexdigest()


def encode_line(record: dict) -> bytes:
    """One journal line for ``record``, checksum included, newline terminated."""
    if record.get("type") not in RECORD_TYPES:
        raise JobStateError(
            f"journal record type must be one of {RECORD_TYPES}, "
            f"got {record.get('type')!r}"
        )
    envelope = {"r": record, "sha256": record_checksum(record)}
    return (json.dumps(envelope, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_line(line: bytes) -> dict | None:
    """Parse and verify one journal line; None when torn or corrupt."""
    try:
        envelope = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(envelope, dict):
        return None
    record = envelope.get("r")
    if not isinstance(record, dict) or record.get("type") not in RECORD_TYPES:
        return None
    if envelope.get("sha256") != record_checksum(record):
        return None
    return record


@dataclass
class JournalReadResult:
    """What :func:`read_journal` recovered from a journal file.

    ``intact`` is False when the file held bytes past the last valid record
    — a torn tail from a crash mid-append, or corruption.  ``valid_bytes``
    is the length of the trusted prefix; appending safely requires
    truncating the file to it first (:meth:`JobJournal.recover` does).
    """

    records: list[dict] = field(default_factory=list)
    valid_bytes: int = 0
    intact: bool = True

    @property
    def meta(self) -> dict | None:
        """The ``job-meta`` record, or None for an empty/alien journal."""
        for record in self.records:
            if record.get("type") == "job-meta":
                return record
        return None

    def of_type(self, record_type: str) -> list[dict]:
        return [r for r in self.records if r.get("type") == record_type]


def read_journal(path: str | Path) -> JournalReadResult:
    """Read every trusted record of the journal at ``path``.

    Stops at the first line that fails to parse or verify; everything before
    it is returned and everything after it is untrusted (``intact=False``).
    A missing file reads as an empty, intact journal.
    """
    path = Path(path)
    result = JournalReadResult()
    if not path.exists():
        return result
    data = path.read_bytes()
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            # No terminator: a torn final line.
            result.intact = False
            return result
        line = data[offset:newline]
        if line.strip():
            record = decode_line(line)
            if record is None:
                result.intact = False
                return result
            result.records.append(record)
        offset = newline + 1
        result.valid_bytes = offset
    return result


class JobJournal:
    """Append-only writer for a job directory's journal.

    Every append is flushed and fsynced before returning, so a record that
    was written survives any crash after the call.  The ``job.journal_bytes``
    counter tracks the bytes appended.
    """

    def __init__(self, job_dir: str | Path):
        self.job_dir = Path(job_dir)
        self.path = self.job_dir / JOURNAL_NAME

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, record: dict) -> int:
        """Durably append one record; returns the bytes written."""
        self.job_dir.mkdir(parents=True, exist_ok=True)
        written = durable_append(self.path, encode_line(record))
        obs.counter("job.journal_bytes", written)
        obs.counter("job.journal_records", record_type=record["type"])
        return written

    def read(self) -> JournalReadResult:
        return read_journal(self.path)

    def recover(self) -> JournalReadResult:
        """Read the journal and truncate any untrusted tail in place.

        After recovery the file ends exactly at the last valid record, so
        subsequent appends produce a well-formed journal again.  Emits the
        ``job.journal_recovered_bytes`` counter when bytes were dropped.
        """
        result = read_journal(self.path)
        if not result.intact and self.path.exists():
            dropped = self.path.stat().st_size - result.valid_bytes
            with open(self.path, "r+b") as handle:
                handle.truncate(result.valid_bytes)
            obs.counter("job.journal_recovered_bytes", dropped)
        return result

    def append_all(self, records: Iterable[dict]) -> int:
        return sum(self.append(record) for record in records)
