"""Per-layer deadlines: cooperative cancellation plus a monitor thread.

Python threads cannot be killed, so a hung layer cannot be interrupted from
the outside; what *can* be done — and what every mature thread-based job
system does — is cooperative cancellation with an external monitor:

* A :class:`Deadline` is armed around each layer attempt.  Hot loops call
  :func:`checkpoint` (the clustering iteration loop does, once per
  iteration) which raises :class:`~repro.errors.LayerTimeoutError` as soon
  as the deadline has passed.  The deadline travels thread-locally via
  :func:`deadline_scope`, so deep callees (and fault injectors) can consult
  :func:`current_deadline` without any parameter threading.
* A :class:`Watchdog` monitor thread polls every armed deadline and flags
  the expired ones.  Flagging makes later ``expired()`` checks a plain
  attribute read, lets cooperative sleepers (e.g.
  :class:`repro.testing.faults.HangOnLayer`) wake promptly, and records the
  stall for observability even before the hung layer reaches its next
  checkpoint.

The guarantee is therefore *bounded grace*, not preemption: a layer that
times out is surfaced within ``layer_timeout`` plus the time to its next
checkpoint.  Code that never reaches a checkpoint (a true C-level hang)
cannot be interrupted — the watchdog still flags it, so the stall is loud
in the instrumentation.  See DESIGN.md §5d for the semantics.

Process-level liveness (:class:`LivenessMonitor`) is the other half of the
story, used by the fleet supervisor (:mod:`repro.jobs.fleet`, DESIGN.md
§5g): worker *processes* — unlike threads — can die outright or wedge
without ever reaching a checkpoint, so each worker sends periodic
heartbeats and the supervisor keeps a last-beat ledger.  A member silent
past the timeout is presumed dead; unlike a thread, a wedged process *can*
be killed, so the supervisor SIGKILLs it and reassigns its leased layer.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import LayerTimeoutError, QuantizationError

_local = threading.local()

#: Default watchdog poll interval ceiling (seconds).
DEFAULT_POLL_INTERVAL = 0.02


class Deadline:
    """A monotonic-clock deadline, expirable early by the watchdog.

    ``expired()`` is true once ``seconds`` have elapsed since construction
    *or* the watchdog flagged the deadline; ``check()`` converts expiry into
    a :class:`~repro.errors.LayerTimeoutError`.
    """

    __slots__ = ("seconds", "label", "_expires_at", "_flagged")

    def __init__(self, seconds: float, label: str = ""):
        if not seconds > 0:
            raise QuantizationError(f"deadline seconds must be > 0, got {seconds!r}")
        self.seconds = float(seconds)
        self.label = label
        self._expires_at = time.monotonic() + self.seconds
        self._flagged = False

    def remaining(self) -> float:
        """Seconds until expiry (negative once past it)."""
        return self._expires_at - time.monotonic()

    @property
    def flagged(self) -> bool:
        """True once the watchdog marked this deadline expired."""
        return self._flagged

    def expire_now(self) -> None:
        """Mark the deadline expired immediately (watchdog hook)."""
        self._flagged = True

    def expired(self) -> bool:
        return self._flagged or self.remaining() <= 0

    def check(self) -> None:
        """Raise :class:`LayerTimeoutError` if the deadline has passed."""
        if self.expired():
            what = f" for {self.label!r}" if self.label else ""
            raise LayerTimeoutError(
                f"deadline of {self.seconds:g}s{what} exceeded"
            )


def current_deadline() -> Deadline | None:
    """The deadline armed on this thread, or None."""
    return getattr(_local, "deadline", None)


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Arm ``deadline`` as this thread's ambient deadline for the block.

    ``None`` is accepted (and is a no-op) so callers can scope
    unconditionally.  Scopes nest: the innermost deadline wins, and the
    previous one is restored on exit.
    """
    previous = getattr(_local, "deadline", None)
    _local.deadline = deadline if deadline is not None else previous
    try:
        yield deadline
    finally:
        _local.deadline = previous


def checkpoint() -> None:
    """Cooperative cancellation point: raise if the ambient deadline passed.

    A no-op (one thread-local read) when no deadline is armed, so hot loops
    — the clustering iteration loop calls this once per iteration — pay
    nothing outside supervised runs.
    """
    deadline = getattr(_local, "deadline", None)
    if deadline is not None:
        deadline.check()


class LivenessMonitor:
    """Last-heartbeat ledger: which members have gone silent?

    Thread-safe and clock-injectable (every method takes an optional
    ``now``, defaulting to :func:`time.monotonic`) so supervision logic is
    testable without sleeping.  The monitor passes no judgement on *why* a
    member is silent — a dead process and a wedged one look identical from
    the outside, which is exactly the point: the supervisor treats both as
    dead, kills whatever is left, and reassigns the member's work.
    """

    def __init__(self, timeout: float):
        if not timeout > 0:
            raise QuantizationError(
                f"liveness timeout must be > 0 seconds, got {timeout!r}"
            )
        self.timeout = float(timeout)
        self._last: dict = {}
        self._lock = threading.Lock()

    def beat(self, member, now: float | None = None) -> None:
        """Record a heartbeat from ``member`` (any hashable key)."""
        with self._lock:
            self._last[member] = time.monotonic() if now is None else now

    def forget(self, member) -> None:
        """Stop tracking ``member`` (it exited, or was declared dead)."""
        with self._lock:
            self._last.pop(member, None)

    def last_beat(self, member) -> float | None:
        with self._lock:
            return self._last.get(member)

    def tracked(self) -> list:
        with self._lock:
            return list(self._last)

    def silent(self, now: float | None = None) -> list:
        """Members whose last beat is older than ``timeout`` seconds."""
        now = time.monotonic() if now is None else now
        with self._lock:
            return [
                member
                for member, beat in self._last.items()
                if now - beat > self.timeout
            ]


class Watchdog:
    """Monitor thread that flags expired deadlines.

    Usage::

        with Watchdog(poll_interval=0.02) as watchdog:
            deadline = Deadline(5.0, label=layer_name)
            watchdog.register(deadline)
            try:
                with deadline_scope(deadline):
                    ...layer work, checkpoints raise on expiry...
            finally:
                watchdog.unregister(deadline)

    The thread is a daemon and wakes every ``poll_interval`` seconds; it
    never interrupts anything itself — it only calls
    :meth:`Deadline.expire_now` so cooperative checks and sleepers observe
    the expiry promptly, and records the stalled labels in ``stalled``.
    """

    def __init__(self, poll_interval: float = DEFAULT_POLL_INTERVAL):
        self.poll_interval = max(float(poll_interval), 0.001)
        self.stalled: list[str] = []
        self._deadlines: dict[int, Deadline] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def register(self, deadline: Deadline) -> Deadline:
        with self._lock:
            self._deadlines[id(deadline)] = deadline
        return deadline

    def unregister(self, deadline: Deadline) -> None:
        with self._lock:
            self._deadlines.pop(id(deadline), None)

    def start(self) -> "Watchdog":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-watchdog", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            with self._lock:
                armed = list(self._deadlines.values())
            for deadline in armed:
                if not deadline.flagged and deadline.expired():
                    deadline.expire_now()
                    with self._lock:
                        self.stalled.append(deadline.label)
