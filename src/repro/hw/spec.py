"""Hardware specifications for the roofline latency model.

The MICRO version of the paper pairs the quantizer with hardware support;
this module provides the parametric machine models used to quantify the
"low latency" part of the title: an edge-class NPU and a server-class
accelerator, both described by compute throughput and DRAM bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareSpec:
    """A roofline machine: peak compute and off-chip bandwidth."""

    name: str
    flops_per_second: float
    dram_bytes_per_second: float

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0 or self.dram_bytes_per_second <= 0:
            raise ValueError(f"{self.name}: rates must be positive")

    @property
    def ridge_intensity(self) -> float:
        """FLOPs per byte at which compute and memory balance."""
        return self.flops_per_second / self.dram_bytes_per_second


# An edge NPU: modest compute, LPDDR-class bandwidth.  BERT inference here is
# deeply memory-bound, which is where GOBO's traffic cut pays off most.
EDGE_NPU = HardwareSpec(
    name="edge-npu",
    flops_per_second=4e12,          # 4 TFLOP/s
    dram_bytes_per_second=30e9,     # 30 GB/s LPDDR4X
)

# A server accelerator: HBM-class bandwidth, far more compute.
SERVER_ACCELERATOR = HardwareSpec(
    name="server-accelerator",
    flops_per_second=100e12,        # 100 TFLOP/s
    dram_bytes_per_second=900e9,    # 900 GB/s HBM2
)
