"""Roofline latency model for BERT inference with compressed weights.

Per FC layer, a batch-1 inference performs ``2 * rows * cols * seq`` FLOPs
while streaming the layer's weights from DRAM once (the hidden state is tiny
— Table II — and stays on chip).  Layer time is the roofline maximum of the
compute time and the weight-streaming time; model latency is the sum over
layers.  GOBO shrinks the streamed bytes by its compression ratio, so on
memory-bound machines latency falls almost proportionally — the paper's
"low latency" argument made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import HardwareSpec
from repro.models.config import BertConfig
from repro.models.footprint import BYTES_PER_FP32
from repro.models.zoo import fc_layer_shapes


@dataclass(frozen=True)
class LatencyReport:
    """Latency breakdown of one inference."""

    model: str
    hardware: str
    sequence_length: int
    compute_seconds: float
    memory_seconds: float
    latency_seconds: float
    memory_bound_layers: int
    total_layers: int

    @property
    def memory_bound_fraction(self) -> float:
        if self.total_layers == 0:
            return 0.0
        return self.memory_bound_layers / self.total_layers


def inference_latency(
    config: BertConfig,
    hardware: HardwareSpec,
    sequence_length: int = 128,
    effective_weight_bits: float = 32.0,
) -> LatencyReport:
    """Roofline latency of one batch-1 inference.

    ``effective_weight_bits`` models the streamed weight width: 32 for FP32,
    ~3.07 for GOBO 3-bit (indexes + outlier/table overhead).  Decompression
    is assumed hidden behind the stream (a table lookup per weight), matching
    GOBO's decode-on-the-fly usage.
    """
    if sequence_length <= 0:
        raise ValueError(f"sequence_length must be positive, got {sequence_length}")
    if effective_weight_bits <= 0:
        raise ValueError(f"effective_weight_bits must be positive, got {effective_weight_bits}")
    compute_total = 0.0
    memory_total = 0.0
    latency_total = 0.0
    memory_bound = 0
    layers = fc_layer_shapes(config)
    for _, (rows, cols) in layers:
        flops = 2.0 * rows * cols * sequence_length
        weight_bytes = rows * cols * effective_weight_bits / 8.0
        compute_time = flops / hardware.flops_per_second
        memory_time = weight_bytes / hardware.dram_bytes_per_second
        compute_total += compute_time
        memory_total += memory_time
        latency_total += max(compute_time, memory_time)
        if memory_time > compute_time:
            memory_bound += 1
    return LatencyReport(
        model=config.name,
        hardware=hardware.name,
        sequence_length=sequence_length,
        compute_seconds=compute_total,
        memory_seconds=memory_total,
        latency_seconds=latency_total,
        memory_bound_layers=memory_bound,
        total_layers=len(layers),
    )


def gobo_speedup(
    config: BertConfig,
    hardware: HardwareSpec,
    sequence_length: int = 128,
    effective_weight_bits: float = 3.07,
) -> float:
    """Latency ratio FP32 / GOBO-compressed on ``hardware``."""
    baseline = inference_latency(config, hardware, sequence_length, 32.0)
    compressed = inference_latency(
        config, hardware, sequence_length, effective_weight_bits
    )
    return baseline.latency_seconds / compressed.latency_seconds


def fp32_equivalent_bits() -> float:
    """Bits per weight streamed by the FP32 baseline (for symmetry in APIs)."""
    return 8.0 * BYTES_PER_FP32
