"""Roofline hardware model: the paper's low-latency argument, quantified."""

from repro.hw.latency import LatencyReport, gobo_speedup, inference_latency
from repro.hw.spec import EDGE_NPU, SERVER_ACCELERATOR, HardwareSpec

__all__ = [
    "EDGE_NPU",
    "HardwareSpec",
    "LatencyReport",
    "SERVER_ACCELERATOR",
    "gobo_speedup",
    "inference_latency",
]
