"""Compute on the compressed representation: lookup-based quantized kernels.

GOBO's inference story (paper Sections V-VI) never decodes weights back to
FP32: matmuls run on 3-bit centroid indexes by accumulating per-centroid
partial sums of the activation and finishing with a table lookup.  This
package reproduces that in software:

* :class:`LookupKernel` — prepared per-centroid accumulation for one
  quantized 2-D tensor (``x @ W.T`` without materializing ``W``),
* :func:`lookup_matmul` — one-shot convenience wrapper,
* :func:`dequantize_matmul` — the decode-then-BLAS baseline the perf gate
  (``BENCH_kernels.json``) compares against.

:class:`repro.nn.QuantizedLinear` routes a ``Linear`` forward through
:class:`LookupKernel`, and ``load_quantized_model(..., lazy=True)`` feeds
these kernels straight from a memory-mapped archive.
"""

from repro.kernels.lookup import LookupKernel, dequantize_matmul, lookup_matmul

__all__ = [
    "LookupKernel",
    "dequantize_matmul",
    "lookup_matmul",
]
