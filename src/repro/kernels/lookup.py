"""Matmul kernels that compute directly on GOBO's compressed representation.

The paper's latency/energy argument (Sections V-VI) is that inference never
needs the FP32 weight matrix: a G-group weight is a ``bits``-wide centroid
index, so a matrix-vector product can accumulate, for every output row, the
partial sum of activations per centroid and finish with one ``2^bits``-wide
dot against the reconstruction table — the few-unique-weights trick that
cuts DRAM traffic ~10x in the accelerator.

:class:`LookupKernel` is the software realization.  For ``y = x @ W.T``
with ``W`` quantized:

``y[b, j] = sum_c centroids[c] * S[b, j, c]  +  outlier corrections``

where ``S[b, j, c]`` sums the activations ``x[b, i]`` over the columns
``i`` whose code in row ``j`` is ``c``.  The grouping of columns by
centroid is a static property of the compressed tensor, so construction
sorts each row's codes once (outlier slots get a sentinel code whose
centroid value is 0) and the forward pass is three vectorized passes:

1. gather the activation through the precomputed permutation,
2. segment-sum it (one contiguous ``np.add.reduceat`` — this *is* the
   per-centroid accumulation, all ``2^bits`` passes fused),
3. scale by the per-segment centroid value and segment-sum again by row,
   then scatter-add the sparse FP32 outlier corrections.

No FP32 weight matrix is ever materialized: the kernel's resident state is
the code permutation plus segment metadata, and the per-call temporaries
are activation-sized, not weight-sized... per batch row.  (In silicon the
permutation is free — the PE accumulates into one of ``2^bits`` registers
selected by the streamed code.  In NumPy we pay index memory for the same
effect; the archive stays the compressed source of truth.)

:func:`dequantize_matmul` is the comparison baseline the benchmarks and the
CI perf gate measure against: decode the tensor (bit-unpack, outlier
scatter, centroid gather) on every call, then BLAS — what serving from a
compressed archive costs *without* lookup kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantizer import GoboQuantizedTensor
from repro.errors import ShapeError
from repro.obs import recorder as obs

#: Per-call gather budget (elements) before the batch is processed in chunks.
_CHUNK_ELEMENTS = 1 << 24


def _compute_dtype(x: np.ndarray) -> np.dtype:
    """float32 stays float32 (the paper's decode target); everything else
    is promoted to the substrate's float64."""
    if x.dtype == np.float32:
        return np.dtype(np.float32)
    return np.dtype(np.float64)


class LookupKernel:
    """Prepared per-centroid accumulation state for one 2-D quantized tensor.

    Parameters
    ----------
    tensor:
        A :class:`~repro.core.quantizer.GoboQuantizedTensor` of 2-D shape
        ``(out_features, in_features)`` — the HuggingFace FC convention, so
        :meth:`matmul` computes ``x @ W.T`` exactly like
        :class:`repro.nn.Linear`.
    """

    def __init__(self, tensor: GoboQuantizedTensor) -> None:
        if len(tensor.shape) != 2:
            raise ShapeError(
                f"LookupKernel requires a 2-D weight tensor, got shape {tensor.shape}"
            )
        self.tensor = tensor
        self.out_features, self.in_features = tensor.shape
        self.bits = tensor.bits
        n_centroids = int(tensor.centroids.size)
        #: centroid table extended with a zero slot for outlier positions.
        self.centroids_ext = np.append(
            np.asarray(tensor.centroids, dtype=np.float64), 0.0
        )
        sentinel = n_centroids

        with obs.span(
            "kernels.prepare", rows=self.out_features, cols=self.in_features,
            bits=self.bits,
        ):
            total = tensor.total_count
            flat_codes = np.full(total, sentinel, dtype=np.int64)
            if tensor.gaussian_count:
                mask = np.zeros(total, dtype=bool)
                mask[tensor.outlier_positions] = True
                flat_codes[~mask] = tensor.codes()
            codes = flat_codes.reshape(tensor.shape)

            if total == 0 or self.in_features == 0:
                # Degenerate: no columns to accumulate over.
                self._order = np.empty(tensor.shape, dtype=np.intp)
                self._segment_starts = np.empty(0, dtype=np.intp)
                self._segment_values = np.empty(0, dtype=np.float64)
                self._row_starts = np.empty(0, dtype=np.intp)
            else:
                # Static grouping: per row, column order sorted by code.
                self._order = np.argsort(codes, axis=1, kind="stable")
                sorted_codes = np.take_along_axis(codes, self._order, axis=1)
                # Offset codes per row so segment boundaries never span rows.
                keys = (
                    sorted_codes
                    + np.arange(self.out_features, dtype=np.int64)[:, None]
                    * (sentinel + 1)
                ).ravel()
                boundaries = np.flatnonzero(np.diff(keys)) + 1
                self._segment_starts = np.concatenate(
                    ([0], boundaries)
                ).astype(np.intp)
                segment_keys = keys[self._segment_starts]
                segment_rows = segment_keys // (sentinel + 1)
                self._segment_values = self.centroids_ext[
                    segment_keys % (sentinel + 1)
                ]
                # First segment of each row (every row has >= 1 segment).
                self._row_starts = np.searchsorted(
                    segment_rows, np.arange(self.out_features)
                ).astype(np.intp)

            # Sparse FP32 outlier corrections: y[:, row] += x[:, col] * value.
            self._outlier_rows = tensor.outlier_positions // max(self.in_features, 1)
            self._outlier_cols = tensor.outlier_positions % max(self.in_features, 1)
            self._outlier_values = np.asarray(tensor.outlier_values, dtype=np.float64)

        obs.counter("kernels.prepared")
        obs.counter("kernels.prepared_bytes", self.prepared_nbytes)

    # ------------------------------------------------------------------ sizes
    @property
    def prepared_nbytes(self) -> int:
        """Resident bytes of the prepared index state (the software cost of
        emulating the accelerator's free in-PE centroid select)."""
        return int(
            self._order.nbytes
            + self._segment_starts.nbytes
            + self._segment_values.nbytes
            + self._row_starts.nbytes
            + self._outlier_rows.nbytes
            + self._outlier_cols.nbytes
            + self._outlier_values.nbytes
            + self.centroids_ext.nbytes
        )

    # ----------------------------------------------------------------- compute
    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``x @ W.T`` for ``x`` of shape ``(..., in_features)``.

        Accumulates per-centroid partial sums of the activation and applies
        the FP32 outlier corrections; the FP32 weight matrix is never
        built.  Float32 inputs are computed in float32 (the paper's decode
        target), everything else in float64.
        """
        x = np.asarray(x)
        if x.ndim == 0 or x.shape[-1] != self.in_features:
            raise ShapeError(
                f"LookupKernel expected last dim {self.in_features}, "
                f"got input shape {x.shape}"
            )
        dtype = _compute_dtype(x)
        lead = x.shape[:-1]
        rows = int(np.prod(lead)) if lead else 1
        x2 = np.ascontiguousarray(x.reshape(rows, self.in_features), dtype=dtype)
        y = np.zeros((rows, self.out_features), dtype=dtype)

        if self.in_features and self.out_features and self.tensor.total_count:
            segment_values = self._segment_values.astype(dtype, copy=False)
            outlier_values = self._outlier_values.astype(dtype, copy=False)
            chunk = max(1, _CHUNK_ELEMENTS // max(self.out_features * self.in_features, 1))
            for start in range(0, rows, chunk):
                stop = min(start + chunk, rows)
                gathered = x2[start:stop, self._order]
                sums = np.add.reduceat(
                    gathered.reshape(stop - start, -1), self._segment_starts, axis=1
                )
                sums *= segment_values
                y_chunk = y[start:stop]
                y_chunk[:] = np.add.reduceat(sums, self._row_starts, axis=1)
                # The outlier correction lives inside the chunk loop so its
                # gather temporary is bounded by the same _CHUNK_ELEMENTS
                # budget as the code gather — a batch-wide gather on an
                # outlier-heavy layer would allocate rows x n_outliers
                # floats regardless of chunking.
                if outlier_values.size:
                    corrections = x2[start:stop, self._outlier_cols] * outlier_values
                    np.add.at(y_chunk, (slice(None), self._outlier_rows), corrections)

        obs.counter("kernels.lookup_matmul_calls")
        obs.counter("kernels.lookup_matmul_rows", rows)
        return y.reshape(*lead, self.out_features)

    __call__ = matmul


def lookup_matmul(x: np.ndarray, tensor: GoboQuantizedTensor) -> np.ndarray:
    """One-shot ``x @ W.T`` on the compressed ``tensor``.

    Convenience wrapper that builds a :class:`LookupKernel` per call; for a
    serving path, construct the kernel once (see
    :class:`repro.nn.QuantizedLinear`).
    """
    return LookupKernel(tensor).matmul(x)


def dequantize_matmul(x: np.ndarray, tensor: GoboQuantizedTensor) -> np.ndarray:
    """The decode-per-call baseline: reconstruct ``W`` in floating point,
    then ``x @ W.T`` via BLAS.

    This is what serving from a compressed archive costs without lookup
    kernels, and the denominator of the ``BENCH_kernels.json`` speedup the
    CI perf gate enforces.
    """
    x = np.asarray(x)
    if len(tensor.shape) != 2:
        raise ShapeError(
            f"dequantize_matmul requires a 2-D weight tensor, got shape {tensor.shape}"
        )
    if x.ndim == 0 or x.shape[-1] != tensor.shape[1]:
        raise ShapeError(
            f"dequantize_matmul expected last dim {tensor.shape[1]}, "
            f"got input shape {x.shape}"
        )
    dtype = _compute_dtype(x)
    weights = tensor.dequantize(dtype=dtype)
    return x.astype(dtype, copy=False) @ weights.T
