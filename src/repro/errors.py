"""Library-wide exception types."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A model or quantizer configuration is invalid."""


class ShapeError(ReproError):
    """A tensor has an unexpected shape."""


class QuantizationError(ReproError):
    """Quantization could not be performed on the given tensor."""


class DegenerateTensorError(QuantizationError):
    """A tensor cannot support a Gaussian fit: empty or zero-variance.

    Raised by input validation (``repro.core.validate``) under the
    ``strict`` policy; the ``repair`` policy falls back to linear binning
    instead, and ``skip`` converts it into :class:`LayerSkipped`.
    """


class NonFiniteWeightError(QuantizationError, ValueError):
    """A tensor contains NaN or infinite entries.

    Subclasses :class:`ValueError` as well, so callers that historically
    caught the generic ``ValueError`` from :meth:`GaussianFit.fit` keep
    working.
    """


class LayerSkipped(QuantizationError):
    """Control-flow signal: validation policy ``skip`` rejected this tensor.

    The layer-parallel engine catches this and ships the layer unquantized
    (FP32 pass-through), recording the skip in the run's
    :class:`~repro.core.parallel.QuantizationReport`.
    """


class LayerTimeoutError(QuantizationError):
    """A layer blew its per-layer deadline (watchdog timeout).

    Raised cooperatively by :func:`repro.jobs.watchdog.checkpoint` inside
    the clustering iteration loop once the layer's
    :class:`~repro.jobs.watchdog.Deadline` expires.  The layer-parallel
    engine converts it into a :class:`~repro.core.parallel.LayerFailure`
    with ``action="timeout"`` under every non-``fail`` ``on_error`` policy.
    """


class WorkerCrashError(QuantizationError):
    """A fleet worker process died (or went heartbeat-silent) mid-layer.

    Raised supervisor-side by :mod:`repro.jobs.fleet` when a worker's pipe
    breaks, its process sentinel fires, or its heartbeats stop.  Classified
    as *transient* by :func:`repro.jobs.retry.is_transient`: the layer it
    was leasing is reassigned to a surviving worker before any ``on_error``
    degradation policy fires — process death says nothing about the tensor.
    """


class JobStateError(ReproError):
    """A durable job directory is unusable for the requested run.

    Raised when a journal exists but ``resume`` was not requested, when the
    journaled job fingerprint does not match the requested parameters, or
    when the journal is too corrupt to recover.
    """


class SerializationError(ReproError):
    """A stored model archive is malformed."""


class TruncatedArchiveError(SerializationError):
    """An archive exists but is not a readable npz container (truncated
    write, or garbage bytes where the zip structure should be)."""


class ChecksumMismatchError(SerializationError):
    """An archive's recorded checksum does not match its contents (bit rot,
    partial overwrite, or tampering)."""


class ServeError(ReproError):
    """Base class for errors raised by the serving layer."""


class ModelNotFoundError(ServeError):
    """The registry has no model under the requested name."""


class QueueFullError(ServeError):
    """Admission control rejected a request: the pending queue is at its
    bound.  Carries ``retry_after`` (seconds) for the 429 response header."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class RequestTimeoutError(ServeError):
    """A request's deadline expired before its batch completed (504)."""


class ModelQuarantinedError(ServeError):
    """The model's health state machine has it quarantined: admission
    answers 503 + ``Retry-After`` instead of letting the request reach a
    kernel that will fail it.  Carries ``retry_after`` (seconds) and the
    current health ``state`` for the response body."""

    def __init__(self, message: str, retry_after: float = 1.0,
                 state: str = "quarantined"):
        super().__init__(message)
        self.retry_after = retry_after
        self.state = state


class BatchWorkerError(ServeError):
    """The batch worker thread died (or was replaced) while this request's
    batch was in flight.  Transient: the request itself says nothing about
    the model, so the health breaker counts it but admission keeps the
    model serving.  Mapped to 503 + ``Retry-After: 1``."""


class ForwardTimeoutError(BatchWorkerError):
    """A model forward exceeded the per-forward deadline: the batch-worker
    watchdog failed the in-flight batch and replaced the wedged worker.
    Transient, like :class:`BatchWorkerError`."""
