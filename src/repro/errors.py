"""Library-wide exception types."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A model or quantizer configuration is invalid."""


class ShapeError(ReproError):
    """A tensor has an unexpected shape."""


class QuantizationError(ReproError):
    """Quantization could not be performed on the given tensor."""


class SerializationError(ReproError):
    """A stored model archive is malformed."""
