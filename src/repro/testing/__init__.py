"""Deterministic fault-injection harness for robustness testing."""

from repro.testing.faults import (
    InjectedFault,
    PoisonTensor,
    RaiseNth,
    RaiseOnLayer,
    compose_injectors,
    corrupt_bytes,
    truncate_file,
)

__all__ = [
    "InjectedFault",
    "PoisonTensor",
    "RaiseNth",
    "RaiseOnLayer",
    "compose_injectors",
    "corrupt_bytes",
    "truncate_file",
]
