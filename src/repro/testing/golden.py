"""Golden archive fixtures: canonical tiny archives for every format version.

The serialization format has lived through three versions (v1: no iteration
counts, v2: iteration counts + pickle-free indexes, v3: SHA-256 checksum).
Old archives on disk must keep loading forever, so ``tests/data/`` checks in
one tiny archive per version and ``tests/core/test_golden_archives.py``
locks their loads.  The payloads here are built **by hand** — fixed
centroids, codes and outliers, not the output of the quantizer — so the
fixtures pin the *format*, independent of how the quantization algorithm
evolves.

Regenerate the checked-in files (byte-identical, thanks to the
deterministic zip writer) with::

    PYTHONPATH=src python scripts/make_golden_archives.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.quantizer import GoboQuantizedTensor
from repro.core.serialization import payload_checksum
from repro.utils.atomic import atomic_savez
from repro.utils.bitpack import pack_bits

GOLDEN_VERSIONS = (1, 2, 3)

#: The one quantized tensor every golden archive stores.
TENSOR_NAME = "w"
SHAPE = (4, 5)
BITS = 2
ITERATIONS = 7  # recorded from v2 on; v1 archives predate the field
#: Exactly float32-representable centroids (powers of two), so the
#: float64 -> float32 -> float64 round-trip through the file is lossless.
CENTROIDS = (-0.0625, -0.015625, 0.03125, 0.0625)
#: Flat indices (in the 4x5 tensor) held out of the G group as outliers.
OUTLIER_POSITIONS = (3, 17)
OUTLIER_VALUES = (0.5, -0.375)
#: Centroid index per G-group weight, flat order, outlier slots skipped.
CODES = (0, 1, 2, 3, 3, 2, 1, 0, 0, 0, 1, 1, 2, 2, 3, 3, 0, 2)
#: The one pass-through FP32 parameter.
FP32_NAME = "bias"
FP32_VALUES = (0.0, 0.25, 0.5, 0.75, 1.0)


def golden_tensor() -> GoboQuantizedTensor:
    """The quantized tensor all three golden archives encode."""
    return GoboQuantizedTensor(
        shape=SHAPE,
        bits=BITS,
        centroids=np.array(CENTROIDS, dtype=np.float64),
        packed_codes=pack_bits(np.array(CODES, dtype=np.int64), BITS),
        outlier_positions=np.array(OUTLIER_POSITIONS, dtype=np.int64),
        outlier_values=np.array(OUTLIER_VALUES, dtype=np.float64),
    )


def expected_state_dict() -> dict[str, np.ndarray]:
    """What loading any golden archive must reconstruct (float64)."""
    return {
        TENSOR_NAME: golden_tensor().dequantize(dtype=np.float64),
        FP32_NAME: np.array(FP32_VALUES, dtype=np.float64),
    }


def golden_payload(version: int) -> dict[str, np.ndarray]:
    """The raw npz payload of the golden archive for ``version``."""
    if version not in GOLDEN_VERSIONS:
        raise ValueError(f"no golden payload for format version {version}")
    tensor = golden_tensor()
    prefix = f"gobo::{TENSOR_NAME}"
    if version == 1:
        meta = np.array([BITS, *SHAPE], dtype=np.int64)
    else:
        meta = np.array([BITS, ITERATIONS, *SHAPE], dtype=np.int64)
    payload: dict[str, np.ndarray] = {
        f"{prefix}::codes": np.frombuffer(tensor.packed_codes, dtype=np.uint8),
        f"{prefix}::centroids": tensor.centroids.astype(np.float32),
        f"{prefix}::positions": tensor.outlier_positions.astype(np.uint32),
        f"{prefix}::outliers": tensor.outlier_values.astype(np.float32),
        f"{prefix}::meta": meta,
        f"fp32::{FP32_NAME}": np.array(FP32_VALUES, dtype=np.float32),
        "index::fc": np.array([TENSOR_NAME], dtype=np.str_),
        "index::embeddings": np.array([], dtype=np.str_),
    }
    if version >= 2:
        payload["index::version"] = np.array([version], dtype=np.int64)
    if version >= 3:
        payload["index::checksum"] = np.frombuffer(
            payload_checksum(payload), dtype=np.uint8
        )
    return payload


def golden_path(data_dir: str | Path, version: int) -> Path:
    return Path(data_dir) / f"golden_v{version}.npz"


def write_golden(data_dir: str | Path, version: int) -> Path:
    """Write the golden archive for ``version`` under ``data_dir``."""
    path = golden_path(data_dir, version)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_savez(path, golden_payload(version))
    return path


# ---------------------------------------------------------------------------
# Method-zoo goldens: one v3 archive per archive *shape* the zoo produces
# ---------------------------------------------------------------------------

#: Methods whose archives exercise a layout the classic golden doesn't:
#: ``zeroshot`` (uniform-grid centroids, clip outliers), ``gwq``
#: (saliency-positioned outliers at inlier magnitudes), ``mixed``
#: (two tensors at different bit widths in one archive).  Like the classic
#: goldens these payloads are hand-written — they pin the on-disk layout the
#: methods emit, independent of the algorithms.
METHOD_GOLDENS = ("zeroshot", "gwq", "mixed")

#: zeroshot: 3-bit mid-rise grid over [-0.125, 0.125), step 2^-5; every
#: centroid is lo + (i + 0.5) * step, float32-exact.  The two outliers sit
#: *outside* the grid range (clipped tail), unlike GOBO's Gaussian split.
ZEROSHOT_STEP = 0.03125
ZEROSHOT_LO = -0.125
ZEROSHOT_CENTROIDS = tuple(
    ZEROSHOT_LO + (i + 0.5) * ZEROSHOT_STEP for i in range(8)
)
ZEROSHOT_CODES = (7, 0, 3, 4, 1, 6, 2, 5, 5, 2, 6, 1, 4, 3, 0, 7, 3, 4)
ZEROSHOT_OUTLIER_VALUES = (0.5, -0.25)

#: gwq: outliers at flat positions 0 and 1 with small magnitudes — adjacent,
#: inlier-sized values no distribution split would pick; only a saliency
#: ranking puts them in the FP32 group.  Inliers reuse the classic centroids.
GWQ_OUTLIER_POSITIONS = (0, 1)
GWQ_OUTLIER_VALUES = (0.015625, -0.03125)
GWQ_CODES = (0, 1, 2, 3, 3, 2, 1, 0, 0, 0, 1, 1, 2, 2, 3, 3, 0, 2)

#: mixed: two tensors in one archive at different widths (the allocator's
#: signature output).  "enc0" is 2-bit, "enc1" is 3-bit.
MIXED_BITS = {"enc0": 2, "enc1": 3}
MIXED_CODES = {
    "enc0": (0, 1, 2, 3, 3, 2, 1, 0, 0, 0, 1, 1, 2, 2, 3, 3, 0, 2),
    "enc1": (0, 1, 2, 3, 4, 5, 6, 7, 7, 6, 5, 4, 3, 2, 1, 0, 2, 5),
}
MIXED_CENTROIDS = {
    "enc0": CENTROIDS,
    "enc1": tuple((i - 3.5) * 0.03125 for i in range(8)),
}


def _tensor(
    bits: int,
    centroids: tuple[float, ...],
    codes: tuple[int, ...],
    outlier_positions: tuple[int, ...],
    outlier_values: tuple[float, ...],
) -> GoboQuantizedTensor:
    return GoboQuantizedTensor(
        shape=SHAPE,
        bits=bits,
        centroids=np.array(centroids, dtype=np.float64),
        packed_codes=pack_bits(np.array(codes, dtype=np.int64), bits),
        outlier_positions=np.array(outlier_positions, dtype=np.int64),
        outlier_values=np.array(outlier_values, dtype=np.float64),
    )


def method_golden_tensors(method: str) -> dict[str, GoboQuantizedTensor]:
    """The quantized tensors the golden archive for ``method`` encodes."""
    if method == "zeroshot":
        return {
            TENSOR_NAME: _tensor(
                3, ZEROSHOT_CENTROIDS, ZEROSHOT_CODES,
                OUTLIER_POSITIONS, ZEROSHOT_OUTLIER_VALUES,
            )
        }
    if method == "gwq":
        return {
            TENSOR_NAME: _tensor(
                BITS, CENTROIDS, GWQ_CODES,
                GWQ_OUTLIER_POSITIONS, GWQ_OUTLIER_VALUES,
            )
        }
    if method == "mixed":
        return {
            name: _tensor(
                MIXED_BITS[name], MIXED_CENTROIDS[name], MIXED_CODES[name],
                OUTLIER_POSITIONS, OUTLIER_VALUES,
            )
            for name in sorted(MIXED_BITS)
        }
    raise ValueError(f"no method golden for {method!r}")


def expected_method_state(method: str) -> dict[str, np.ndarray]:
    """What loading the ``method`` golden must reconstruct (float64)."""
    state = {
        name: tensor.dequantize(dtype=np.float64)
        for name, tensor in method_golden_tensors(method).items()
    }
    state[FP32_NAME] = np.array(FP32_VALUES, dtype=np.float64)
    return state


def method_golden_payload(method: str) -> dict[str, np.ndarray]:
    """The raw npz payload (always format v3) for the ``method`` golden."""
    tensors = method_golden_tensors(method)
    payload: dict[str, np.ndarray] = {}
    for name, tensor in tensors.items():
        prefix = f"gobo::{name}"
        payload[f"{prefix}::codes"] = np.frombuffer(
            tensor.packed_codes, dtype=np.uint8
        )
        payload[f"{prefix}::centroids"] = tensor.centroids.astype(np.float32)
        payload[f"{prefix}::positions"] = tensor.outlier_positions.astype(np.uint32)
        payload[f"{prefix}::outliers"] = tensor.outlier_values.astype(np.float32)
        payload[f"{prefix}::meta"] = np.array(
            [tensor.bits, ITERATIONS, *tensor.shape], dtype=np.int64
        )
    payload[f"fp32::{FP32_NAME}"] = np.array(FP32_VALUES, dtype=np.float32)
    payload["index::fc"] = np.array(sorted(tensors), dtype=np.str_)
    payload["index::embeddings"] = np.array([], dtype=np.str_)
    payload["index::version"] = np.array([3], dtype=np.int64)
    payload["index::checksum"] = np.frombuffer(
        payload_checksum(payload), dtype=np.uint8
    )
    return payload


def method_golden_path(data_dir: str | Path, method: str) -> Path:
    return Path(data_dir) / f"golden_method_{method}.npz"


def write_method_golden(data_dir: str | Path, method: str) -> Path:
    """Write the golden archive for ``method`` under ``data_dir``."""
    path = method_golden_path(data_dir, method)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_savez(path, method_golden_payload(method))
    return path
