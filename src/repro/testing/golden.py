"""Golden archive fixtures: canonical tiny archives for every format version.

The serialization format has lived through three versions (v1: no iteration
counts, v2: iteration counts + pickle-free indexes, v3: SHA-256 checksum).
Old archives on disk must keep loading forever, so ``tests/data/`` checks in
one tiny archive per version and ``tests/core/test_golden_archives.py``
locks their loads.  The payloads here are built **by hand** — fixed
centroids, codes and outliers, not the output of the quantizer — so the
fixtures pin the *format*, independent of how the quantization algorithm
evolves.

Regenerate the checked-in files (byte-identical, thanks to the
deterministic zip writer) with::

    PYTHONPATH=src python scripts/make_golden_archives.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.quantizer import GoboQuantizedTensor
from repro.core.serialization import payload_checksum
from repro.utils.atomic import atomic_savez
from repro.utils.bitpack import pack_bits

GOLDEN_VERSIONS = (1, 2, 3)

#: The one quantized tensor every golden archive stores.
TENSOR_NAME = "w"
SHAPE = (4, 5)
BITS = 2
ITERATIONS = 7  # recorded from v2 on; v1 archives predate the field
#: Exactly float32-representable centroids (powers of two), so the
#: float64 -> float32 -> float64 round-trip through the file is lossless.
CENTROIDS = (-0.0625, -0.015625, 0.03125, 0.0625)
#: Flat indices (in the 4x5 tensor) held out of the G group as outliers.
OUTLIER_POSITIONS = (3, 17)
OUTLIER_VALUES = (0.5, -0.375)
#: Centroid index per G-group weight, flat order, outlier slots skipped.
CODES = (0, 1, 2, 3, 3, 2, 1, 0, 0, 0, 1, 1, 2, 2, 3, 3, 0, 2)
#: The one pass-through FP32 parameter.
FP32_NAME = "bias"
FP32_VALUES = (0.0, 0.25, 0.5, 0.75, 1.0)


def golden_tensor() -> GoboQuantizedTensor:
    """The quantized tensor all three golden archives encode."""
    return GoboQuantizedTensor(
        shape=SHAPE,
        bits=BITS,
        centroids=np.array(CENTROIDS, dtype=np.float64),
        packed_codes=pack_bits(np.array(CODES, dtype=np.int64), BITS),
        outlier_positions=np.array(OUTLIER_POSITIONS, dtype=np.int64),
        outlier_values=np.array(OUTLIER_VALUES, dtype=np.float64),
    )


def expected_state_dict() -> dict[str, np.ndarray]:
    """What loading any golden archive must reconstruct (float64)."""
    return {
        TENSOR_NAME: golden_tensor().dequantize(dtype=np.float64),
        FP32_NAME: np.array(FP32_VALUES, dtype=np.float64),
    }


def golden_payload(version: int) -> dict[str, np.ndarray]:
    """The raw npz payload of the golden archive for ``version``."""
    if version not in GOLDEN_VERSIONS:
        raise ValueError(f"no golden payload for format version {version}")
    tensor = golden_tensor()
    prefix = f"gobo::{TENSOR_NAME}"
    if version == 1:
        meta = np.array([BITS, *SHAPE], dtype=np.int64)
    else:
        meta = np.array([BITS, ITERATIONS, *SHAPE], dtype=np.int64)
    payload: dict[str, np.ndarray] = {
        f"{prefix}::codes": np.frombuffer(tensor.packed_codes, dtype=np.uint8),
        f"{prefix}::centroids": tensor.centroids.astype(np.float32),
        f"{prefix}::positions": tensor.outlier_positions.astype(np.uint32),
        f"{prefix}::outliers": tensor.outlier_values.astype(np.float32),
        f"{prefix}::meta": meta,
        f"fp32::{FP32_NAME}": np.array(FP32_VALUES, dtype=np.float32),
        "index::fc": np.array([TENSOR_NAME], dtype=np.str_),
        "index::embeddings": np.array([], dtype=np.str_),
    }
    if version >= 2:
        payload["index::version"] = np.array([version], dtype=np.int64)
    if version >= 3:
        payload["index::checksum"] = np.frombuffer(
            payload_checksum(payload), dtype=np.uint8
        )
    return payload


def golden_path(data_dir: str | Path, version: int) -> Path:
    return Path(data_dir) / f"golden_v{version}.npz"


def write_golden(data_dir: str | Path, version: int) -> Path:
    """Write the golden archive for ``version`` under ``data_dir``."""
    path = golden_path(data_dir, version)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_savez(path, golden_payload(version))
    return path
