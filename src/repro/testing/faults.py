"""Deterministic fault injectors for the quantization pipeline and storage.

The layer-parallel engine accepts a ``fault_injector`` hook — called as
``injector(index, job, weights)`` before each layer quantizes — which may
raise (simulating a layer failure) or return a replacement weight array
(poisoning the input).  The injectors here are the deterministic,
worker-count-independent building blocks the robustness test suite uses to
prove every ``on_error``/``validation`` policy path end-to-end:

* :class:`RaiseOnLayer` — fail one specific layer, selected by job index or
  name, every time it is attempted (a persistent fault).
* :class:`RaiseNth` — fail the Nth injector call (1-based, thread-safe);
  with ``times`` it becomes a transient fault that clears after N raises.
* :class:`PoisonTensor` — hand the engine a NaN/Inf/constant-poisoned copy
  of one layer's weights, exercising the validation layer rather than the
  exception path.

Durability-oriented injectors exercise the job subsystem end-to-end:

* :class:`HangOnLayer` — stall the targeted layer (cooperatively: it polls
  :func:`repro.jobs.watchdog.checkpoint`), proving the per-layer watchdog
  converts a hang into a ``timeout`` failure.
* :class:`SlowLayer` — delay every (or one) layer by a fixed number of
  seconds; combined with a tight ``layer_timeout`` this also times out, and
  alone it widens the window for signal/kill tests.
* :class:`TransientIOFault` — raise :class:`InjectedIOError` (an ``OSError``)
  the first N attempts of a layer, then succeed: the shape of a flaky
  filesystem or NFS blip the transient-retry loop absorbs in place.
* :class:`CrashOnCall` / :func:`crash_process` — SIGKILL the process on the
  Nth injector call: the crash the journal + ``--resume`` path recovers from.

Process-fleet injectors target one worker *process* of a
``backend="process"`` run (:mod:`repro.jobs.fleet`) by worker id:

* :class:`KillWorker` — SIGKILL the targeted worker mid-layer: the
  supervisor must reassign the leased layer to a survivor.
* :class:`MuteWorker` — mute the worker's heartbeats and wedge it: the
  supervisor's liveness monitor must declare it dead and SIGKILL it.
* :class:`HangWorker` — cooperatively hang the worker's current layer while
  heartbeats keep flowing: the *worker-local* watchdog must time it out.

Because kill-and-resume tests need faults inside a *subprocess* — and fleet
workers cannot receive injector objects at all (they hold locks, which do
not pickle) — injectors can be described as text specs (``"crash:3"``,
``"hang:layer2"``, ``"slow:0.2"``, ``"transient-io:layer1:2"``,
``"kill-worker:1"``) parsed by :func:`injector_from_spec`; the CLI builds
one from the ``REPRO_FAULTS`` environment variable via
:func:`injector_from_env`, and each fleet worker rebuilds its own from the
spec (stateful injectors count per worker, not globally).

Serve-path injectors target the online request path (:mod:`repro.serve`,
DESIGN.md §5i) rather than the offline engine.  They follow a different
protocol — ``injector(stage, model)`` called at named hook points
(``"forward"`` in the micro-batcher, ``"load"`` in the registry) — and are
parsed from the same ``REPRO_FAULTS`` variable by
:func:`serve_injector_from_env`, so the serve CLI plants chaos exactly the
way the quantize CLI does.  Engine kinds in the spec are ignored by the
serve parser and vice versa (the two paths share one environment variable):

* :class:`HangForward` — wedge the batch worker inside a forward
  (non-cooperatively: a real sleep, like a hung mmap read on failing
  storage).  The batch-worker watchdog must fail the batch within
  ``--forward-timeout`` and replace the worker.
* :class:`FailForward` — raise :class:`InjectedFault` from the forward the
  first N matching calls: transient failures that feed the health
  breaker's sliding window.
* :class:`CorruptMemberAtServe` — raise
  :class:`~repro.errors.ChecksumMismatchError` from the forward, the exact
  error a lazy-CRC check produces when an archive member rots under a
  registered model: the health machine must quarantine the model and
  start background reloads from disk.
* :class:`SlowLoad` — delay archive loads in the registry, widening
  reload/probe race windows.

Storage-level injectors simulate the two ways an archive dies on disk:

* :func:`truncate_file` — a crash mid-write (the container is torn),
* :func:`corrupt_bytes` — bit rot / a flipped byte inside an intact
  container.

None of these depend on pytest; they are plain callables/functions usable
from any harness.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.parallel import LayerJob
from repro.jobs.watchdog import checkpoint

#: Environment variable the CLI reads fault specs from (kill/resume tests).
FAULTS_ENV = "REPRO_FAULTS"

#: Spec kinds handled by the engine parser (:func:`injector_from_spec`);
#: the serve parser skips these, and the engine parser skips
#: :data:`SERVE_FAULT_KINDS`, so one ``REPRO_FAULTS`` value can target
#: both the offline pipeline and the serving runtime.
ENGINE_FAULT_KINDS = frozenset({
    "raise", "hang", "slow", "transient-io", "crash", "poison",
    "kill-worker", "mute-worker", "hang-worker",
})


class InjectedFault(RuntimeError):
    """The exception type raised by the built-in injectors.

    A distinct type so tests can assert that a captured
    :class:`~repro.core.parallel.LayerFailure` came from the harness and
    not from a genuine defect.
    """


class InjectedIOError(OSError):
    """An injected *transient* fault: an ``OSError`` subclass, so the
    engine's transient-retry classifier (:func:`repro.jobs.retry.is_transient`)
    treats it exactly like a real I/O blip."""


@dataclass
class RaiseOnLayer:
    """Raise whenever the targeted layer is attempted.

    ``layer`` selects by job index (int) or layer name (str).  Persistent:
    retries at higher bit widths hit the same fault, so under
    ``on_error="retry-higher-bits"`` the layer ends in FP32 fallback.
    """

    layer: int | str
    message: str = "injected fault"

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        if self._matches(index, job):
            raise InjectedFault(f"{self.message} (layer {job.name!r}, index {index})")
        return None

    def _matches(self, index: int, job: LayerJob) -> bool:
        if isinstance(self.layer, str):
            return job.name == self.layer
        return index == self.layer


@dataclass
class RaiseNth:
    """Raise on the Nth injector call (1-based), counted thread-safely.

    Under parallel fan-out the *which layer* of the Nth call depends on
    scheduling, but the invariant the robustness suite needs — exactly
    ``times`` injected failures per run — holds for every worker count.
    ``times`` bounds how many calls raise; afterwards the fault clears
    (a transient error).
    """

    nth: int = 1
    times: int = 1
    message: str = "injected transient fault"
    _calls: int = field(default=0, repr=False)
    _raised: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        with self._lock:
            self._calls += 1
            should_raise = self._calls >= self.nth and self._raised < self.times
            if should_raise:
                self._raised += 1
        if should_raise:
            raise InjectedFault(f"{self.message} (call {self._calls}, layer {job.name!r})")
        return None


@dataclass
class PoisonTensor:
    """Replace the targeted layer's weights with a poisoned copy.

    ``mode`` is one of ``"nan"`` (every ``stride``-th entry becomes NaN),
    ``"inf"`` (same with +inf) or ``"constant"`` (the whole tensor becomes
    one value — a zero-variance tensor).  The poison goes through the
    normal validation path, so this exercises ``validation=`` policies
    rather than the exception-isolation path.
    """

    layer: int | str
    mode: str = "nan"
    stride: int = 7
    value: float = 0.5

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        if not self._matches(index, job):
            return None
        poisoned = np.array(weights, dtype=np.float64, copy=True)
        flat = poisoned.ravel()
        if self.mode == "nan":
            flat[:: self.stride] = np.nan
        elif self.mode == "inf":
            flat[:: self.stride] = np.inf
        elif self.mode == "constant":
            flat[:] = self.value
        else:
            raise ValueError(f"unknown poison mode {self.mode!r}")
        return poisoned

    def _matches(self, index: int, job: LayerJob) -> bool:
        if isinstance(self.layer, str):
            return job.name == self.layer
        return index == self.layer


@dataclass
class HangOnLayer:
    """Stall the targeted layer until the watchdog deadline fires.

    The stall is *cooperative*: it spins on
    :func:`repro.jobs.watchdog.checkpoint`, which raises
    :class:`~repro.errors.LayerTimeoutError` the moment the engine's
    per-layer deadline expires — the same mechanism that catches a hang in
    the clustering loop.  ``max_seconds`` is a harness safety net: with no
    deadline armed (no ``layer_timeout``), the hang gives up after that long
    and raises :class:`InjectedFault` instead of wedging the test suite.
    """

    layer: int | str
    max_seconds: float = 30.0

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        if not _matches_layer(self.layer, index, job):
            return None
        give_up = time.monotonic() + self.max_seconds
        while time.monotonic() < give_up:
            checkpoint()  # raises LayerTimeoutError when the deadline expires
            time.sleep(0.002)
        raise InjectedFault(
            f"HangOnLayer gave up after {self.max_seconds}s without a deadline "
            f"(layer {job.name!r}): was layer_timeout set?"
        )


@dataclass
class SlowLayer:
    """Delay layers by ``seconds`` (every layer, or just the targeted one).

    Sleeps in small checkpointed slices, so a ``layer_timeout`` shorter than
    the delay still converts it into a timeout failure promptly.
    """

    seconds: float
    layer: int | str | None = None

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        if self.layer is not None and not _matches_layer(self.layer, index, job):
            return None
        deadline = time.monotonic() + self.seconds
        while time.monotonic() < deadline:
            checkpoint()
            time.sleep(min(0.005, self.seconds))
        return None


@dataclass
class TransientIOFault:
    """Raise :class:`InjectedIOError` the first ``times`` attempts of a layer.

    Counted per layer, thread-safely, across retries: attempt 1..``times``
    raise, attempt ``times+1`` succeeds.  With ``transient_retries >= times``
    the engine absorbs the fault in place and the run's output is
    bit-identical to a fault-free run; with a smaller budget the error
    escalates to the ``on_error`` policy like any other exception.
    """

    layer: int | str
    times: int = 1
    _attempts: dict[str, int] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        if not _matches_layer(self.layer, index, job):
            return None
        with self._lock:
            attempt = self._attempts.get(job.name, 0) + 1
            self._attempts[job.name] = attempt
        if attempt <= self.times:
            raise InjectedIOError(
                f"injected transient I/O fault (layer {job.name!r}, "
                f"attempt {attempt}/{self.times})"
            )
        return None


def crash_process() -> None:
    """SIGKILL the current process: no cleanup, no atexit, no flushing.

    The honest simulation of OOM-kills and power loss — everything not
    already fsynced is lost, which is exactly what the journal's
    append-then-fsync discipline is designed to survive.
    """
    os.kill(os.getpid(), signal.SIGKILL)


@dataclass
class CrashOnCall:
    """SIGKILL the process on the ``nth`` injector call (1-based).

    Counted thread-safely across workers.  Used (via ``REPRO_FAULTS=crash:N``)
    by the kill-and-resume tests: the subprocess dies mid-run, the journal
    keeps every layer that finished, and ``--resume`` completes the rest.
    """

    nth: int = 1
    _calls: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        with self._lock:
            self._calls += 1
            hit = self._calls == self.nth
        if hit:
            crash_process()
        return None


@dataclass
class KillWorker:
    """SIGKILL fleet worker ``worker`` on its ``nth`` injector call (1-based).

    The canonical fleet chaos fault: targets one worker process by id
    (:func:`repro.jobs.fleet.current_worker_id`), counts calls within that
    worker only, and dies mid-layer with no cleanup.  The supervisor must
    reassign the leased layer to a survivor and the final archive must be
    byte-identical to an undisturbed run.  Outside a fleet worker this
    injector never matches, so the same ``REPRO_FAULTS`` spec is inert
    under the thread backend.
    """

    worker: int
    nth: int = 1
    _calls: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        from repro.jobs.fleet import current_worker_id

        if current_worker_id() != self.worker:
            return None
        with self._lock:
            self._calls += 1
            hit = self._calls == self.nth
        if hit:
            crash_process()
        return None


@dataclass
class MuteWorker:
    """Silence worker ``worker``'s heartbeats, then wedge it.

    Simulates the worker that is alive but unresponsive — stuck in
    GIL-holding native code, swapping, or otherwise never beating.  The
    fault mutes the heartbeat thread
    (:func:`repro.jobs.fleet.mute_heartbeat`) and then sleeps without
    checkpointing; the supervisor must notice the silence, SIGKILL the
    worker and reassign its layer.  ``max_seconds`` bounds the wedge so a
    misconfigured harness fails loudly instead of hanging.
    """

    worker: int
    max_seconds: float = 30.0

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        from repro.jobs.fleet import current_worker_id, mute_heartbeat

        if current_worker_id() != self.worker:
            return None
        mute_heartbeat()
        time.sleep(self.max_seconds)  # the supervisor SIGKILLs us long before
        raise InjectedFault(
            f"MuteWorker outlived {self.max_seconds}s of silence "
            f"(layer {job.name!r}): did the supervisor's liveness check run?"
        )


@dataclass
class HangWorker:
    """Cooperatively hang worker ``worker``'s current layer.

    The fleet counterpart of :class:`HangOnLayer`: the stall polls
    :func:`repro.jobs.watchdog.checkpoint`, so the *worker-local* watchdog
    converts it into a ``timeout`` failure while heartbeats keep flowing —
    proving per-layer deadlines still work inside fleet workers, distinct
    from the heartbeat-silence path :class:`MuteWorker` exercises.
    """

    worker: int
    max_seconds: float = 30.0

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        from repro.jobs.fleet import current_worker_id

        if current_worker_id() != self.worker:
            return None
        give_up = time.monotonic() + self.max_seconds
        while time.monotonic() < give_up:
            checkpoint()  # raises LayerTimeoutError when the deadline expires
            time.sleep(0.002)
        raise InjectedFault(
            f"HangWorker gave up after {self.max_seconds}s without a deadline "
            f"(layer {job.name!r}): was layer_timeout set?"
        )


def _matches_layer(selector: int | str, index: int, job: LayerJob) -> bool:
    if isinstance(selector, str):
        return job.name == selector
    return index == selector


# --------------------------------------------------------------------------
# Serve-path injectors: protocol injector(stage, model), stages "forward"
# (micro-batcher, before each model forward) and "load" (registry, before
# each archive load).  See DESIGN.md §5i.

#: Spec kinds handled by the serve parser (and skipped by the engine one).
SERVE_FAULT_KINDS = frozenset(
    {"hang-forward", "fail-forward", "corrupt-member-at-serve", "slow-load"}
)


@dataclass
class HangForward:
    """Wedge the batch worker inside a forward for ``seconds``.

    The sleep is deliberately *non-cooperative* (no checkpoints): this is
    the hung-mmap-read / stuck-native-code hang class only an external
    watchdog can catch.  Fires on the first ``times`` forwards of ``model``
    (None = any model), then clears — so a replaced worker's retry of the
    next request succeeds, proving recovery.
    """

    model: str | None = None
    seconds: float = 30.0
    times: int = 1
    _hits: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __call__(self, stage: str, model: str) -> None:
        if stage != "forward" or self.model not in (None, model):
            return
        with self._lock:
            if self._hits >= self.times:
                return
            self._hits += 1
        time.sleep(self.seconds)


@dataclass
class FailForward:
    """Raise :class:`InjectedFault` from the first ``times`` forwards of
    ``model`` (None = any model; ``times=0`` = every forward, persistent).

    The transient-failure shape the health breaker counts: enough of these
    inside the breaker window must trip the model into quarantine.
    """

    model: str | None = None
    times: int = 1
    _hits: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __call__(self, stage: str, model: str) -> None:
        if stage != "forward" or self.model not in (None, model):
            return
        with self._lock:
            if self.times and self._hits >= self.times:
                return
            self._hits += 1
            hit = self._hits
        raise InjectedFault(
            f"injected forward failure (model {model!r}, hit {hit})"
        )


@dataclass
class CorruptMemberAtServe:
    """Surface a lazy-CRC integrity error mid-forward.

    Raises :class:`~repro.errors.ChecksumMismatchError` — the exact type a
    ``verify="lazy"`` member read produces on bit rot — from the first
    ``times`` forwards of ``model``.  Deterministic regardless of which
    members earlier batches already touched and cached, which is what makes
    it usable from a live chaos script; the genuinely-corrupt-bytes path is
    covered by the in-process self-healing suite, which flips real bytes on
    disk before first touch.
    """

    model: str | None = None
    times: int = 1
    _hits: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __call__(self, stage: str, model: str) -> None:
        from repro.errors import ChecksumMismatchError

        if stage != "forward" or self.model not in (None, model):
            return
        with self._lock:
            if self.times and self._hits >= self.times:
                return
            self._hits += 1
        raise ChecksumMismatchError(
            f"injected member CRC mismatch for model {model!r} "
            f"(corrupt-member-at-serve)"
        )


@dataclass
class SlowLoad:
    """Delay every archive load (or just ``model``'s) by ``seconds``.

    Exercises that a slow quarantine reload or hot-swap never blocks the
    request path of *other* models, and widens probe/reload race windows
    for tests.
    """

    seconds: float
    model: str | None = None

    def __call__(self, stage: str, model: str) -> None:
        if stage != "load" or self.model not in (None, model):
            return
        time.sleep(self.seconds)


def compose_serve_injectors(*injectors):
    """Chain serve injectors: each may sleep or raise; first raise wins."""

    def injector(stage: str, model: str) -> None:
        for inject in injectors:
            inject(stage, model)

    return injector


def serve_injector_from_spec(spec: str):
    """Build a serve-path injector from a comma-separated text spec.

    Forms (``MODEL`` is a registered model name)::

        hang-forward:MODEL[:SECONDS[:TIMES]]    HangForward
        fail-forward:MODEL[:TIMES]              FailForward (0 = persistent)
        corrupt-member-at-serve:MODEL[:TIMES]   CorruptMemberAtServe
        slow-load:SECONDS[:MODEL]               SlowLoad

    Engine-side kinds (``crash:3``, ``kill-worker:1``, ...) in the same
    spec are skipped, so one ``REPRO_FAULTS`` value can carry faults for
    both paths; a kind *neither* parser knows raises ``ValueError``.
    Returns None when the spec contains no serve faults.
    """
    parts = [p.strip() for p in spec.split(",") if p.strip()]
    injectors = []
    for part in parts:
        kind, _, rest = part.partition(":")
        args = rest.split(":") if rest else []
        try:
            if kind == "hang-forward":
                model = args[0]
                seconds = float(args[1]) if len(args) > 1 else 30.0
                times = int(args[2]) if len(args) > 2 else 1
                injectors.append(HangForward(model, seconds=seconds, times=times))
            elif kind == "fail-forward":
                model = args[0]
                times = int(args[1]) if len(args) > 1 else 1
                injectors.append(FailForward(model, times=times))
            elif kind == "corrupt-member-at-serve":
                model = args[0]
                times = int(args[1]) if len(args) > 1 else 1
                injectors.append(CorruptMemberAtServe(model, times=times))
            elif kind == "slow-load":
                seconds = float(args[0])
                model = args[1] if len(args) > 1 else None
                injectors.append(SlowLoad(seconds, model=model))
            elif kind in ENGINE_FAULT_KINDS:
                continue  # an engine fault riding in the same variable
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise ValueError(f"bad fault spec {part!r}: {exc}") from exc
    if not injectors:
        return None
    return injectors[0] if len(injectors) == 1 else compose_serve_injectors(*injectors)


def serve_injector_from_env(env: str = FAULTS_ENV):
    """Serve-path injector described by ``REPRO_FAULTS`` (None when unset)."""
    spec = os.environ.get(env, "")
    return serve_injector_from_spec(spec) if spec.strip() else None


def _parse_layer(token: str) -> int | str:
    """Layer selector from a spec token: an int job index or a layer name."""
    try:
        return int(token)
    except ValueError:
        return token


def injector_from_spec(spec: str):
    """Build a fault injector from a comma-separated text spec.

    Forms (``LAYER`` is a job index or a layer name)::

        raise:LAYER               RaiseOnLayer
        hang:LAYER                HangOnLayer
        slow:SECONDS[:LAYER]      SlowLayer
        transient-io:LAYER[:N]    TransientIOFault (default N=1)
        crash:NTH                 CrashOnCall
        poison:LAYER[:MODE]       PoisonTensor
        kill-worker:W[:NTH]       KillWorker (fleet worker W, default NTH=1)
        mute-worker:W[:MAXS]      MuteWorker (fleet worker W)
        hang-worker:W[:MAXS]      HangWorker (fleet worker W)

    Returns None for an empty spec.  Raises ``ValueError`` on anything it
    cannot parse — a silently ignored fault spec would make a kill test
    pass vacuously.
    """
    parts = [p.strip() for p in spec.split(",") if p.strip()]
    injectors = []
    for part in parts:
        kind, _, rest = part.partition(":")
        args = rest.split(":") if rest else []
        try:
            if kind == "raise":
                (layer,) = args
                injectors.append(RaiseOnLayer(_parse_layer(layer)))
            elif kind == "hang":
                (layer,) = args
                injectors.append(HangOnLayer(_parse_layer(layer)))
            elif kind == "slow":
                seconds = float(args[0])
                layer = _parse_layer(args[1]) if len(args) > 1 else None
                injectors.append(SlowLayer(seconds, layer=layer))
            elif kind == "transient-io":
                layer = _parse_layer(args[0])
                times = int(args[1]) if len(args) > 1 else 1
                injectors.append(TransientIOFault(layer, times=times))
            elif kind == "crash":
                (nth,) = args
                injectors.append(CrashOnCall(int(nth)))
            elif kind == "poison":
                layer = _parse_layer(args[0])
                mode = args[1] if len(args) > 1 else "nan"
                injectors.append(PoisonTensor(layer, mode=mode))
            elif kind == "kill-worker":
                worker = int(args[0])
                nth = int(args[1]) if len(args) > 1 else 1
                injectors.append(KillWorker(worker, nth=nth))
            elif kind == "mute-worker":
                worker = int(args[0])
                max_seconds = float(args[1]) if len(args) > 1 else 30.0
                injectors.append(MuteWorker(worker, max_seconds=max_seconds))
            elif kind == "hang-worker":
                worker = int(args[0])
                max_seconds = float(args[1]) if len(args) > 1 else 30.0
                injectors.append(HangWorker(worker, max_seconds=max_seconds))
            elif kind in SERVE_FAULT_KINDS:
                continue  # a serve-path fault riding in the same variable
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise ValueError(f"bad fault spec {part!r}: {exc}") from exc
    if not injectors:
        return None
    return injectors[0] if len(injectors) == 1 else compose_injectors(*injectors)


def injector_from_env(env: str = FAULTS_ENV):
    """Injector described by the ``REPRO_FAULTS`` environment variable.

    Returns None when unset/empty — the universal production case; the
    variable exists so kill-and-resume tests can plant faults inside a CLI
    subprocess without test-only flags.
    """
    spec = os.environ.get(env, "")
    return injector_from_spec(spec) if spec.strip() else None


def compose_injectors(*injectors):
    """Chain injectors: each may raise; the first replacement array wins
    as input to the injectors after it."""

    def injector(index: int, job: LayerJob, weights: np.ndarray):
        replaced = None
        for inject in injectors:
            outcome = inject(index, job, replaced if replaced is not None else weights)
            if outcome is not None:
                replaced = outcome
        return replaced

    return injector


def truncate_file(path: str | Path, keep: int | float) -> int:
    """Truncate the file at ``path``, simulating a crash mid-write.

    ``keep`` is an absolute byte count (int) or a fraction of the current
    size (float in (0, 1)).  Returns the resulting size in bytes.
    """
    path = Path(path)
    size = path.stat().st_size
    if isinstance(keep, float):
        if not 0.0 <= keep < 1.0:
            raise ValueError(f"fractional keep must be in [0, 1), got {keep}")
        keep_bytes = int(size * keep)
    else:
        keep_bytes = min(int(keep), size)
    data = path.read_bytes()[:keep_bytes]
    path.write_bytes(data)
    return keep_bytes


def corrupt_bytes(path: str | Path, offset: int, xor: int = 0xFF, count: int = 1) -> None:
    """Flip bits in ``count`` bytes at ``offset``, simulating bit rot.

    ``offset`` may be negative (from the end).  ``xor`` is the mask applied
    to each byte (default 0xFF: invert); it must be non-zero, otherwise
    nothing would change.
    """
    if xor == 0:
        raise ValueError("xor mask 0 would be a no-op")
    path = Path(path)
    data = bytearray(path.read_bytes())
    if offset < 0:
        offset += len(data)
    if not 0 <= offset < len(data):
        raise ValueError(f"offset {offset} outside file of {len(data)} bytes")
    for i in range(offset, min(offset + count, len(data))):
        data[i] ^= xor
    path.write_bytes(bytes(data))
