"""Deterministic fault injectors for the quantization pipeline and storage.

The layer-parallel engine accepts a ``fault_injector`` hook — called as
``injector(index, job, weights)`` before each layer quantizes — which may
raise (simulating a layer failure) or return a replacement weight array
(poisoning the input).  The injectors here are the deterministic,
worker-count-independent building blocks the robustness test suite uses to
prove every ``on_error``/``validation`` policy path end-to-end:

* :class:`RaiseOnLayer` — fail one specific layer, selected by job index or
  name, every time it is attempted (a persistent fault).
* :class:`RaiseNth` — fail the Nth injector call (1-based, thread-safe);
  with ``times`` it becomes a transient fault that clears after N raises.
* :class:`PoisonTensor` — hand the engine a NaN/Inf/constant-poisoned copy
  of one layer's weights, exercising the validation layer rather than the
  exception path.

Storage-level injectors simulate the two ways an archive dies on disk:

* :func:`truncate_file` — a crash mid-write (the container is torn),
* :func:`corrupt_bytes` — bit rot / a flipped byte inside an intact
  container.

None of these depend on pytest; they are plain callables/functions usable
from any harness.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.parallel import LayerJob


class InjectedFault(RuntimeError):
    """The exception type raised by the built-in injectors.

    A distinct type so tests can assert that a captured
    :class:`~repro.core.parallel.LayerFailure` came from the harness and
    not from a genuine defect.
    """


@dataclass
class RaiseOnLayer:
    """Raise whenever the targeted layer is attempted.

    ``layer`` selects by job index (int) or layer name (str).  Persistent:
    retries at higher bit widths hit the same fault, so under
    ``on_error="retry-higher-bits"`` the layer ends in FP32 fallback.
    """

    layer: int | str
    message: str = "injected fault"

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        if self._matches(index, job):
            raise InjectedFault(f"{self.message} (layer {job.name!r}, index {index})")
        return None

    def _matches(self, index: int, job: LayerJob) -> bool:
        if isinstance(self.layer, str):
            return job.name == self.layer
        return index == self.layer


@dataclass
class RaiseNth:
    """Raise on the Nth injector call (1-based), counted thread-safely.

    Under parallel fan-out the *which layer* of the Nth call depends on
    scheduling, but the invariant the robustness suite needs — exactly
    ``times`` injected failures per run — holds for every worker count.
    ``times`` bounds how many calls raise; afterwards the fault clears
    (a transient error).
    """

    nth: int = 1
    times: int = 1
    message: str = "injected transient fault"
    _calls: int = field(default=0, repr=False)
    _raised: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        with self._lock:
            self._calls += 1
            should_raise = self._calls >= self.nth and self._raised < self.times
            if should_raise:
                self._raised += 1
        if should_raise:
            raise InjectedFault(f"{self.message} (call {self._calls}, layer {job.name!r})")
        return None


@dataclass
class PoisonTensor:
    """Replace the targeted layer's weights with a poisoned copy.

    ``mode`` is one of ``"nan"`` (every ``stride``-th entry becomes NaN),
    ``"inf"`` (same with +inf) or ``"constant"`` (the whole tensor becomes
    one value — a zero-variance tensor).  The poison goes through the
    normal validation path, so this exercises ``validation=`` policies
    rather than the exception-isolation path.
    """

    layer: int | str
    mode: str = "nan"
    stride: int = 7
    value: float = 0.5

    def __call__(self, index: int, job: LayerJob, weights: np.ndarray):
        if not self._matches(index, job):
            return None
        poisoned = np.array(weights, dtype=np.float64, copy=True)
        flat = poisoned.ravel()
        if self.mode == "nan":
            flat[:: self.stride] = np.nan
        elif self.mode == "inf":
            flat[:: self.stride] = np.inf
        elif self.mode == "constant":
            flat[:] = self.value
        else:
            raise ValueError(f"unknown poison mode {self.mode!r}")
        return poisoned

    def _matches(self, index: int, job: LayerJob) -> bool:
        if isinstance(self.layer, str):
            return job.name == self.layer
        return index == self.layer


def compose_injectors(*injectors):
    """Chain injectors: each may raise; the first replacement array wins
    as input to the injectors after it."""

    def injector(index: int, job: LayerJob, weights: np.ndarray):
        replaced = None
        for inject in injectors:
            outcome = inject(index, job, replaced if replaced is not None else weights)
            if outcome is not None:
                replaced = outcome
        return replaced

    return injector


def truncate_file(path: str | Path, keep: int | float) -> int:
    """Truncate the file at ``path``, simulating a crash mid-write.

    ``keep`` is an absolute byte count (int) or a fraction of the current
    size (float in (0, 1)).  Returns the resulting size in bytes.
    """
    path = Path(path)
    size = path.stat().st_size
    if isinstance(keep, float):
        if not 0.0 <= keep < 1.0:
            raise ValueError(f"fractional keep must be in [0, 1), got {keep}")
        keep_bytes = int(size * keep)
    else:
        keep_bytes = min(int(keep), size)
    data = path.read_bytes()[:keep_bytes]
    path.write_bytes(data)
    return keep_bytes


def corrupt_bytes(path: str | Path, offset: int, xor: int = 0xFF, count: int = 1) -> None:
    """Flip bits in ``count`` bytes at ``offset``, simulating bit rot.

    ``offset`` may be negative (from the end).  ``xor`` is the mask applied
    to each byte (default 0xFF: invert); it must be non-zero, otherwise
    nothing would change.
    """
    if xor == 0:
        raise ValueError("xor mask 0 would be a no-op")
    path = Path(path)
    data = bytearray(path.read_bytes())
    if offset < 0:
        offset += len(data)
    if not 0 <= offset < len(data):
        raise ValueError(f"offset {offset} outside file of {len(data)} bytes")
    for i in range(offset, min(offset + count, len(data))):
        data[i] ^= xor
    path.write_bytes(bytes(data))
