"""GOBO vs K-Means convergence on one layer (the paper's Figure 2).

Run with:  python examples/convergence_study.py

Both algorithms share the equal-population initialization and the
reassign/recompute updates; they differ only in when they stop.  GOBO
monitors the total L1 norm and stops at its minimum — a handful of
iterations; K-Means runs to an assignment fixpoint — an order of magnitude
more — and, because the mean update optimizes L2, ends with *worse* L1.
"""

from repro.core import OutlierDetector, gobo_cluster, kmeans_cluster
from repro.models import SyntheticWeightSpec, synthetic_layer_weights


def main() -> None:
    weights = synthetic_layer_weights((768, 768), SyntheticWeightSpec(), rng=0)
    gaussian = OutlierDetector().split(weights).gaussian_values(weights)
    print(f"G group: {gaussian.size} weights, quantizing to 3 bits (8 centroids)\n")

    gobo = gobo_cluster(gaussian, bits=3)
    kmeans = kmeans_cluster(gaussian, bits=3)

    print("iter   GOBO L1        K-Means L1")
    for i in range(0, kmeans.trace.iterations, max(1, kmeans.trace.iterations // 15)):
        gobo_l1 = f"{gobo.trace.l1_norms[i]:12.1f}" if i < gobo.trace.iterations else "   (stopped)"
        print(f"{i:4d} {gobo_l1}  {kmeans.trace.l1_norms[i]:12.1f}")

    print()
    print(f"GOBO   : {gobo.iterations:4d} iterations, final L1 {gobo.l1_norm():.1f}")
    print(f"K-Means: {kmeans.iterations:4d} iterations, final L1 {kmeans.l1_norm():.1f}")
    print(f"convergence speedup: {kmeans.iterations / gobo.iterations:.1f}x "
          f"(the paper reports ~9x)")


if __name__ == "__main__":
    main()
