"""Compress a fine-tuned BERT model without retraining (Table III workflow).

Run with:  python examples/compress_fine_tuned_model.py

Fine-tunes a tiny BERT on the synthetic MNLI task (a couple of minutes on one
CPU core), then applies GOBO and the baseline quantizers to the *frozen*
checkpoint and compares accuracy and compression — the paper's central
use case: quantization minutes after fine-tuning, no quantization-aware
retraining.
"""

from repro.core import quantize_model, select_parameters
from repro.data import generate_mnli
from repro.models import build_model, get_config
from repro.quant import Q8BertQuantizer, QBertQuantizer
from repro.training import Trainer, evaluate


def main() -> None:
    config = get_config("tiny-bert-base")
    splits = generate_mnli(num_train=2000, num_eval=400, rng=0)

    print("fine-tuning tiny-bert-base on synthetic MNLI ...")
    model = build_model(config, task="classification", num_labels=3, rng=1)
    Trainer(model, lr=1e-3, batch_size=32, rng=2).fit(splits.train, epochs=5)
    baseline = evaluate(model, splits.eval)
    print(f"baseline accuracy: {baseline * 100:.2f}%\n")

    probe = build_model(config, task="classification", num_labels=3, rng=1)

    # GOBO at 3 and 4 bits (4-bit embeddings, as in Table III).
    for bits in (3, 4):
        quantized = quantize_model(model, weight_bits=bits, embedding_bits=4)
        quantized.apply_to(probe)
        score = evaluate(probe, splits.eval)
        print(
            f"GOBO {bits}-bit: accuracy {score * 100:.2f}% "
            f"(error {(baseline - score) * 100:+.2f}%), "
            f"CR {quantized.model_compression_ratio():.2f}x on this model, "
            f"outliers {quantized.outlier_fraction() * 100:.3f}%"
        )

    # Baselines through the same interface.
    selection = select_parameters(model)
    state = model.state_dict()
    for quantizer in (Q8BertQuantizer(), QBertQuantizer(weight_bits=3, num_groups=16)):
        compressed = quantizer.compress(state, selection.fc_names, selection.embedding_names)
        probe.load_state_dict(compressed.state_dict())
        score = evaluate(probe, splits.eval)
        print(
            f"{quantizer.name}: accuracy {score * 100:.2f}% "
            f"(error {(baseline - score) * 100:+.2f}%), "
            f"CR {compressed.compression_ratio():.2f}x"
        )


if __name__ == "__main__":
    main()
