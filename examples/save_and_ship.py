"""Persist a GOBO-compressed model and reload it elsewhere.

Run with:  python examples/save_and_ship.py

GOBO is an off-chip storage format: the archive written here realizes the
paper's compression on disk (bit-packed 3-bit codes + FP32 outliers + one
reconstruction table per layer), and decoding produces a plain FP32 model any
execution engine can run.
"""

import tempfile
from pathlib import Path

from repro.core import load_quantized_model, quantize_model, save_quantized_model
from repro.models import build_model, get_config


def main() -> None:
    config = get_config("tiny-bert-base")
    model = build_model(config, task="classification", num_labels=3, rng=0)
    fp32_bytes = 4 * model.num_parameters()
    print(f"model: {config.name}, {model.num_parameters()} parameters "
          f"({fp32_bytes / 1024:.0f} KiB as float32)")

    # Layer-parallel engine: per-layer jobs fan out over threads; the result
    # is bit-identical to workers=1 and carries a per-layer timing report.
    quantized = quantize_model(model, weight_bits=3, embedding_bits=3, workers=2)
    report = quantized.report
    print(f"quantized {len(report.layers)} tensors in {report.wall_seconds:.3f}s "
          f"with {report.workers} workers "
          f"(effective parallelism {report.effective_parallelism:.2f}x)")

    path = Path(tempfile.gettempdir()) / "gobo_model.npz"
    size = save_quantized_model(quantized, path)
    print(f"archive: {path} — {size / 1024:.0f} KiB "
          f"({fp32_bytes / size:.1f}x smaller on disk)")

    # ... ship the archive; on the receiving side (no pickle needed — the
    # format stores only plain numeric and unicode arrays):
    loaded = load_quantized_model(path)
    assert loaded.iterations == quantized.iterations  # metadata survives
    fresh = build_model(config, task="classification", num_labels=3, rng=99)
    loaded.apply_to(fresh)
    print("reloaded and decoded into a fresh model — plug-in compatible FP32")


if __name__ == "__main__":
    main()
