"""Quickstart: GOBO-quantize one weight tensor.

Run with:  python examples/quickstart.py

Generates a BERT-Base-sized FC layer (Gaussian bulk + outlier fringe, the
distribution Figure 1 of the paper documents), quantizes it to 3-bit indexes
with GOBO, and prints what the paper's storage format achieves.
"""

import numpy as np

from repro import OutlierDetector, quantize_tensor
from repro.models import SyntheticWeightSpec, synthetic_layer_weights


def main() -> None:
    # A 768x768 attention FC layer with the paper's weight distribution.
    weights = synthetic_layer_weights((768, 768), SyntheticWeightSpec(), rng=0)
    print(f"layer shape {weights.shape}, {weights.size * 4 / 1024:.0f} KiB as FP32")

    # Step 1 of GOBO: split into the Gaussian bulk and the outlier fringe.
    split = OutlierDetector().split(weights)
    print(
        f"outliers: {split.outlier_count} of {split.total_count} "
        f"({split.outlier_fraction * 100:.3f}%) at log-prob threshold -4"
    )

    # Steps 2-7: equal-population init + L1-monitored centroid iteration.
    quantized, clustering = quantize_tensor(weights, bits=3)
    print(f"clustering converged after {clustering.iterations} iterations")
    print(f"centroids: {np.array2string(quantized.centroids, precision=4)}")

    report = quantized.storage()
    print(
        f"storage: {report.compressed_bytes / 1024:.0f} KiB "
        f"({report.effective_bits_per_weight:.2f} effective bits/weight), "
        f"compression ratio {report.compression_ratio:.2f}x"
    )

    # The decode is plug-in compatible: a plain FP32 tensor comes back.
    restored = quantized.dequantize()
    error = np.abs(restored - weights).mean()
    print(f"mean |reconstruction error|: {error:.5f} "
          f"({error / np.abs(weights).mean() * 100:.1f}% of mean |w|)")


if __name__ == "__main__":
    main()
