"""Stack knowledge distillation and GOBO (the paper's Table V pipeline).

Run with:  python examples/distill_then_quantize.py

Section V: "DistilBERT is about 2x smaller than BERT-base. When GOBO is
applied on top of KD, the final model is about 20x smaller than BERT-Base."
This example runs that composition end to end at tiny scale: fine-tune a
teacher, distill it into a half-depth student, GOBO-quantize the student,
and account for the stacked compression.
"""

from repro.core import quantize_model
from repro.data import generate_mnli
from repro.models import build_model, get_config
from repro.training import DistillationTrainer, Trainer, evaluate


def main() -> None:
    splits = generate_mnli(num_train=2000, num_eval=400, rng=0)

    teacher_config = get_config("tiny-bert-base")
    print("fine-tuning the teacher (tiny-bert-base) ...")
    teacher = build_model(teacher_config, task="classification", num_labels=3, rng=1)
    Trainer(teacher, lr=1e-3, batch_size=32, rng=2).fit(splits.train, epochs=5)
    teacher_score = evaluate(teacher, splits.eval)

    student_config = get_config("tiny-distilbert")  # half the encoder layers
    print("distilling into the student (tiny-distilbert) ...")
    student = build_model(student_config, task="classification", num_labels=3, rng=3)
    DistillationTrainer(student, teacher, lr=1e-3, batch_size=32, rng=4).fit(
        splits.train, epochs=6
    )
    student_score = evaluate(student, splits.eval)

    teacher_bytes = 4 * teacher.num_parameters()
    student_bytes = 4 * student.num_parameters()
    print(f"\nteacher accuracy : {teacher_score * 100:.2f}%")
    print(f"student accuracy : {student_score * 100:.2f}%  "
          f"(KD alone: {teacher_bytes / student_bytes:.1f}x smaller)")
    probe = build_model(student_config, task="classification", num_labels=3, rng=3)
    for bits in (4, 3):
        quantized = quantize_model(student, weight_bits=bits, embedding_bits=bits)
        quantized.apply_to(probe)
        score = evaluate(probe, splits.eval)
        stacked = teacher_bytes / (student_bytes / quantized.model_compression_ratio())
        print(f"student + GOBO {bits}-bit: {score * 100:.2f}%  "
              f"(quantized part {quantized.model_compression_ratio():.1f}x, "
              f"stacked KD x GOBO ~{stacked:.1f}x)")
    print("\n(at real scale — DistilBERT 2x, GOBO ~10x — the paper's ~20x; the "
          "\n2-layer tiny student tolerates 4-bit but is fragile at 3-bit)")


if __name__ == "__main__":
    main()
