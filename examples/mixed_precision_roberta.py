"""Mixed 3-bit/4-bit quantization for RoBERTa (the paper's Table VI recipe).

Run with:  python examples/mixed_precision_roberta.py

Section V of the paper finds that RoBERTa's Value projections and
Intermediate FCs in the first half of the encoder stack are
quantization-sensitive; giving just those layers 4-bit indexes (3 bits
everywhere else) recovers most of the 4-bit accuracy at nearly the 3-bit
compression ratio.
"""

from repro.core import mixed_precision_policy, quantize_model
from repro.data import generate_mnli
from repro.models import build_model, get_config
from repro.training import Trainer, evaluate


def main() -> None:
    config = get_config("tiny-roberta")
    splits = generate_mnli(num_train=2000, num_eval=400, rng=0)

    print("fine-tuning tiny-roberta on synthetic MNLI ...")
    model = build_model(config, task="classification", num_labels=3, rng=1)
    Trainer(model, lr=1e-3, batch_size=32, rng=2).fit(splits.train, epochs=5)
    baseline = evaluate(model, splits.eval)
    print(f"baseline accuracy: {baseline * 100:.2f}%\n")

    probe = build_model(config, task="classification", num_labels=3, rng=1)
    sensitive_layers = config.num_layers // 2
    policies = {
        "uniform 3-bit": 3,
        "uniform 4-bit": 4,
        "mixed 3b/4b": mixed_precision_policy(
            num_sensitive_layers=sensitive_layers, sensitive_bits=4, default_bits=3
        ),
    }
    for label, policy in policies.items():
        quantized = quantize_model(model, weight_bits=policy, embedding_bits=None)
        quantized.apply_to(probe)
        score = evaluate(probe, splits.eval)
        print(
            f"{label:14s}: accuracy {score * 100:.2f}% "
            f"(error {(baseline - score) * 100:+.2f}%), "
            f"weight CR {quantized.weight_compression_ratio():.2f}x"
        )
    print(
        f"\nmixed policy: Value + Intermediate FCs of the first "
        f"{sensitive_layers} of {config.num_layers} encoder layers at 4 bits"
    )


if __name__ == "__main__":
    main()
