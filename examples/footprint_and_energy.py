"""Model footprint and off-chip energy: the paper's motivation, quantified.

Run with:  python examples/footprint_and_energy.py

Reproduces Table II's footprint census for the whole BERT family and feeds
it through the off-chip traffic / access-energy model of Section I ("off-chip
memory accesses are two orders of magnitude more expensive").
"""

from repro.memory import EnergyModel, compressed_traffic, compression_energy_report, fp32_traffic
from repro.models import get_config, memory_footprint

MODELS = ("bert-base", "bert-large", "distilbert", "roberta-base", "roberta-large")
GOBO_EFFECTIVE_BITS = 3.07  # 3-bit indexes + outlier and table overhead


def main() -> None:
    energy = EnergyModel()
    print(f"energy model: DRAM {energy.dram_pj_per_byte} pJ/B, "
          f"SRAM {energy.sram_pj_per_byte} pJ/B "
          f"({energy.offchip_ratio:.0f}x off-chip penalty)\n")

    header = f"{'model':14s} {'weights':>10s} {'embeddings':>11s} " \
             f"{'traffic/inf':>12s} {'GOBO traffic':>13s} {'energy saving':>14s}"
    print(header)
    for name in MODELS:
        config = get_config(name)
        footprint = memory_footprint(config, sequence_length=128)
        base = fp32_traffic(config, sequence_length=128)
        gobo = compressed_traffic(
            config, weight_bits=GOBO_EFFECTIVE_BITS,
            embedding_bits=GOBO_EFFECTIVE_BITS, sequence_length=128,
        )
        report = compression_energy_report(
            base.offchip_bytes, gobo.offchip_bytes, activation_bytes=base.activation_bytes
        )
        print(
            f"{name:14s} {footprint.weight_mib:8.1f}MB {footprint.embedding_mib:9.1f}MB "
            f"{base.offchip_bytes / 2**20:10.1f}MB {gobo.offchip_bytes / 2**20:11.1f}MB "
            f"{report.saving_ratio:13.2f}x"
        )

    print("\nGOBO at ~3.07 effective bits cuts weight streaming ~10.4x, and since"
          "\nBERT inference is weight-bound, access energy falls almost as much.")


if __name__ == "__main__":
    main()
