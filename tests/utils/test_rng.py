"""Tests for the RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, ensure_rng, seeded_permutation, spawn_rngs


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestDeriveRng:
    def test_same_tags_same_stream(self):
        a = derive_rng(0, "layer", 3).random(4)
        b = derive_rng(0, "layer", 3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_tags_differ(self):
        a = derive_rng(0, "layer", 3).random(4)
        b = derive_rng(0, "layer", 4).random(4)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(0, "x").random(4)
        b = derive_rng(1, "x").random(4)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        children = spawn_rngs(0, 2)
        assert not np.array_equal(children[0].random(8), children[1].random(8))

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(9, 3)]
        b = [g.random() for g in spawn_rngs(9, 3)]
        assert a == b


class TestSeededPermutation:
    def test_is_permutation(self):
        items = list(range(20))
        shuffled = seeded_permutation(3, items)
        assert sorted(shuffled) == items

    def test_deterministic(self):
        assert seeded_permutation(3, range(10)) == seeded_permutation(3, range(10))
