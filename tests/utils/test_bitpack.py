"""Tests for dense bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitpack import (
    _pack_bits_bitmatrix,
    _unpack_bits_bitmatrix,
    pack_bits,
    packed_nbytes,
    unpack_bits,
)
from repro.utils.rng import derive_rng


class TestPackedNbytes:
    def test_exact_multiples(self):
        assert packed_nbytes(8, 3) == 3  # 24 bits

    def test_rounds_up(self):
        assert packed_nbytes(3, 3) == 2  # 9 bits -> 2 bytes

    def test_zero_count(self):
        assert packed_nbytes(0, 5) == 0

    def test_one_bit(self):
        assert packed_nbytes(9, 1) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            packed_nbytes(-1, 3)

    @pytest.mark.parametrize("bits", [0, 17, -2])
    def test_invalid_bits_rejected(self, bits):
        with pytest.raises(ValueError):
            packed_nbytes(4, bits)


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 5, 6, 7, 8, 12, 16])
    def test_round_trip_all_widths(self, bits, rng):
        values = rng.integers(0, 1 << bits, size=1000)
        packed = pack_bits(values, bits)
        assert len(packed) == packed_nbytes(1000, bits)
        recovered = unpack_bits(packed, bits, 1000)
        np.testing.assert_array_equal(recovered, values)

    def test_empty(self):
        assert unpack_bits(pack_bits(np.array([], dtype=np.int64), 3), 3, 0).size == 0

    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_empty_round_trip_all_widths(self, bits):
        packed = pack_bits(np.array([], dtype=np.int64), bits)
        assert packed == b""
        recovered = unpack_bits(packed, bits, 0)
        assert recovered.size == 0
        assert recovered.dtype == np.int64

    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_single_value_all_widths(self, bits):
        value = (1 << bits) - 1
        packed = pack_bits(np.array([value]), bits)
        assert len(packed) == 1
        assert unpack_bits(packed, bits, 1).tolist() == [value]

    def test_max_values(self):
        values = np.full(17, 7)
        assert unpack_bits(pack_bits(values, 3), 3, 17).tolist() == [7] * 17

    def test_preserves_2d_input_flattened(self, rng):
        values = rng.integers(0, 8, size=(13, 7))
        recovered = unpack_bits(pack_bits(values, 3), 3, values.size)
        np.testing.assert_array_equal(recovered, values.ravel())

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            pack_bits(np.array([8]), 3)

    def test_negative_values_rejected(self):
        """-1 must not wrap through the unsigned conversion (it used to
        surface as 'value 18446744073709551615 does not fit in 3 bits')."""
        with pytest.raises(ValueError, match="non-negative"):
            pack_bits(np.array([0, -1, 3]), 3)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_float_dtypes_rejected(self, dtype):
        """Floats must not be silently truncated."""
        with pytest.raises(TypeError, match="integer array"):
            pack_bits(np.array([1.5, 2.0], dtype=dtype), 3)

    def test_float_list_rejected(self):
        with pytest.raises(TypeError, match="integer array"):
            pack_bits([0.5, 1.0], 3)

    def test_bool_values_accepted(self):
        values = np.array([True, False, True, True])
        assert unpack_bits(pack_bits(values, 1), 1, 4).tolist() == [1, 0, 1, 1]

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError, match="need"):
            unpack_bits(b"\x00", 8, 5)

    @given(
        st.lists(st.integers(min_value=0, max_value=7), max_size=200),
        st.integers(min_value=3, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, values, bits):
        array = np.array(values, dtype=np.int64)
        recovered = unpack_bits(pack_bits(array, bits), bits, len(values))
        assert recovered.tolist() == values

    @given(st.integers(min_value=0, max_value=5000), st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_packed_size_is_ceiling(self, count, bits):
        assert packed_nbytes(count, bits) == -(-count * bits // 8)


class TestRandomizedRoundTrip:
    """Property-style round trips over the GOBO operating range.

    Widths 1-8 (the quantizer's accepted range), lengths 0-4096, seeded via
    :mod:`repro.utils.rng` so every run exercises the same cases.
    """

    CASES_PER_WIDTH = 32

    @pytest.mark.parametrize("bits", range(1, 9))
    def test_pack_unpack_identity(self, bits):
        rng = derive_rng(20260806, "bitpack-roundtrip", bits)
        for case in range(self.CASES_PER_WIDTH):
            count = int(rng.integers(0, 4097))
            values = rng.integers(0, 1 << bits, size=count)
            packed = pack_bits(values, bits)
            recovered = unpack_bits(packed, bits, count)
            np.testing.assert_array_equal(
                recovered, values, err_msg=f"bits={bits} case={case} count={count}"
            )

    @pytest.mark.parametrize("bits", range(1, 9))
    def test_packed_size_formula_exact(self, bits):
        """len(pack_bits(..)) is exactly ceil(count * bits / 8), no padding."""
        rng = derive_rng(20260806, "bitpack-size", bits)
        counts = [0, 1, 7, 8, 9, 4096] + [int(c) for c in rng.integers(0, 4097, size=16)]
        for count in counts:
            values = rng.integers(0, 1 << bits, size=count)
            packed = pack_bits(values, bits)
            assert len(packed) == (count * bits + 7) // 8 == packed_nbytes(count, bits)

    @pytest.mark.parametrize("bits", range(1, 9))
    def test_boundary_values_survive(self, bits):
        """All-zeros and all-max streams round-trip at every width."""
        for value in (0, (1 << bits) - 1):
            values = np.full(4096, value, dtype=np.int64)
            recovered = unpack_bits(pack_bits(values, bits), bits, values.size)
            np.testing.assert_array_equal(recovered, values)


class TestFastPathEquivalence:
    """The grouped fast path must emit byte-identical streams to the
    bit-matrix reference at every width, so archives written before the
    vectorization load unchanged (and vice versa)."""

    @pytest.mark.parametrize("bits", range(1, 17))
    def test_pack_matches_reference(self, bits):
        rng = derive_rng(20260807, "bitpack-fast-pack", bits)
        for count in (0, 1, 2, 7, 8, 9, 63, 64, 65, 1000):
            values = rng.integers(0, 1 << bits, size=count)
            packed = pack_bits(values, bits)
            reference = _pack_bits_bitmatrix(
                np.ascontiguousarray(values, dtype=np.uint64), bits
            )
            assert packed == reference, f"bits={bits} count={count}"

    @pytest.mark.parametrize("bits", range(1, 17))
    def test_unpack_matches_reference(self, bits):
        rng = derive_rng(20260807, "bitpack-fast-unpack", bits)
        for count in (0, 1, 2, 7, 8, 9, 63, 64, 65, 1000):
            values = rng.integers(0, 1 << bits, size=count)
            packed = pack_bits(values, bits)
            raw = np.frombuffer(packed, dtype=np.uint8)
            recovered = unpack_bits(packed, bits, count)
            reference = _unpack_bits_bitmatrix(raw, bits, count)
            np.testing.assert_array_equal(recovered, reference)
            assert recovered.dtype == np.int64
