"""Tests for table rendering."""

import pytest

from repro.utils.tables import format_cell, format_table, percentage


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_float_formatted(self):
        assert format_cell(3.14159) == "3.14"

    def test_custom_float_format(self):
        assert format_cell(3.14159, "{:.4f}") == "3.1416"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["xxxx", 1], ["y", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a    |")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_title_included(self):
        assert format_table(["h"], [["v"]], title="My Table").startswith("My Table")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [["only one"]])

    def test_empty_rows_ok(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestPercentage:
    def test_default_digits(self):
        assert percentage(0.0069) == "0.69%"

    def test_custom_digits(self):
        assert percentage(0.5, digits=0) == "50%"
