"""ModelRegistry: lazy loading, leases, hot-swap drain discipline."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ModelNotFoundError, SerializationError, ServeError
from repro.serve import ModelRegistry
from tests.conftest import MICRO_CONFIG


def open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


@pytest.fixture
def registry(micro_archive):
    registry = ModelRegistry()
    registry.register("micro", micro_archive, config=MICRO_CONFIG)
    yield registry
    registry.close()


class TestRegister:
    def test_entry_metadata(self, registry, micro_archive):
        entry = registry.get("micro")
        assert entry.version == 1
        assert entry.config_name == "micro"
        assert entry.path == micro_archive
        assert entry.vocab_size == MICRO_CONFIG.vocab_size
        assert entry.max_position == MICRO_CONFIG.max_position
        assert registry.names() == ["micro"]

    def test_forward_matches_direct_attach(self, registry, micro_archive):
        from repro.core.serialization import load_quantized_model
        from repro.models import build_model
        from repro.models.quantized import attach_quantized_linears

        reference = attach_quantized_linears(
            build_model(MICRO_CONFIG, task="encoder", rng=0),
            load_quantized_model(micro_archive),
        )
        input_ids = np.array([[1, 2, 3, 4, 5]])
        with registry.lease("micro") as entry:
            _, pooled = entry.model(input_ids)
        _, expected = reference(input_ids)
        np.testing.assert_allclose(pooled.data, expected.data, rtol=1e-12, atol=1e-12)

    def test_unknown_model(self, registry):
        with pytest.raises(ModelNotFoundError, match="nope"):
            registry.get("nope")
        with pytest.raises(ModelNotFoundError):
            registry.reload("nope")

    def test_missing_archive(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises((SerializationError, OSError)):
            registry.register("ghost", tmp_path / "missing.npz", config=MICRO_CONFIG)

    def test_describe_is_json_ready(self, registry):
        import json

        description = registry.describe()
        assert json.loads(json.dumps(description)) == description
        assert description["micro"]["version"] == 1


class TestHotSwap:
    def test_reload_bumps_version(self, registry):
        entry = registry.reload("micro")
        assert entry.version == 2
        assert registry.get("micro") is entry

    def test_inflight_lease_survives_reload(self, registry):
        """The hot-swap contract: a leased (in-flight) entry keeps working
        after the registry pointer moves, and only closes when released."""
        with registry.lease("micro") as old:
            new = registry.reload("micro")
            assert registry.get("micro") is new
            # Old weights still compute mid-flight.
            _, pooled = old.model(np.array([[1, 2, 3]]))
            assert pooled.shape == (1, MICRO_CONFIG.hidden_size)
            assert old._retired and old._leases == 1
        # Lease released -> the retired entry's archive has closed.
        assert old.qmodel.quantized._reader._file.closed

    def test_reload_closes_unleased_old_entry(self, registry):
        old = registry.get("micro")
        registry.reload("micro")
        assert old.qmodel.quantized._reader._file.closed

    def test_retired_entry_rejects_new_leases(self, registry):
        old = registry.get("micro")
        registry.reload("micro")
        with pytest.raises(ServeError, match="retired"):
            old._acquire()

    def test_no_fd_growth_across_reloads(self, registry):
        """Repeated hot-swaps must not leak archive descriptors (the
        MmapNpzReader.close fd fix is what makes this hold)."""
        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("needs /proc")
        input_ids = np.array([[1, 2, 3, 4]])
        for _ in range(2):  # warm every lazy path before measuring
            with registry.lease("micro") as entry:
                entry.model(input_ids)
            registry.reload("micro")
        baseline = open_fds()
        for _ in range(6):
            with registry.lease("micro") as entry:
                entry.model(input_ids)
            registry.reload("micro")
        assert open_fds() <= baseline

    def test_failed_reload_keeps_old_entry(self, registry, micro_archive, monkeypatch):
        old = registry.get("micro")
        monkeypatch.setattr(
            "repro.serve.registry._build_entry",
            lambda *a, **k: (_ for _ in ()).throw(SerializationError("boom")),
        )
        with pytest.raises(SerializationError):
            registry.reload("micro")
        assert registry.get("micro") is old
        _, pooled = old.model(np.array([[5, 6]]))
        assert pooled.shape == (1, MICRO_CONFIG.hidden_size)


class TestConfigInference:
    def test_micro_archive_matches_no_preset(self, micro_archive):
        """The micro census is not a zoo preset; inference must say so
        rather than guess."""
        from repro.errors import ConfigError

        registry = ModelRegistry()
        with pytest.raises(ConfigError, match="no preset config"):
            registry.register("micro", micro_archive)

    def test_preset_archive_is_inferred(self, tmp_path):
        from repro.core.model_quantizer import quantize_model
        from repro.core.serialization import save_quantized_model
        from repro.models import build_model

        model = build_model("tiny-distilbert", task="encoder", rng=3)
        quantized = quantize_model(model, weight_bits=3, embedding_bits=None)
        path = tmp_path / "tiny-distilbert.npz"
        save_quantized_model(quantized, path)
        registry = ModelRegistry()
        try:
            entry = registry.register("auto", path)
            assert entry.config_name == "tiny-distilbert"
        finally:
            registry.close()


class TestLeaseRetireRace:
    def test_lease_retries_once_against_fresh_entry(self, registry, monkeypatch):
        """A reload can retire the entry between get() and acquire — a
        routine hot-swap.  The lease must retry once against the freshly
        swapped-in entry instead of failing the request."""
        stale = registry.get("micro")
        fresh = registry.reload("micro")  # retires `stale` (no leases held)
        calls = []
        real_get = registry.get

        def racy_get(name):
            calls.append(name)
            return stale if len(calls) == 1 else real_get(name)

        monkeypatch.setattr(registry, "get", racy_get)
        with registry.lease("micro") as entry:
            assert entry is fresh
        assert calls == ["micro", "micro"]

    def test_second_retirement_propagates(self, registry, monkeypatch):
        """Only one retry: a model that is genuinely gone (or raced twice)
        surfaces the ServeError instead of looping."""
        stale = registry.get("micro")
        registry.reload("micro")
        monkeypatch.setattr(registry, "get", lambda name: stale)
        with pytest.raises(ServeError, match="retired"):
            with registry.lease("micro"):
                pass
