"""Serve-path fault injectors: spec parsing and end-to-end chaos behavior."""

from __future__ import annotations

import time

import pytest

from repro.errors import ChecksumMismatchError, ModelQuarantinedError
from repro.serve import AdmissionController, MicroBatcher, ModelRegistry
from repro.serve.health import QUARANTINED, HealthMonitor, HealthPolicy
from repro.testing.faults import (
    FAULTS_ENV,
    CorruptMemberAtServe,
    FailForward,
    HangForward,
    InjectedFault,
    SlowLoad,
    injector_from_spec,
    serve_injector_from_env,
    serve_injector_from_spec,
)
from tests.conftest import MICRO_CONFIG


class TestSpecParsing:
    def test_each_kind_parses(self):
        injector = serve_injector_from_spec("hang-forward:alpha:2.5:3")
        assert isinstance(injector, HangForward)
        assert (injector.model, injector.seconds, injector.times) == ("alpha", 2.5, 3)
        injector = serve_injector_from_spec("fail-forward:beta:0")
        assert isinstance(injector, FailForward)
        assert (injector.model, injector.times) == ("beta", 0)
        injector = serve_injector_from_spec("corrupt-member-at-serve:gamma")
        assert isinstance(injector, CorruptMemberAtServe)
        assert (injector.model, injector.times) == ("gamma", 1)
        injector = serve_injector_from_spec("slow-load:0.5:delta")
        assert isinstance(injector, SlowLoad)
        assert (injector.seconds, injector.model) == (0.5, "delta")

    def test_engine_kinds_are_skipped(self):
        """One REPRO_FAULTS value carries both families; each parser takes
        only its own kinds."""
        spec = "crash:3,hang-forward:alpha:1:1,kill-worker:1"
        serve = serve_injector_from_spec(spec)
        assert isinstance(serve, HangForward)
        engine = injector_from_spec("hang-forward:alpha:1:1,slow:0.1")
        assert engine is not None and not isinstance(engine, HangForward)

    def test_engine_only_spec_yields_none(self):
        assert serve_injector_from_spec("crash:3,slow:0.1") is None

    def test_unknown_kind_raises_in_both_parsers(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            serve_injector_from_spec("melt-cpu:1")
        with pytest.raises(ValueError, match="unknown fault kind"):
            injector_from_spec("melt-cpu:1")

    def test_composition_first_raise_wins(self):
        injector = serve_injector_from_spec(
            "fail-forward:alpha:1,slow-load:0.01")
        with pytest.raises(InjectedFault):
            injector("forward", "alpha")
        injector("forward", "alpha")  # times=1: cleared
        injector("load", "alpha")  # only the slow-load applies

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert serve_injector_from_env() is None
        monkeypatch.setenv(FAULTS_ENV, "fail-forward:alpha:2")
        injector = serve_injector_from_env()
        assert isinstance(injector, FailForward)


class TestInjectorBehavior:
    def test_fail_forward_counts_and_clears(self):
        injector = FailForward("alpha", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector("forward", "alpha")
        injector("forward", "alpha")  # cleared
        injector("forward", "beta")  # other models never matched

    def test_fail_forward_persistent(self):
        injector = FailForward(times=0)  # any model, forever
        for _ in range(5):
            with pytest.raises(InjectedFault):
                injector("forward", "anything")

    def test_corrupt_member_raises_integrity_type(self):
        injector = CorruptMemberAtServe("alpha")
        with pytest.raises(ChecksumMismatchError, match="CRC"):
            injector("forward", "alpha")
        injector("forward", "alpha")  # times=1: cleared
        injector("load", "alpha")  # wrong stage: inert

    def test_hang_forward_ignores_load_stage(self):
        injector = HangForward("alpha", seconds=5.0, times=1)
        started = time.monotonic()
        injector("load", "alpha")
        injector("forward", "beta")
        assert time.monotonic() - started < 1.0


@pytest.fixture
def registry(micro_archive):
    registry = ModelRegistry()
    registry.register("micro", micro_archive, config=MICRO_CONFIG)
    yield registry
    registry.close()


class TestFaultsDriveTheBreaker:
    def test_fail_forward_trips_quarantine(self, registry):
        """Persistent forward failures walk the model through the breaker:
        requests 1..threshold get 500-shaped errors, request threshold+1
        is refused at admission with 503-shaped ModelQuarantinedError."""
        policy = HealthPolicy(breaker_window=30.0, breaker_threshold=3,
                              cooldown=60.0)
        health = HealthMonitor(registry, policy=policy)
        batcher = MicroBatcher(
            registry, AdmissionController(max_pending=16, request_timeout=5.0),
            batch_window=0.0, health=health, fault=FailForward("micro", times=0),
        )
        try:
            for _ in range(policy.breaker_threshold):
                with pytest.raises(InjectedFault):
                    batcher.wait(batcher.submit("micro", [1, 2, 3]))
            assert health.model("micro").state == QUARANTINED
            with pytest.raises(ModelQuarantinedError):
                batcher.submit("micro", [1, 2, 3])
            assert batcher.admission.depth == 0
        finally:
            batcher.close()
            health.close()

    def test_slow_load_delays_registry_loads(self, micro_archive):
        registry = ModelRegistry(fault=SlowLoad(0.2, model="slowpoke"))
        try:
            started = time.monotonic()
            registry.register("slowpoke", micro_archive, config=MICRO_CONFIG)
            assert time.monotonic() - started >= 0.2
        finally:
            registry.close()
