"""End-to-end serving: HTTP, fusion, hot-swap under traffic, signal drain.

The acceptance path of the serving layer: boot the server on a real
quantized archive, push concurrent traffic through the micro-batcher,
hot-swap the model mid-flight with zero dropped requests, and verify the
request path computes on the compressed representation
(``quantizer.dequantize_calls == 0``) with a ``serve.request`` span per
request.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.serve import ModelRegistry, QuantServer
from tests.conftest import MICRO_CONFIG
from tests.serve.conftest import http_json


@pytest.fixture
def server(micro_archive):
    registry = ModelRegistry()
    registry.register("micro", micro_archive, config=MICRO_CONFIG)
    quant_server = QuantServer(
        registry, port=0, batch_window=0.01, max_batch=8,
        max_pending=64, request_timeout=30.0,
    )
    quant_server.serve_in_background()
    try:
        yield quant_server
    finally:
        quant_server.shutdown()


def base_url(server: QuantServer) -> str:
    return f"http://{server.host}:{server.port}"


class TestRequestPath:
    def test_concurrent_traffic_on_compressed_representation(self, server):
        """32+ concurrent requests: all succeed, all are batched, none
        dequantize, and each carries a serve.request span."""
        url = f"{base_url(server)}/models/micro/predict"
        count = 32
        results = [None] * count
        barrier = threading.Barrier(count)

        def call(index):
            barrier.wait()
            sequence = [1 + index % 7, 2, 3, 4 + index % 3]
            results[index] = http_json(url, {"input_ids": sequence})

        with obs.scope() as trace:
            threads = [
                threading.Thread(target=call, args=(i,)) for i in range(count)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        statuses = [status for status, _ in results]
        assert statuses == [200] * count
        # The request path never decodes the weights: computing happened on
        # the compressed representation via lookup kernels.
        dequantizes = [event for event in trace.events
                       if event["name"] == "quantizer.dequantize_calls"]
        assert dequantizes == []
        lookup_calls = sum(
            event["value"] for event in trace.events
            if event["name"] == "kernels.lookup_matmul_calls"
        )
        assert lookup_calls > 0
        # Every request emitted a serve.request span...
        request_spans = [
            event for event in trace.events
            if event["event"] == "span" and event["name"] == "serve.request"
        ]
        assert len(request_spans) == count
        assert all(event["attrs"]["status"] == 200 for event in request_spans)
        # ...with a nested queue-wait span.
        queue_waits = [
            event for event in trace.events
            if event["event"] == "span" and event["name"] == "serve.queue_wait"
        ]
        assert len(queue_waits) == count
        assert all(event["parent"] == "serve.request" for event in queue_waits)
        # The micro-batcher actually fused concurrent requests.
        batch_sizes = [
            event["attrs"]["batch_size"] for event in trace.events
            if event["event"] == "span" and event["name"] == "serve.batch"
        ]
        assert sum(batch_sizes) == count
        assert max(batch_sizes) > 1
        assert all(body["batch_size"] >= 1 for _, body in results)

    def test_hot_swap_under_traffic_drops_nothing(self, server):
        """Reload the model while requests are in flight: every request
        gets a 200 and both versions are observed."""
        url = f"{base_url(server)}/models/micro/predict"
        reload_url = f"{base_url(server)}/models/micro/reload"
        stop = threading.Event()
        results: list[tuple[int, dict]] = []
        results_lock = threading.Lock()

        def hammer(index):
            while not stop.is_set():
                outcome = http_json(url, {"input_ids": [1 + index % 5, 2, 3]})
                with results_lock:
                    results.append(outcome)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.1)
            for _ in range(3):
                status, body = http_json(reload_url, {})
                assert status == 200, body
                time.sleep(0.1)
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        assert len(results) >= 16
        assert all(status == 200 for status, _ in results), [
            (status, body) for status, body in results if status != 200
        ]
        versions = {body["version"] for _, body in results}
        assert len(versions) >= 2, f"swap never observed: {versions}"
        status, health = http_json(f"{base_url(server)}/healthz")
        assert status == 200
        assert health["models"]["micro"]["version"] == 4

    def test_metrics_endpoint_reflects_traffic(self, server):
        url = f"{base_url(server)}/models/micro/predict"
        for _ in range(3):
            status, _ = http_json(url, {"input_ids": [1, 2, 3]})
            assert status == 200
        status, metrics = http_json(f"{base_url(server)}/metrics")
        assert status == 200
        assert metrics["counters"]["serve.requests"] >= 3
        assert metrics["spans"]["serve.request"]["count"] >= 3
        assert metrics["spans"]["serve.batch"]["count"] >= 1

    def test_error_statuses(self, server):
        base = base_url(server)
        assert http_json(f"{base}/models/ghost/predict",
                         {"input_ids": [1]})[0] == 404
        assert http_json(f"{base}/models/ghost/reload", {})[0] == 404
        assert http_json(f"{base}/models/micro/predict", {})[0] == 400
        assert http_json(f"{base}/models/micro/predict",
                         {"input_ids": "nope"})[0] == 400
        assert http_json(f"{base}/nope")[0] == 404


class TestAdmission:
    def test_overload_rejected_with_retry_after(self, micro_archive):
        """With a tiny queue bound and a slow batch cadence, a burst must
        produce at least one 429 carrying Retry-After."""
        registry = ModelRegistry()
        registry.register("micro", micro_archive, config=MICRO_CONFIG)
        server = QuantServer(
            registry, port=0, batch_window=0.05, max_batch=1,
            max_pending=2, request_timeout=30.0,
        )
        server.serve_in_background()
        try:
            url = f"{base_url(server)}/models/micro/predict"
            count = 10
            results = [None] * count
            barrier = threading.Barrier(count)

            def call(index):
                barrier.wait()
                results[index] = http_json(url, {"input_ids": [1, 2, 3]})

            threads = [
                threading.Thread(target=call, args=(i,)) for i in range(count)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            statuses = [status for status, _ in results]
            assert 429 in statuses, statuses
            assert all(status in (200, 429) for status in statuses)
            rejected = next(body for status, body in results if status == 429)
            assert rejected["retry_after"] >= 1
        finally:
            server.shutdown()


class TestCli:
    def test_serve_boot_traffic_sigterm_drain(self, micro_archive, tmp_path):
        """The full CLI contract: boot ``repro serve``, answer traffic,
        drain on SIGTERM with exit 75, and leave a schema-valid trace."""
        # The micro config is not a zoo preset, so serve a preset archive.
        build = subprocess.run(
            [sys.executable, "-m", "repro", "quantize",
             "--config", "tiny-distilbert", "--embedding-bits", "none",
             "--out", str(tmp_path / "model.npz")],
            env=self._env(), capture_output=True, text=True, timeout=300,
        )
        assert build.returncode == 0, build.stderr
        trace_path = tmp_path / "serve.jsonl"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--model", f"tiny={tmp_path / 'model.npz'}",
             "--port", "0", "--trace", str(trace_path)],
            env=self._env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            port = None
            for _ in range(100):
                line = process.stdout.readline()
                if "serving" in line:
                    port = int(line.split("http://")[1].split()[0].rsplit(":", 1)[1])
                    break
            assert port is not None, "server never announced its port"
            status, body = http_json(
                f"http://127.0.0.1:{port}/models/tiny/predict",
                {"input_ids": [1, 2, 3, 4]},
            )
            assert status == 200
            assert body["model"] == "tiny"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 75  # EXIT_INTERRUPTED
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        # The trace the server left behind validates against the schema.
        check = subprocess.run(
            [sys.executable, "-m", "repro", "profile", "--check",
             str(trace_path)],
            env=self._env(), capture_output=True, text=True, timeout=120,
        )
        assert check.returncode == 0, check.stdout + check.stderr
        names = {
            json.loads(line)["name"]
            for line in trace_path.read_text().splitlines()
        }
        assert {"serve.request", "serve.queue_wait", "serve.batch",
                "serve.model_load"} <= names

    @staticmethod
    def _env() -> dict:
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src")
        return env
