"""Fixtures for the serving-layer tests: one shared quantized micro archive."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.model_quantizer import quantize_model
from repro.core.serialization import save_quantized_model
from repro.models import build_model
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="session")
def micro_archive(tmp_path_factory):
    """Path to a v3 quantized archive of the micro BERT config."""
    model = build_model(MICRO_CONFIG, task="encoder", rng=7)
    quantized = quantize_model(model, weight_bits=3, embedding_bits=4)
    path = tmp_path_factory.mktemp("serve") / "micro.npz"
    save_quantized_model(quantized, path)
    return path


def http_json(url: str, payload: dict | None = None, timeout: float = 30.0):
    """(status, parsed-body) for a GET (payload=None) or JSON POST."""
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"), method="POST",
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
