"""Batch-worker watchdog: wedged forwards, dead workers, wedged shutdown."""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.errors import BatchWorkerError, ForwardTimeoutError, ServeError
from repro.serve import AdmissionController, MicroBatcher, ModelRegistry
from repro.serve.health import DEGRADED, HealthMonitor, HealthPolicy
from repro.testing.faults import HangForward
from tests.conftest import MICRO_CONFIG


@pytest.fixture
def registry(micro_archive):
    registry = ModelRegistry()
    registry.register("micro", micro_archive, config=MICRO_CONFIG)
    yield registry
    registry.close()


def make_batcher(registry, *, forward_timeout=None, health=None, fault=None,
                 timeout=10.0):
    admission = AdmissionController(max_pending=64, request_timeout=timeout)
    return MicroBatcher(registry, admission, batch_window=0.005, max_batch=8,
                        forward_timeout=forward_timeout, health=health,
                        fault=fault)


def wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


class TestForwardTimeout:
    def test_wedged_forward_failed_and_worker_replaced(self, registry):
        """A non-cooperative hang is fenced at forward_timeout: the batch
        fails as transient, a fresh worker serves the next request."""
        fault = HangForward("micro", seconds=10.0, times=1)
        batcher = make_batcher(registry, forward_timeout=0.2, fault=fault)
        try:
            with obs.scope() as trace:
                started = time.monotonic()
                pending = batcher.submit("micro", [1, 2, 3])
                with pytest.raises(ForwardTimeoutError, match="forward timeout"):
                    batcher.wait(pending)
                assert time.monotonic() - started < 5.0
                assert batcher.admission.depth == 0
                # The replacement worker serves immediately — no waiting for
                # the wedged one (still sleeping) to come back.
                result = batcher.wait(batcher.submit("micro", [1, 2, 3]))
                assert result["model"] == "micro"
            replaced = [e for e in trace.events
                        if e["name"] == "serve.worker_replaced"]
            assert [e["attrs"]["reason"] for e in replaced] == ["forward-timeout"]
        finally:
            batcher.close(timeout=15.0)

    def test_clock_injected_sweep(self, registry):
        """check_worker(now=...) makes the deadline testable without real
        waiting: a forward 'past' its deadline is aborted on the spot."""
        release = threading.Event()
        batcher = make_batcher(registry, forward_timeout=60.0)
        original_forward = batcher._forward

        def gated_forward(model, live):
            release.wait(10.0)
            return original_forward(model, live)

        batcher._forward = gated_forward
        try:
            pending = batcher.submit("micro", [1, 2, 3])
            wait_for(lambda: batcher._inflight is not None)
            assert batcher.check_worker(now=time.perf_counter() + 1.0) is None
            reason = batcher.check_worker(now=time.perf_counter() + 61.0)
            assert reason == "forward-timeout"
            with pytest.raises(ForwardTimeoutError):
                batcher.wait(pending)
            # The superseded worker un-wedges, sees its stale generation,
            # discards its late result, and exits without double-completing.
            batcher._forward = original_forward
            release.set()
            result = batcher.wait(batcher.submit("micro", [4, 5]))
            assert result["model"] == "micro"
        finally:
            release.set()
            batcher.close()

    def test_timeout_reports_transient_to_health(self, registry):
        health = HealthMonitor(registry, policy=HealthPolicy(breaker_threshold=5))
        fault = HangForward("micro", seconds=10.0, times=1)
        batcher = make_batcher(registry, forward_timeout=0.2, health=health,
                               fault=fault)
        try:
            pending = batcher.submit("micro", [1, 2, 3])
            with pytest.raises(ForwardTimeoutError):
                batcher.wait(pending)
            assert health.model("micro").state == DEGRADED
        finally:
            batcher.close(timeout=15.0)
            health.close()

    def test_disabled_without_forward_timeout(self, registry):
        """forward_timeout=None arms no deadline: a slow forward completes."""
        batcher = make_batcher(registry, forward_timeout=None,
                               fault=HangForward("micro", seconds=0.3, times=1))
        try:
            result = batcher.wait(batcher.submit("micro", [1, 2, 3]))
            assert result["model"] == "micro"
        finally:
            batcher.close()


class TestDeadWorker:
    # The injected SystemExit escaping a worker thread is the point of the
    # test; silence pytest's unhandled-thread-exception report for it.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_dead_worker_detected_and_replaced(self, registry):
        """A BaseException (which _run_group's Exception guard cannot catch)
        kills the worker thread; the watchdog fails its batch and respawns."""
        batcher = make_batcher(registry)
        original_forward = batcher._forward

        def lethal_forward(model, live):
            raise SystemExit("injected worker death")

        batcher._forward = lethal_forward
        try:
            pending = batcher.submit("micro", [1, 2, 3])
            with pytest.raises(BatchWorkerError, match="died"):
                batcher.wait(pending)
            assert batcher.admission.depth == 0
            batcher._forward = original_forward
            result = batcher.wait(batcher.submit("micro", [1, 2, 3]))
            assert result["model"] == "micro"
        finally:
            batcher.close()


class TestCloseWithBrokenWorker:
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_close_fails_queue_when_worker_already_dead(self, registry):
        """Satellite: close() must not wait on a worker that cannot drain —
        queued requests are failed promptly with a ServeError."""
        batcher = make_batcher(registry, timeout=0.5)
        # Stop the watchdog first so nothing respawns the worker we kill
        # (the no-watchdog worst case close() must still handle).
        batcher._watchdog_stop.set()
        batcher._watchdog.join(timeout=5.0)

        def lethal_forward(model, live):
            raise SystemExit("injected worker death")

        batcher._forward = lethal_forward
        pending = batcher.submit("micro", [1, 2, 3])
        wait_for(lambda: not batcher._worker.is_alive())
        queued = batcher.submit("micro", [4, 5])  # nobody will ever drain this
        batcher.close(drain=True)
        with pytest.raises(ServeError, match="abandoned"):
            batcher.wait(queued)
        # The in-flight request died with the worker and (watchdog disabled)
        # resolves through the handler-side deadline.
        with pytest.raises(ServeError):
            batcher.wait(pending)
        assert batcher.admission.depth == 0

    def test_close_join_timeout_raises_and_fails_queue(self, registry):
        """A worker wedged past close(timeout=...) raises loudly instead of
        hanging shutdown, and still-queued requests get errors, not silence."""
        release = threading.Event()
        batcher = make_batcher(registry)
        original_forward = batcher._forward

        def wedged_forward(model, live):
            release.wait(30.0)
            return original_forward(model, live)

        batcher._forward = wedged_forward
        try:
            inflight = batcher.submit("micro", [1, 2, 3])
            wait_for(lambda: inflight.started.is_set())
            queued = batcher.submit("micro", [4, 5])
            with obs.scope() as trace:
                with pytest.raises(ServeError, match="failed to stop"):
                    batcher.close(drain=True, timeout=0.2)
            assert any(e["name"] == "serve.worker_join_timeouts"
                       for e in trace.events)
            with pytest.raises(ServeError, match="abandoned"):
                batcher.wait(queued)
        finally:
            release.set()
