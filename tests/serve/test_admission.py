"""AdmissionController: the counting gate's bound, hints and bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import QueueFullError
from repro.serve import AdmissionController


class TestBound:
    def test_admits_up_to_bound(self):
        admission = AdmissionController(max_pending=3, request_timeout=1.0)
        for _ in range(3):
            admission.admit()
        assert admission.depth == 3
        with pytest.raises(QueueFullError, match="queue full"):
            admission.admit()
        assert admission.depth == 3  # the rejected request took no slot

    def test_release_reopens_the_gate(self):
        admission = AdmissionController(max_pending=1, request_timeout=1.0)
        admission.admit()
        with pytest.raises(QueueFullError):
            admission.admit()
        admission.release()
        admission.admit()  # does not raise
        assert admission.depth == 1

    def test_release_never_goes_negative(self):
        admission = AdmissionController(max_pending=2, request_timeout=1.0)
        admission.release()
        assert admission.depth == 0


class TestRetryAfter:
    def test_rejection_carries_retry_after(self):
        admission = AdmissionController(
            max_pending=2, request_timeout=1.0, drain_rate=1.0
        )
        admission.admit()
        admission.admit()
        with pytest.raises(QueueFullError) as excinfo:
            admission.admit()
        assert excinfo.value.retry_after == 2.0  # depth 2 / 1 rps

    def test_retry_after_is_at_least_one_second(self):
        admission = AdmissionController(
            max_pending=1, request_timeout=1.0, drain_rate=1000.0
        )
        assert admission.retry_after(1) == 1.0


class TestValidation:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionController(max_pending=0, request_timeout=1.0)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="request_timeout"):
            AdmissionController(max_pending=1, request_timeout=0.0)
