"""Hot-swap under abrupt producer death: failed reloads must not leak.

The scenario: a quantizer process is SIGKILLed mid-write (or a deploy ships
the wrong model), leaving the archive behind a registered model torn or
drifted.  A ``POST /models/<name>/reload`` must then fail *cleanly*: the old
version keeps serving every in-flight and subsequent request, and the
aborted load releases its archive reader — repeated failed reloads hold the
file-descriptor count flat instead of leaking one mmap per attempt.
"""

from __future__ import annotations

import dataclasses
import os
import shutil

import pytest

from repro.core.model_quantizer import quantize_model
from repro.core.serialization import save_quantized_model
from repro.models import build_model
from repro.serve import ModelRegistry, QuantServer
from tests.conftest import MICRO_CONFIG
from tests.serve.conftest import http_json

DRIFTED_CONFIG = dataclasses.replace(
    MICRO_CONFIG, name="micro-drifted", hidden_size=24, num_heads=3
)


def _write_archive(config, path, rng=7):
    model = build_model(config, task="encoder", rng=rng)
    quantized = quantize_model(model, weight_bits=3, embedding_bits=4)
    save_quantized_model(quantized, path)
    return path


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


@pytest.fixture
def swappable_archive(micro_archive, tmp_path):
    """A copy of the good archive that tests may overwrite in place."""
    path = tmp_path / "model.npz"
    shutil.copy(micro_archive, path)
    return path


class TestRegistryBuildFailure:
    def test_drifted_archive_fails_reload_and_keeps_old_entry(
        self, micro_archive, swappable_archive, tmp_path
    ):
        registry = ModelRegistry()
        registry.register("micro", swappable_archive, config=MICRO_CONFIG)
        old = registry.get("micro")
        # The producer died and a different model landed at the same path:
        # the lazy load succeeds, the build against the stored config fails.
        _write_archive(DRIFTED_CONFIG, swappable_archive)
        with pytest.raises(Exception):
            registry.reload("micro")
        assert registry.get("micro") is old
        assert registry.get("micro").version == 1
        registry.close()

    def test_failed_reloads_do_not_leak_file_descriptors(
        self, micro_archive, swappable_archive
    ):
        registry = ModelRegistry()
        registry.register("micro", swappable_archive, config=MICRO_CONFIG)
        _write_archive(DRIFTED_CONFIG, swappable_archive)
        with pytest.raises(Exception):
            registry.reload("micro")  # warm any lazy imports/caches
        baseline = _open_fds()
        for _ in range(10):
            with pytest.raises(Exception):
                registry.reload("micro")
        assert _open_fds() == baseline
        registry.close()

    def test_torn_archive_fails_reload_without_leaking(
        self, micro_archive, swappable_archive
    ):
        registry = ModelRegistry()
        registry.register("micro", swappable_archive, config=MICRO_CONFIG)
        old = registry.get("micro")
        # Truncate to half: the producer was SIGKILLed mid-write.
        data = swappable_archive.read_bytes()
        swappable_archive.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            registry.reload("micro")  # warm-up + behavior check
        baseline = _open_fds()
        for _ in range(10):
            with pytest.raises(Exception):
                registry.reload("micro")
        assert _open_fds() == baseline
        assert registry.get("micro") is old
        registry.close()


class TestServerSurvivesFailedReload:
    def test_old_version_serves_through_failed_reload(self, swappable_archive):
        registry = ModelRegistry()
        registry.register("micro", swappable_archive, config=MICRO_CONFIG)
        server = QuantServer(registry, port=0, batch_window=0.005, max_batch=8)
        server.serve_in_background()
        base = f"http://{server.host}:{server.port}"
        try:
            status, body = http_json(
                f"{base}/models/micro/predict", {"input_ids": [1, 2, 3, 4]}
            )
            assert status == 200 and "pooled" in body

            _write_archive(DRIFTED_CONFIG, swappable_archive)
            status, body = http_json(f"{base}/models/micro/reload", {})
            assert status >= 400
            assert "error" in body

            # The swap never happened: same version, still serving.
            status, body = http_json(f"{base}/healthz")
            assert status == 200
            assert body["models"]["micro"]["version"] == 1
            status, body = http_json(
                f"{base}/models/micro/predict", {"input_ids": [1, 2, 3, 4]}
            )
            assert status == 200 and "pooled" in body
        finally:
            server.shutdown()
