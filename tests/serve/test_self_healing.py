"""End-to-end self-healing: corrupt archive → quarantine → auto-reload.

The full acceptance loop over real HTTP (DESIGN.md §5i):

1. a member CRC failure surfaces mid-request (the ``corrupt-member-at-serve``
   injector raises the exact :class:`ChecksumMismatchError` a lazy read
   produces) while the archive on disk really is corrupted
   (:func:`corrupt_bytes` on a quantized member's data);
2. the first request 500s; every subsequent request answers 503 +
   ``Retry-After`` — never a second 500;
3. the background reloader hammers ``registry.reload`` against the corrupt
   file and keeps failing on the *real* CRC check;
4. the file is repaired on disk; the next automatic reload succeeds, the
   model probes back to health, and responses carry the new version with
   pooled outputs bit-identical to the pre-corruption baseline.
"""

from __future__ import annotations

import json
import shutil
import struct
import threading
import time
import urllib.error
import urllib.request
import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.serve import ModelRegistry, QuantServer
from repro.serve.health import HealthPolicy, QUARANTINED
from repro.testing.faults import (
    CorruptMemberAtServe,
    HangForward,
    corrupt_bytes,
)
from tests.conftest import MICRO_CONFIG
from tests.serve.conftest import http_json

#: Fast-recovery policy: real jittered backoff, just compressed in time.
FAST_POLICY = HealthPolicy(
    breaker_window=30.0, breaker_threshold=3, cooldown=0.2,
    probe_successes=2, probe_timeout=10.0, quarantine_reloads=200,
    reload_backoff_base=0.02, reload_backoff_cap=0.05,
)

SEQUENCE = [1, 2, 3, 4, 5]


def http_json_with_headers(url: str, payload: dict | None = None,
                           timeout: float = 30.0):
    """(status, parsed-body, headers) — conftest's http_json plus headers."""
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"), method="POST",
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def codes_member_offset(path: Path) -> int:
    """Data offset of the first quantized layer's packed-codes zip member."""
    with zipfile.ZipFile(path) as zf:
        member = sorted(
            name for name in zf.namelist()
            if name.startswith("gobo::") and name.endswith("::codes.npy")
        )[0]
        info = zf.getinfo(member)
    raw = path.read_bytes()
    name_len, extra_len = struct.unpack_from("<HH", raw, info.header_offset + 26)
    return info.header_offset + 30 + name_len + extra_len + info.file_size - 1


@pytest.fixture
def swap_archive(micro_archive, tmp_path):
    """A private copy of the micro archive this test may corrupt and repair."""
    path = tmp_path / "swap.npz"
    shutil.copyfile(micro_archive, path)
    return path


def wait_until(predicate, timeout: float = 15.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.02)


class TestCorruptArchiveSelfHealing:
    def test_quarantine_reload_recovery_cycle(self, swap_archive, micro_archive):
        corrupt_fault = CorruptMemberAtServe("micro", times=1)
        armed = threading.Event()

        def fault(stage: str, model: str) -> None:
            if armed.is_set():
                corrupt_fault(stage, model)

        registry = ModelRegistry(verify="lazy")
        registry.register("micro", swap_archive, config=MICRO_CONFIG)
        with QuantServer(registry, port=0, batch_window=0.0,
                         request_timeout=5.0, forward_timeout=10.0,
                         health_policy=FAST_POLICY, fault=fault) as server:
            server.serve_in_background()
            base = f"http://{server.host}:{server.port}"
            predict = f"{base}/models/micro/predict"
            payload = {"input_ids": SEQUENCE}

            # Healthy baseline (fault disarmed): the bit-identity reference.
            status, baseline = http_json(predict, payload)
            assert status == 200
            assert baseline["version"] == 1

            # Rot a real byte of a quantized member's codes on disk, and arm
            # the injector that surfaces the CRC failure at serve time.
            corrupt_bytes(swap_archive, codes_member_offset(swap_archive))
            armed.set()

            # First request: the integrity error reaches the client once.
            status, body = http_json(predict, payload)
            assert status == 500
            assert "CRC" in body["error"] or "mismatch" in body["error"]

            # From now on: 503 + Retry-After at admission, never another 500.
            status, body, headers = http_json_with_headers(predict, payload)
            assert status == 503
            assert headers["Retry-After"] is not None
            assert int(headers["Retry-After"]) >= 1
            assert body["state"] == QUARANTINED
            assert "reload" in body["error"]

            status, health = http_json(f"{base}/healthz")
            assert status == 200
            assert health["status"] == "degraded"
            micro = health["models"]["micro"]["health"]
            assert micro["state"] == QUARANTINED
            assert micro["quarantine_reason"] == "integrity"

            # The reloader is live but the file is still bad: reload attempts
            # fail on the real checksum and the model stays out of service.
            wait_until(lambda: server.health.model("micro")
                       .describe()["reload_attempts"] >= 1)
            status, _, _ = http_json_with_headers(predict, payload)
            assert status == 503

            # Repair the archive on disk; the next automatic reload succeeds
            # and probe traffic walks the model back to service.
            shutil.copyfile(micro_archive, swap_archive)
            observed: set[int] = set()

            def recovered() -> bool:
                status, body = http_json(predict, payload)
                observed.add(status)
                return status == 200 and body["version"] == 2

            wait_until(recovered)
            assert observed <= {503, 200}, "a 500 leaked after quarantine"

            # Recovery is exact: same bytes in, bit-identical pooled out,
            # served from the reloaded (version-bumped) entry.
            status, recovered_body = http_json(predict, payload)
            assert status == 200
            assert recovered_body["version"] == 2
            assert recovered_body["pooled"] == baseline["pooled"]

            wait_until(lambda: http_json(f"{base}/healthz")[1]["status"] == "ok")
            status, health = http_json(f"{base}/healthz")
            assert health["models"]["micro"]["health"]["state"] == "healthy"
            assert health["models"]["micro"]["health"]["quarantines"] == 1


class TestHangIsolation:
    def test_watchdog_fences_hang_other_models_keep_serving(self, micro_archive):
        """A wedged forward on one model is fenced at forward_timeout and
        must not take the other model down with it."""
        registry = ModelRegistry(verify="lazy")
        registry.register("alpha", micro_archive, config=MICRO_CONFIG)
        registry.register("beta", micro_archive, config=MICRO_CONFIG)
        fault = HangForward("alpha", seconds=8.0, times=1)
        with QuantServer(registry, port=0, batch_window=0.0,
                         request_timeout=5.0, forward_timeout=0.3,
                         health_policy=FAST_POLICY, fault=fault) as server:
            server.serve_in_background()
            base = f"http://{server.host}:{server.port}"
            payload = {"input_ids": SEQUENCE}

            started = time.monotonic()
            status, body, headers = http_json_with_headers(
                f"{base}/models/alpha/predict", payload)
            # Fenced within ~forward_timeout, not after the full 8s hang.
            assert time.monotonic() - started < 4.0
            assert status == 503
            assert headers["Retry-After"] is not None
            assert "forward timeout" in body["error"]

            # The replacement worker serves both models immediately.
            status, body = http_json(f"{base}/models/beta/predict", payload)
            assert status == 200 and body["model"] == "beta"
            status, body = http_json(f"{base}/models/alpha/predict", payload)
            assert status == 200 and body["model"] == "alpha"

            status, health = http_json(f"{base}/healthz")
            assert health["models"]["beta"]["health"]["state"] == "healthy"
