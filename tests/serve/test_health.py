"""Health state machine: breaker, quarantine, probes, reloads — no sleeping.

Every ``ModelHealth`` method is clock-injectable, so the whole machine runs
on a hand-advanced timeline here; only the ``HealthMonitor`` reloader tests
touch real threads (with near-zero backoff).
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.errors import (
    ChecksumMismatchError,
    ModelQuarantinedError,
    TruncatedArchiveError,
)
from repro.serve.health import (
    DEGRADED,
    HEALTHY,
    PROBING,
    QUARANTINED,
    HealthMonitor,
    HealthPolicy,
    ModelHealth,
    classify_failure,
)

POLICY = HealthPolicy(
    breaker_window=10.0, breaker_threshold=3, cooldown=5.0,
    probe_successes=2, probe_timeout=30.0, quarantine_reloads=3,
    reload_backoff_base=0.001, reload_backoff_cap=0.002,
)


def trip_breaker(health: ModelHealth, now: float = 0.0) -> float:
    """Record enough transient failures at ``now`` to trip the breaker."""
    for _ in range(health.policy.breaker_threshold):
        health.record_failure(RuntimeError("blip"), now=now)
    assert health.state == QUARANTINED
    return now


class TestClassification:
    def test_integrity_errors(self):
        assert classify_failure(ChecksumMismatchError("crc")) == "integrity"
        assert classify_failure(TruncatedArchiveError("torn")) == "integrity"

    def test_everything_else_is_transient(self):
        assert classify_failure(RuntimeError("x")) == "transient"
        assert classify_failure(OSError("io")) == "transient"


class TestPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"breaker_window": 0.0},
        {"breaker_threshold": 0},
        {"probe_successes": 0},
        {"quarantine_reloads": -1},
    ])
    def test_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)


class TestBreaker:
    def test_starts_healthy_and_admits(self):
        health = ModelHealth("m", POLICY)
        assert health.state == HEALTHY
        health.admit(now=0.0)  # no raise

    def test_transient_failures_degrade_then_trip(self):
        health = ModelHealth("m", POLICY)
        health.record_failure(RuntimeError("one"), now=0.0)
        assert health.state == DEGRADED
        health.admit(now=0.1)  # degraded still serves
        health.record_failure(RuntimeError("two"), now=1.0)
        assert health.state == DEGRADED
        health.record_failure(RuntimeError("three"), now=2.0)
        assert health.state == QUARANTINED
        with pytest.raises(ModelQuarantinedError) as excinfo:
            health.admit(now=2.5)
        assert excinfo.value.retry_after >= 1.0
        assert excinfo.value.state == QUARANTINED

    def test_window_prunes_old_failures(self):
        """Failures spread wider than the window never trip the breaker."""
        health = ModelHealth("m", POLICY)
        for i in range(10):
            health.record_failure(RuntimeError("blip"), now=i * 11.0)
            assert health.state == DEGRADED
        # And a success once the window drained recovers to HEALTHY.
        health.record_success(now=200.0)
        assert health.state == HEALTHY

    def test_success_before_window_drains_keeps_degraded(self):
        health = ModelHealth("m", POLICY)
        health.record_failure(RuntimeError("blip"), now=0.0)
        health.record_success(now=1.0)  # failure still in window
        assert health.state == DEGRADED
        health.record_success(now=11.0)  # window drained
        assert health.state == HEALTHY


class TestProbeCycle:
    def test_cooldown_converts_admit_into_probe(self):
        health = ModelHealth("m", POLICY)
        trip_breaker(health, now=0.0)
        with pytest.raises(ModelQuarantinedError):
            health.admit(now=POLICY.cooldown - 0.1)
        health.admit(now=POLICY.cooldown + 0.1)  # first probe admitted
        assert health.state == PROBING

    def test_one_probe_in_flight_at_a_time(self):
        health = ModelHealth("m", POLICY)
        trip_breaker(health, now=0.0)
        health.admit(now=6.0)
        with pytest.raises(ModelQuarantinedError) as excinfo:
            health.admit(now=6.1)
        assert excinfo.value.state == PROBING

    def test_stale_probe_slot_reclaimed(self):
        """A probe whose handler died frees its slot after probe_timeout."""
        health = ModelHealth("m", POLICY)
        trip_breaker(health, now=0.0)
        health.admit(now=6.0)
        health.admit(now=6.0 + POLICY.probe_timeout + 1.0)  # no raise

    def test_probe_successes_close_the_breaker(self):
        health = ModelHealth("m", POLICY)
        trip_breaker(health, now=0.0)
        health.admit(now=6.0)
        health.record_success(now=6.1)
        assert health.state == PROBING  # needs probe_successes=2
        health.admit(now=6.2)
        health.record_success(now=6.3)
        assert health.state == HEALTHY
        health.admit(now=6.4)  # fully back

    def test_probe_failure_requarantines(self):
        health = ModelHealth("m", POLICY)
        trip_breaker(health, now=0.0)
        health.admit(now=6.0)
        health.record_failure(RuntimeError("still broken"), now=6.1)
        assert health.state == QUARANTINED
        # ...and the new quarantine runs a fresh cooldown.
        with pytest.raises(ModelQuarantinedError):
            health.admit(now=6.2)
        health.admit(now=6.1 + POLICY.cooldown + 0.1)
        assert health.state == PROBING


class TestIntegrityQuarantine:
    def test_integrity_quarantines_immediately(self):
        health = ModelHealth("m", POLICY)
        assert health.record_failure(
            ChecksumMismatchError("member CRC"), now=0.0) == "integrity"
        assert health.state == QUARANTINED
        assert health.reload_wanted()

    def test_cooldown_does_not_recover_integrity(self):
        """Only a reload ends an integrity quarantine — waiting cannot."""
        health = ModelHealth("m", POLICY)
        health.record_failure(ChecksumMismatchError("crc"), now=0.0)
        with pytest.raises(ModelQuarantinedError, match="reload"):
            health.admit(now=1000.0)

    def test_reload_moves_to_probing(self):
        health = ModelHealth("m", POLICY)
        health.record_failure(TruncatedArchiveError("torn"), now=0.0)
        health.note_reloaded(now=1.0)
        assert health.state == PROBING
        assert not health.reload_wanted()
        health.admit(now=1.1)
        health.record_success(now=1.2)
        health.admit(now=1.3)
        health.record_success(now=1.4)
        assert health.state == HEALTHY

    def test_reload_budget_exhaustion(self):
        health = ModelHealth("m", POLICY)
        health.record_failure(ChecksumMismatchError("crc"), now=0.0)
        for _ in range(POLICY.quarantine_reloads):
            assert health.reload_wanted()
            health.note_reload_failed(OSError("still bad"))
        assert not health.reload_wanted()
        with pytest.raises(ModelQuarantinedError, match="reload-exhausted"):
            health.admit(now=5000.0)
        assert health.describe(now=0.0)["quarantine_reason"] == "reload-exhausted"

    def test_manual_reload_recovers_exhausted_model(self):
        health = ModelHealth("m", POLICY)
        health.record_failure(ChecksumMismatchError("crc"), now=0.0)
        for _ in range(POLICY.quarantine_reloads):
            health.note_reload_failed(OSError("still bad"))
        health.note_reloaded(now=10.0)
        assert health.state == PROBING

    def test_reload_of_healthy_model_is_noop(self):
        """Deploy-time reloads must not push a healthy model into probing."""
        health = ModelHealth("m", POLICY)
        health.note_reloaded(now=0.0)
        assert health.state == HEALTHY


class TestObservability:
    def test_transitions_emit_events(self):
        with obs.scope() as trace:
            health = ModelHealth("m", POLICY)
            trip_breaker(health, now=0.0)
            health.admit(now=6.0)
            health.record_success(now=6.1)
            health.admit(now=6.2)
            health.record_success(now=6.3)
        transitions = [
            (e["attrs"]["from_state"], e["attrs"]["to_state"], e["attrs"]["reason"])
            for e in trace.events if e["name"] == "serve.health_transition"
        ]
        assert transitions == [
            (HEALTHY, DEGRADED, "transient-failure"),
            (DEGRADED, QUARANTINED, "breaker-tripped"),
            (QUARANTINED, PROBING, "cooldown-elapsed"),
            (PROBING, HEALTHY, "probes-passed"),
        ]

    def test_describe_is_json_ready(self):
        import json

        health = ModelHealth("m", POLICY)
        trip_breaker(health, now=0.0)
        description = health.describe(now=1.0)
        assert json.loads(json.dumps(description)) == description
        assert description["state"] == QUARANTINED
        assert description["breaker"]["trips"] == 1
        assert description["quarantine_reason"] == "breaker-tripped"
        assert "blip" in description["last_error"]


class FakeRegistry:
    """registry.reload() stand-in: fails ``failures`` times, then succeeds."""

    def __init__(self, failures: int = 0):
        self.failures = failures
        self.calls = 0

    def reload(self, name: str):
        self.calls += 1
        if self.calls <= self.failures:
            raise OSError(f"reload {self.calls} failed")
        return object()


def wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


class TestHealthMonitor:
    def test_integrity_failure_starts_reloader(self):
        registry = FakeRegistry(failures=0)
        monitor = HealthMonitor(registry, policy=POLICY)
        try:
            kind = monitor.report_failure("m", ChecksumMismatchError("crc"))
            assert kind == "integrity"
            wait_for(lambda: monitor.model("m").state == PROBING)
            assert registry.calls == 1
        finally:
            monitor.close()

    def test_reloader_retries_with_backoff_then_recovers(self):
        registry = FakeRegistry(failures=2)
        monitor = HealthMonitor(registry, policy=POLICY)
        try:
            monitor.report_failure("m", ChecksumMismatchError("crc"))
            wait_for(lambda: monitor.model("m").state == PROBING)
            assert registry.calls == 3
            assert monitor.model("m").describe(now=0.0)["reload_attempts"] == 2
        finally:
            monitor.close()

    def test_reloader_gives_up_after_budget(self):
        registry = FakeRegistry(failures=10**9)
        monitor = HealthMonitor(registry, policy=POLICY)
        try:
            monitor.report_failure("m", ChecksumMismatchError("crc"))
            wait_for(lambda: monitor.model("m").describe(now=0.0)
                     ["quarantine_reason"] == "reload-exhausted")
            assert registry.calls == POLICY.quarantine_reloads
        finally:
            monitor.close()

    def test_transient_failure_starts_no_reloader(self):
        registry = FakeRegistry()
        monitor = HealthMonitor(registry, policy=POLICY)
        try:
            monitor.report_failure("m", RuntimeError("blip"))
            time.sleep(0.05)
            assert registry.calls == 0
        finally:
            monitor.close()

    def test_manual_reload_recovers(self):
        registry = FakeRegistry()
        monitor = HealthMonitor(registry, policy=POLICY)
        try:
            for _ in range(POLICY.breaker_threshold):
                monitor.report_failure("m", RuntimeError("blip"))
            assert monitor.model("m").state == QUARANTINED
            monitor.note_manual_reload("m")
            assert monitor.model("m").state == PROBING
        finally:
            monitor.close()

    def test_describe_covers_touched_models(self):
        monitor = HealthMonitor(FakeRegistry(), policy=POLICY)
        try:
            monitor.report_success("a")
            monitor.report_failure("b", RuntimeError("blip"))
            description = monitor.describe(now=0.0)
            assert description["a"]["state"] == HEALTHY
            assert description["b"]["state"] == DEGRADED
        finally:
            monitor.close()
