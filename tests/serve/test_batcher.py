"""MicroBatcher: fusion, fan-out correctness, deadlines, shutdown."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.errors import (
    ModelNotFoundError,
    QueueFullError,
    RequestTimeoutError,
    ServeError,
)
from repro.serve import AdmissionController, MicroBatcher, ModelRegistry
from tests.conftest import MICRO_CONFIG


@pytest.fixture
def registry(micro_archive):
    registry = ModelRegistry()
    registry.register("micro", micro_archive, config=MICRO_CONFIG)
    yield registry
    registry.close()


def make_batcher(registry, *, window=0.02, max_batch=8, max_pending=64,
                 timeout=10.0):
    admission = AdmissionController(max_pending=max_pending,
                                    request_timeout=timeout)
    return MicroBatcher(registry, admission,
                        batch_window=window, max_batch=max_batch)


class TestFusion:
    def test_concurrent_requests_share_batches(self, registry):
        batcher = make_batcher(registry, window=0.05, max_batch=16)
        try:
            results = [None] * 12
            barrier = threading.Barrier(12)

            def call(index):
                barrier.wait()
                pending = batcher.submit("micro", [1 + index % 5, 2, 3])
                results[index] = batcher.wait(pending)

            threads = [threading.Thread(target=call, args=(i,)) for i in range(12)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            sizes = {result["batch_size"] for result in results}
            assert max(sizes) > 1, "no fusion happened across concurrent requests"
            assert all(result["model"] == "micro" for result in results)
        finally:
            batcher.close()

    def test_batched_result_matches_solo_forward(self, registry):
        """Fusion must not change the numbers: padding + attention mask make
        a batched row bit-identical to running the request alone."""
        batcher = make_batcher(registry, window=0.05, max_batch=8)
        try:
            sequences = [[1, 2, 3, 4, 5, 6, 7], [8, 9], [10, 11, 12]]
            results = [None] * len(sequences)
            barrier = threading.Barrier(len(sequences))

            def call(index):
                barrier.wait()
                pending = batcher.submit("micro", sequences[index])
                results[index] = batcher.wait(pending)

            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(len(sequences))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert max(result["batch_size"] for result in results) > 1
            entry = registry.get("micro")
            for sequence, result in zip(sequences, results):
                _, pooled = entry.model(np.array([sequence]))
                np.testing.assert_allclose(
                    np.array(result["pooled"]), pooled.data[0],
                    rtol=1e-12, atol=1e-12,
                )
        finally:
            batcher.close()

    def test_max_batch_caps_fusion(self, registry):
        batcher = make_batcher(registry, window=0.2, max_batch=2)
        try:
            results = [None] * 6
            barrier = threading.Barrier(6)

            def call(index):
                barrier.wait()
                pending = batcher.submit("micro", [1, 2, 3])
                results[index] = batcher.wait(pending)

            threads = [threading.Thread(target=call, args=(i,)) for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert max(result["batch_size"] for result in results) <= 2
        finally:
            batcher.close()


class TestValidation:
    def test_unknown_model_rejected_before_admission(self, registry):
        batcher = make_batcher(registry, max_pending=1)
        try:
            with pytest.raises(ModelNotFoundError):
                batcher.submit("ghost", [1, 2])
            assert batcher.admission.depth == 0
        finally:
            batcher.close()

    @pytest.mark.parametrize(
        "bad",
        [[], [[1, 2]], ["a"], [1.5], [999999], [-1]],
        ids=["empty", "2d", "str", "float", "oov", "negative"],
    )
    def test_malformed_input_ids(self, registry, bad):
        batcher = make_batcher(registry)
        try:
            with pytest.raises((ValueError, TypeError)):
                batcher.submit("micro", bad)
            assert batcher.admission.depth == 0
        finally:
            batcher.close()

    def test_overlong_sequence(self, registry):
        batcher = make_batcher(registry)
        try:
            too_long = [1] * (MICRO_CONFIG.max_position + 1)
            with pytest.raises(ValueError, match="max_position"):
                batcher.submit("micro", too_long)
        finally:
            batcher.close()

    def test_token_type_shape_mismatch(self, registry):
        batcher = make_batcher(registry)
        try:
            with pytest.raises(ValueError, match="token_type_ids"):
                batcher.submit("micro", [1, 2, 3], token_type_ids=[0, 0])
        finally:
            batcher.close()

    def test_queue_full_propagates(self, registry, monkeypatch):
        batcher = make_batcher(registry, max_pending=1)
        try:
            batcher.admission.admit()  # occupy the only slot
            with pytest.raises(QueueFullError):
                batcher.submit("micro", [1, 2])
        finally:
            batcher.admission.release()
            batcher.close()


class TestDeadlines:
    def test_timeout_returns_504_error_and_frees_slot(self, registry):
        """A request stuck behind a blocked worker times out; its admission
        slot must come back."""
        batcher = make_batcher(registry, timeout=0.2, max_pending=4)
        release = threading.Event()
        original_forward = batcher._forward

        def stalled_forward(model, live):
            release.wait(5.0)
            return original_forward(model, live)

        batcher._forward = stalled_forward
        try:
            pending = batcher.submit("micro", [1, 2, 3])
            with pytest.raises(RequestTimeoutError):
                batcher.wait(pending)
            release.set()
            deadline = time.time() + 5.0
            while batcher.admission.depth and time.time() < deadline:
                time.sleep(0.01)
            assert batcher.admission.depth == 0
        finally:
            release.set()
            batcher.close()

    def test_expired_in_queue_skipped_at_dequeue(self, registry):
        """A request nobody is waiting on anymore gets dropped when the
        worker reaches it, not computed into a dead batch."""
        batcher = make_batcher(registry, window=0.01, timeout=0.05, max_pending=8)
        stall = threading.Event()
        original_forward = batcher._forward

        def gated_forward(model, live):
            stall.wait(5.0)
            return original_forward(model, live)

        batcher._forward = gated_forward
        try:
            with obs.scope() as trace:
                first = batcher.submit("micro", [1, 2])
                time.sleep(0.05)  # the worker is now stalled, batching `first`
                second = batcher.submit("micro", [3, 4])  # queued behind it
                time.sleep(0.1)  # second's deadline passes in the queue
                stall.set()
                # Let the worker reach `second` before asking for it, so the
                # dequeue-time expiry path (not the handler-side timeout) is
                # what resolves it.
                poll_deadline = time.time() + 5.0
                while not second.done.is_set() and time.time() < poll_deadline:
                    time.sleep(0.005)
                # first completes (late but computed)...
                assert batcher.wait(first)["model"] == "micro"
                # ...second was dropped at dequeue with the 504 error.
                with pytest.raises(RequestTimeoutError, match="expired in queue"):
                    batcher.wait(second)
            expired = [event for event in trace.events
                       if event["name"] == "serve.expired_in_queue"]
            assert len(expired) == 1
        finally:
            stall.set()
            batcher.close()


class TestShutdown:
    def test_close_drains_queued_requests(self, registry):
        batcher = make_batcher(registry, window=0.05)
        pending = batcher.submit("micro", [1, 2, 3])
        batcher.close(drain=True)
        result = batcher.wait(pending)
        assert len(result["pooled"]) == MICRO_CONFIG.hidden_size

    def test_submit_after_close_raises(self, registry):
        batcher = make_batcher(registry)
        batcher.close()
        with pytest.raises(ServeError, match="shutting down"):
            batcher.submit("micro", [1, 2])
        assert batcher.admission.depth == 0


class TestObservability:
    def test_request_spans_nest_queue_wait(self, registry):
        batcher = make_batcher(registry, window=0.01)
        try:
            with obs.scope() as trace:
                with obs.recorder.span("serve.request", model="micro"):
                    pending = batcher.submit("micro", [1, 2, 3])
                    batcher.wait(pending)
            by_name = {event["name"]: event for event in trace.events
                       if event["event"] == "span"}
            assert "serve.request" in by_name
            assert by_name["serve.queue_wait"]["parent"] == "serve.request"
            assert by_name["serve.batch"]["parent"] == "serve.request"
            assert by_name["serve.batch"]["attrs"]["batch_size"] == 1
        finally:
            batcher.close()
