"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quantize_defaults(self):
        args = build_parser().parse_args(["quantize"])
        assert args.command == "quantize"
        assert args.config == "tiny-bert-base"
        assert args.weight_bits == 3
        assert args.workers is None
        assert args.report is False

    def test_quantize_flags(self):
        args = build_parser().parse_args(
            ["quantize", "--workers", "4", "--report", "--embedding-bits", "none"]
        )
        assert args.workers == 4
        assert args.report is True
        assert args.embedding_bits == "none"


class TestCommands:
    def test_list_prints_all_targets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("table1", "table7", "fig2", "fig4"):
            assert identifier in out

    def test_run_static_table(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "89.42 MB" in out

    def test_run_unknown_target(self, capsys):
        assert main(["run", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_figure_payload_rendered(self, capsys):
        assert main(["run", "fig3-curve"]) == 0
        out = capsys.readouterr().out
        assert "3-bit" in out and "10.67x" in out

    def test_run_engine_report(self, capsys):
        assert main(["run", "engine"]) == 0
        out = capsys.readouterr().out
        assert "Per-layer quantization report" in out
        assert "workers=" in out

    def test_quantize_with_report_and_archive(self, capsys, tmp_path):
        out_path = tmp_path / "model"  # suffix-less on purpose
        assert main([
            "quantize", "--workers", "2", "--report",
            "--embedding-bits", "none", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "tiny-bert-base" in out
        assert "2 workers" in out
        assert "Per-layer quantization report" in out
        assert (tmp_path / "model.npz").exists()

    def test_quantize_unknown_config(self, capsys):
        assert main(["quantize", "--config", "mega-bert"]) == 2
        assert capsys.readouterr().err

    def test_quantize_bad_embedding_bits(self, capsys):
        assert main(["quantize", "--embedding-bits", "lots"]) == 2
        assert "embedding-bits" in capsys.readouterr().err

    def test_quantize_negative_workers_clean_error(self, capsys):
        assert main(["quantize", "--workers", "-1"]) == 2
        assert "workers" in capsys.readouterr().err
