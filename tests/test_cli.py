"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quantize_defaults(self):
        args = build_parser().parse_args(["quantize"])
        assert args.command == "quantize"
        assert args.config == "tiny-bert-base"
        assert args.weight_bits == 3
        assert args.workers is None
        assert args.report is False

    def test_quantize_flags(self):
        args = build_parser().parse_args(
            ["quantize", "--workers", "4", "--report", "--embedding-bits", "none"]
        )
        assert args.workers == 4
        assert args.report is True
        assert args.embedding_bits == "none"

    def test_quantize_on_error_default_defers_to_environment(self):
        args = build_parser().parse_args(["quantize"])
        assert args.on_error is None
        assert args.validation == "strict"

    @pytest.mark.parametrize(
        "policy", ["fail", "skip", "fp32-fallback", "retry-higher-bits"]
    )
    def test_quantize_on_error_choices(self, policy):
        args = build_parser().parse_args(["quantize", "--on-error", policy])
        assert args.on_error == policy

    def test_quantize_on_error_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantize", "--on-error", "explode"])

    def test_quantize_validation_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantize", "--validation", "lenient"])

    def test_verify_archive_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify-archive"])

    def test_quantize_trace_flags(self):
        args = build_parser().parse_args(
            ["quantize", "--trace", "run.jsonl", "--trace-summary"]
        )
        assert args.trace == "run.jsonl"
        assert args.trace_summary is True
        defaults = build_parser().parse_args(["quantize"])
        assert defaults.trace is None
        assert defaults.trace_summary is False

    def test_profile_parses(self):
        args = build_parser().parse_args(["profile", "run.jsonl", "--check"])
        assert args.command == "profile"
        assert args.path == "run.jsonl"
        assert args.check is True

    def test_profile_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])


class TestCommands:
    def test_list_prints_all_targets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("table1", "table7", "fig2", "fig4"):
            assert identifier in out

    def test_run_static_table(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "89.42 MB" in out

    def test_run_unknown_target(self, capsys):
        assert main(["run", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_figure_payload_rendered(self, capsys):
        assert main(["run", "fig3-curve"]) == 0
        out = capsys.readouterr().out
        assert "3-bit" in out and "10.67x" in out

    def test_run_engine_report(self, capsys):
        assert main(["run", "engine"]) == 0
        out = capsys.readouterr().out
        assert "Per-layer quantization report" in out
        assert "workers=" in out

    def test_quantize_with_report_and_archive(self, capsys, tmp_path):
        out_path = tmp_path / "model"  # suffix-less on purpose
        assert main([
            "quantize", "--workers", "2", "--report",
            "--embedding-bits", "none", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "tiny-bert-base" in out
        assert "2 workers" in out
        assert "Per-layer quantization report" in out
        assert (tmp_path / "model.npz").exists()

    def test_quantize_unknown_config(self, capsys):
        assert main(["quantize", "--config", "mega-bert"]) == 2
        assert capsys.readouterr().err

    def test_quantize_bad_embedding_bits(self, capsys):
        assert main(["quantize", "--embedding-bits", "lots"]) == 2
        assert "embedding-bits" in capsys.readouterr().err

    def test_quantize_negative_workers_clean_error(self, capsys):
        assert main(["quantize", "--workers", "-1"]) == 2
        assert "workers" in capsys.readouterr().err


class TestVerifyArchive:
    @pytest.fixture
    def archive(self, tmp_path):
        path = tmp_path / "model.npz"
        assert main([
            "quantize", "--embedding-bits", "none", "--out", str(path),
        ]) == 0
        return path

    def test_intact_archive_exits_zero(self, archive, capsys):
        capsys.readouterr()  # drop the quantize output
        assert main(["verify-archive", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "format version 3" in out

    def test_missing_archive_exits_nonzero(self, tmp_path, capsys):
        assert main(["verify-archive", str(tmp_path / "absent.npz")]) == 1
        assert "missing" in capsys.readouterr().out

    def test_truncated_archive_exits_nonzero(self, archive, capsys):
        from repro.testing.faults import truncate_file

        truncate_file(archive, 0.5)
        capsys.readouterr()
        assert main(["verify-archive", str(archive)]) == 1
        assert "truncated" in capsys.readouterr().out

    def test_bit_flip_reported_as_checksum_mismatch(self, archive, capsys):
        from repro.testing.faults import corrupt_bytes

        corrupt_bytes(archive, archive.stat().st_size // 2)
        capsys.readouterr()
        assert main(["verify-archive", str(archive)]) == 1
        assert "checksum-mismatch" in capsys.readouterr().out


class TestTraceAndProfile:
    def test_quantize_trace_then_profile(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main([
            "quantize", "--embedding-bits", "none",
            "--out", str(tmp_path / "model"), "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert f"trace written: {trace}" in out
        assert trace.exists()

        assert main(["profile", "--check", str(trace)]) == 0
        assert "schema ok" in capsys.readouterr().out

        assert main(["profile", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Per-layer trace profile" in out
        assert "serialization.bytes_written" in out

    def test_quantize_trace_summary_prints_tables(self, capsys):
        assert main([
            "quantize", "--embedding-bits", "none", "--trace-summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "Per-layer trace profile" in out
        assert "engine.run" in out

    def test_profile_missing_file(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_profile_rejects_bad_trace(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"v": 99}\n')
        assert main(["profile", "--check", str(trace)]) == 1
        err = capsys.readouterr().err
        assert "line 1" in err and "schema violation" in err

    def test_quantize_leaves_no_sink_installed_on_error(self, tmp_path, monkeypatch):
        from repro import obs
        from repro.errors import QuantizationError

        def explode(*_args, **_kwargs):
            raise QuantizationError("injected")

        monkeypatch.setattr("repro.core.model_quantizer.quantize_model", explode)
        assert main([
            "quantize", "--embedding-bits", "none",
            "--trace", str(tmp_path / "t.jsonl"),
        ]) == 2
        assert obs.installed_sinks() == ()


class TestQuantizeDegraded:
    def test_on_error_surfaced_in_warning_line(self, capsys, monkeypatch):
        """--on-error wires through to the engine; a degraded run warns on
        stderr but still exits 0 with a usable archive."""
        import repro.core.parallel as parallel_mod

        original = parallel_mod.quantize_layers

        def sabotaged(weights, jobs, **kwargs):
            from repro.testing.faults import RaiseOnLayer

            kwargs["fault_injector"] = RaiseOnLayer(jobs[0].name)
            return original(weights, jobs, **kwargs)

        monkeypatch.setattr(
            "repro.core.model_quantizer.quantize_layers", sabotaged
        )
        assert main([
            "quantize", "--embedding-bits", "none",
            "--on-error", "fp32-fallback",
        ]) == 0
        err = capsys.readouterr().err
        assert "WARNING" in err and "fp32-fallback" in err


class TestDurableJobFlags:
    def test_quantize_job_flags_parse(self):
        args = build_parser().parse_args([
            "quantize", "--job-dir", "jobs/x", "--resume",
            "--layer-timeout", "2.5", "--transient-retries", "3",
        ])
        assert args.job_dir == "jobs/x"
        assert args.resume is True
        assert args.layer_timeout == 2.5
        assert args.transient_retries == 3

    def test_quantize_job_flag_defaults(self):
        args = build_parser().parse_args(["quantize"])
        assert args.job_dir is None and args.resume is False
        assert args.layer_timeout is None and args.transient_retries is None

    def test_resume_requires_job_dir(self, capsys):
        assert main(["quantize", "--resume"]) == 2
        assert "--job-dir" in capsys.readouterr().err

    def test_jobs_status_parses(self):
        args = build_parser().parse_args(["jobs", "status", "jobs/x"])
        assert args.command == "jobs" and args.job_dir == "jobs/x"

    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs"])


class TestDurableJobCommands:
    def test_quantize_durable_then_status_then_resume(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.testing.faults import InjectedFault

        clean = tmp_path / "clean.npz"
        assert main([
            "quantize", "--embedding-bits", "none", "--out", str(clean),
        ]) == 0
        job_dir = tmp_path / "job"
        # Abort the durable run partway via an injected fault.
        monkeypatch.setenv("REPRO_FAULTS", "raise:5")
        with pytest.raises(InjectedFault):
            main([
                "quantize", "--embedding-bits", "none",
                "--job-dir", str(job_dir), "--out", str(tmp_path / "x.npz"),
            ])
        monkeypatch.delenv("REPRO_FAULTS")
        capsys.readouterr()
        assert main(["jobs", "status", str(job_dir)]) == 1  # incomplete
        out = capsys.readouterr().out
        assert "pending" in out and "incomplete" in out
        resumed = tmp_path / "resumed.npz"
        assert main([
            "quantize", "--embedding-bits", "none", "--job-dir", str(job_dir),
            "--resume", "--workers", "2", "--out", str(resumed),
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed:" in out
        assert resumed.read_bytes() == clean.read_bytes()
        assert main(["jobs", "status", str(job_dir)]) == 0
        assert "complete" in capsys.readouterr().out

    def test_existing_job_dir_without_resume_is_an_error(self, capsys, tmp_path):
        job_dir = tmp_path / "job"
        assert main([
            "quantize", "--embedding-bits", "none", "--job-dir", str(job_dir),
        ]) == 0
        capsys.readouterr()
        assert main([
            "quantize", "--embedding-bits", "none", "--job-dir", str(job_dir),
        ]) == 2
        assert "resume" in capsys.readouterr().err

    def test_jobs_status_on_missing_dir(self, capsys, tmp_path):
        assert main(["jobs", "status", str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err

    def test_bad_faults_spec_is_a_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "explode:now")
        assert main(["quantize", "--embedding-bits", "none"]) == 2
        assert "fault" in capsys.readouterr().err


class TestVerifyArchiveMultiple:
    @pytest.fixture
    def archives(self, tmp_path, capsys):
        paths = [tmp_path / "a.npz", tmp_path / "b.npz"]
        for path in paths:
            assert main([
                "quantize", "--embedding-bits", "none", "--out", str(path),
            ]) == 0
        capsys.readouterr()
        return paths

    def test_all_ok_exits_zero(self, archives, capsys):
        assert main(["verify-archive", *map(str, archives)]) == 0
        out = capsys.readouterr().out
        assert "2/2 archive(s) ok" in out

    def test_any_failure_exits_nonzero_and_names_each(
        self, archives, tmp_path, capsys
    ):
        from repro.testing.faults import truncate_file

        truncate_file(archives[1], 0.5)
        missing = tmp_path / "absent.npz"
        assert main(["verify-archive", str(archives[0]), str(archives[1]),
                     str(missing)]) == 1
        out = capsys.readouterr().out
        assert "ok" in out and "truncated" in out and "missing" in out
        assert "1/3 archive(s) ok" in out

    def test_quiet_suppresses_ok_but_reports_failures(
        self, archives, tmp_path, capsys
    ):
        assert main(["verify-archive", "--quiet", *map(str, archives)]) == 0
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
        missing = tmp_path / "absent.npz"
        assert main(["verify-archive", "--quiet", str(archives[0]),
                     str(missing)]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "missing" in captured.err
