"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_all_targets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("table1", "table7", "fig2", "fig4"):
            assert identifier in out

    def test_run_static_table(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "89.42 MB" in out

    def test_run_unknown_target(self, capsys):
        assert main(["run", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_figure_payload_rendered(self, capsys):
        assert main(["run", "fig3-curve"]) == 0
        out = capsys.readouterr().out
        assert "3-bit" in out and "10.67x" in out
