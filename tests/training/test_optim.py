"""Tests for the optimizers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.training.optim import SGD, Adam


def quadratic_grad(param: Parameter) -> None:
    """Gradient of 0.5 * ||x||^2."""
    param.grad = param.data.copy()


class TestSGD:
    def test_descends_quadratic(self):
        param = Parameter(np.array([10.0, -10.0]))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            quadratic_grad(param)
            opt.step()
        np.testing.assert_allclose(param.data, [0.0, 0.0], atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([10.0]))
        momentum = Parameter(np.array([10.0]))
        opt_a, opt_b = SGD([plain], lr=0.01), SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            quadratic_grad(plain)
            quadratic_grad(momentum)
            opt_a.step()
            opt_b.step()
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_skips_params_without_grad(self):
        param = Parameter(np.array([1.0]))
        SGD([param], lr=0.1).step()
        assert param.data[0] == 1.0

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_descends_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        opt = Adam([param], lr=0.1)
        for _ in range(200):
            quadratic_grad(param)
            opt.step()
        np.testing.assert_allclose(param.data, [0.0, 0.0], atol=1e-2)

    def test_bias_correction_first_step(self):
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.1)
        param.grad = np.array([1.0])
        opt.step()
        # With bias correction, the first step has magnitude ~lr.
        assert param.data[0] == pytest.approx(0.9, abs=1e-6)

    def test_weight_decay_shrinks_unused_direction(self):
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.01, weight_decay=0.1)
        for _ in range(100):
            param.grad = np.zeros(1)
            opt.step()
        assert abs(param.data[0]) < 1.0

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.9))

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        param = Parameter(np.zeros(4))
        opt = SGD([param], lr=0.1)
        param.grad = np.full(4, 10.0)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        param = Parameter(np.zeros(2))
        opt = SGD([param], lr=0.1)
        param.grad = np.array([0.3, 0.4])
        opt.clip_grad_norm(1.0)
        np.testing.assert_allclose(param.grad, [0.3, 0.4])

    def test_zero_grad_clears(self):
        param = Parameter(np.ones(2))
        opt = SGD([param], lr=0.1)
        param.grad = np.ones(2)
        opt.zero_grad()
        assert param.grad is None
