"""Tests for knowledge distillation."""

import numpy as np
import pytest

from repro.data import generate_mnli
from repro.models import build_model
from repro.nn.tensor import Tensor
from repro.training import Trainer, evaluate
from repro.training.distill import DistillationTrainer, soft_cross_entropy
from tests.conftest import MICRO_CONFIG


class TestSoftCrossEntropy:
    def test_minimized_when_student_matches_teacher(self, rng):
        logits = rng.normal(size=(4, 3))
        loss = soft_cross_entropy(Tensor(logits), logits, temperature=1.0)
        # The KL term is zero at the match, so any distribution-changing
        # perturbation increases the loss (a uniform shift would not — the
        # softmax is shift-invariant).
        perturbed = logits.copy()
        perturbed[:, 0] += 0.5
        nudged = soft_cross_entropy(Tensor(perturbed), logits, temperature=1.0)
        assert loss.item() < nudged.item()

    def test_temperature_scaling_keeps_magnitude(self, rng):
        student = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        teacher = rng.normal(size=(4, 3))
        soft_cross_entropy(student, teacher, temperature=4.0).backward()
        grad_hot = np.abs(student.grad).mean()
        student.zero_grad()
        soft_cross_entropy(student, teacher, temperature=1.0).backward()
        grad_cold = np.abs(student.grad).mean()
        # T^2 scaling keeps gradients within an order of magnitude.
        assert 0.1 < grad_hot / grad_cold < 10.0

    def test_invalid_temperature(self, rng):
        with pytest.raises(ValueError):
            soft_cross_entropy(Tensor(rng.normal(size=(2, 3))), rng.normal(size=(2, 3)), 0.0)


class TestDistillationTrainer:
    @pytest.fixture(scope="class")
    def setup(self):
        splits = generate_mnli(num_train=192, num_eval=96, rng=0)
        teacher = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=1)
        Trainer(teacher, lr=2e-3, batch_size=16, rng=2).fit(splits.train, epochs=4)
        return teacher, splits

    def test_student_learns_to_mimic_teacher(self, setup):
        teacher, splits = setup
        student_config = MICRO_CONFIG.scaled("micro-student", num_layers=1)
        student = build_model(student_config, task="classification", num_labels=3, rng=5)
        encodings = splits.eval.encodings

        def agreement() -> float:
            teacher_predictions = teacher.predict(
                encodings.input_ids, encodings.attention_mask, encodings.token_type_ids
            )
            student_predictions = student.predict(
                encodings.input_ids, encodings.attention_mask, encodings.token_type_ids
            )
            return float((teacher_predictions == student_predictions).mean())

        trainer = DistillationTrainer(student, teacher, lr=2e-3, batch_size=16, rng=3)
        losses = trainer.fit(splits.train, epochs=3)
        assert losses[-1] < losses[0]
        # The distilled student mimics the teacher's decisions closely.
        assert agreement() >= 0.85

    def test_student_smaller_than_teacher(self, setup):
        teacher, _ = setup
        student_config = MICRO_CONFIG.scaled("micro-student", num_layers=1)
        student = build_model(student_config, task="classification", num_labels=3, rng=5)
        assert student.num_parameters() < teacher.num_parameters()

    def test_rejects_non_classification(self, setup):
        teacher, _ = setup
        from repro.data import generate_stsb

        splits = generate_stsb(num_train=32, num_eval=16, rng=0)
        student = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=5)
        trainer = DistillationTrainer(student, teacher, rng=3)
        with pytest.raises(ValueError):
            trainer.fit(splits.train)

    def test_invalid_soft_weight(self, setup):
        teacher, _ = setup
        student = build_model(MICRO_CONFIG, task="classification", num_labels=3, rng=5)
        with pytest.raises(ValueError):
            DistillationTrainer(student, teacher, soft_weight=1.5)
