"""Tests for the fine-tuning loop (micro-scale end-to-end checks)."""

import numpy as np
import pytest

from repro.data.mnli import generate_mnli
from repro.data.squad import generate_squad
from repro.data.stsb import generate_stsb
from repro.models.zoo import build_model
from repro.training.trainer import Trainer, evaluate
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def mnli():
    return generate_mnli(num_train=96, num_eval=48, rng=0)


class TestTrainer:
    def test_loss_decreases(self, mnli):
        model = build_model(MICRO_CONFIG, "classification", num_labels=3, rng=1)
        log = Trainer(model, lr=2e-3, batch_size=16, rng=2).fit(mnli.train, epochs=3)
        assert log.losses[-1] < log.losses[0]

    def test_eval_scores_recorded(self, mnli):
        model = build_model(MICRO_CONFIG, "classification", num_labels=3, rng=1)
        log = Trainer(model, lr=2e-3, batch_size=16, rng=2).fit(
            mnli.train, eval_data=mnli.eval, epochs=2
        )
        assert len(log.eval_scores) == 2
        assert all(0.0 <= s <= 1.0 for s in log.eval_scores)

    def test_model_left_in_eval_mode(self, mnli):
        model = build_model(MICRO_CONFIG, "classification", num_labels=3, rng=1)
        Trainer(model, lr=1e-3, rng=2).fit(mnli.train, epochs=1)
        assert not model.training

    def test_deterministic_training(self, mnli):
        def run():
            model = build_model(MICRO_CONFIG, "classification", num_labels=3, rng=1)
            Trainer(model, lr=1e-3, batch_size=16, rng=2).fit(mnli.train, epochs=1)
            return model.state_dict()

        a, b = run(), run()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_invalid_epochs(self, mnli):
        model = build_model(MICRO_CONFIG, "classification", num_labels=3, rng=1)
        with pytest.raises(ValueError):
            Trainer(model, rng=2).fit(mnli.train, epochs=0)

    def test_regression_task_trains(self):
        splits = generate_stsb(num_train=64, num_eval=16, rng=0)
        model = build_model(MICRO_CONFIG, "regression", rng=1)
        log = Trainer(model, lr=2e-3, batch_size=16, rng=2).fit(splits.train, epochs=3)
        assert log.losses[-1] < log.losses[0]

    def test_span_task_trains(self):
        splits = generate_squad(num_train=64, num_eval=16, rng=0)
        model = build_model(MICRO_CONFIG, "span", rng=1)
        log = Trainer(model, lr=2e-3, batch_size=16, rng=2).fit(splits.train, epochs=3)
        assert log.losses[-1] < log.losses[0]


class TestEvaluate:
    def test_returns_metric_in_range(self, mnli):
        model = build_model(MICRO_CONFIG, "classification", num_labels=3, rng=1)
        score = evaluate(model, mnli.eval)
        assert 0.0 <= score <= 1.0

    def test_untrained_model_near_chance(self, mnli):
        model = build_model(MICRO_CONFIG, "classification", num_labels=3, rng=1)
        assert evaluate(model, mnli.eval) < 0.7

    def test_batch_size_does_not_change_result(self, mnli):
        model = build_model(MICRO_CONFIG, "classification", num_labels=3, rng=1)
        a = evaluate(model, mnli.eval, batch_size=8)
        b = evaluate(model, mnli.eval, batch_size=48)
        assert a == b
