"""Tests for learning-rate schedules."""

import pytest

from repro.training.schedule import ConstantSchedule, LinearWarmupSchedule


class TestConstant:
    def test_always_same(self):
        schedule = ConstantSchedule(0.01)
        assert schedule.lr_at(0) == schedule.lr_at(10000) == 0.01

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)


class TestLinearWarmup:
    def test_warmup_ramps_linearly(self):
        schedule = LinearWarmupSchedule(peak_lr=1.0, warmup_steps=10, total_steps=100)
        assert schedule.lr_at(0) == 0.0
        assert schedule.lr_at(5) == pytest.approx(0.5)
        assert schedule.lr_at(10) == pytest.approx(1.0)

    def test_decay_reaches_zero(self):
        schedule = LinearWarmupSchedule(peak_lr=1.0, warmup_steps=10, total_steps=100)
        assert schedule.lr_at(55) == pytest.approx(0.5)
        assert schedule.lr_at(100) == 0.0

    def test_clamps_beyond_total(self):
        schedule = LinearWarmupSchedule(peak_lr=1.0, warmup_steps=0, total_steps=10)
        assert schedule.lr_at(50) == 0.0
        assert schedule.lr_at(-5) == pytest.approx(1.0)

    def test_no_warmup(self):
        schedule = LinearWarmupSchedule(peak_lr=2.0, warmup_steps=0, total_steps=10)
        assert schedule.lr_at(0) == pytest.approx(2.0)

    def test_all_warmup(self):
        schedule = LinearWarmupSchedule(peak_lr=2.0, warmup_steps=10, total_steps=10)
        assert schedule.lr_at(10) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearWarmupSchedule(peak_lr=0.0, warmup_steps=0, total_steps=10)
        with pytest.raises(ValueError):
            LinearWarmupSchedule(peak_lr=1.0, warmup_steps=20, total_steps=10)
