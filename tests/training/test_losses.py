"""Tests for the loss functions."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.tensor import Tensor
from repro.training.losses import cross_entropy, mse, span_loss
from tests.conftest import assert_autograd_matches


class TestCrossEntropy:
    def test_uniform_logits_log_classes(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(3))

    def test_confident_correct_near_zero(self):
        logits = np.full((2, 3), -20.0)
        logits[:, 1] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 1]))
        assert loss.item() < 1e-6

    def test_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        assert_autograd_matches(lambda t: cross_entropy(t, labels), x)

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 3]))

    def test_shape_checked(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_logits_must_be_2d(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))


class TestMse:
    def test_zero_for_exact(self):
        preds = Tensor(np.array([1.0, 2.0]))
        assert mse(preds, np.array([1.0, 2.0])).item() == 0.0

    def test_value(self):
        preds = Tensor(np.array([1.0, 3.0]))
        assert mse(preds, np.array([0.0, 0.0])).item() == pytest.approx(5.0)

    def test_gradient(self, rng):
        targets = rng.normal(size=4)
        assert_autograd_matches(lambda t: mse(t, targets), rng.normal(size=4))

    def test_shape_checked(self):
        with pytest.raises(ShapeError):
            mse(Tensor(np.zeros(3)), np.zeros(4))


class TestSpanLoss:
    def test_averages_start_and_end(self, rng):
        start = Tensor(rng.normal(size=(2, 6)))
        end = Tensor(rng.normal(size=(2, 6)))
        spans = np.array([[1, 2], [3, 3]])
        expected = 0.5 * (
            cross_entropy(start, spans[:, 0]).item()
            + cross_entropy(end, spans[:, 1]).item()
        )
        assert span_loss(start, end, spans).item() == pytest.approx(expected)

    def test_span_shape_checked(self):
        logits = Tensor(np.zeros((2, 6)))
        with pytest.raises(ShapeError):
            span_loss(logits, logits, np.array([1, 2]))
