"""Golden-file fixtures lock backward-compatible archive loads.

``tests/data/golden_v{1,2,3}.npz`` are checked-in binaries built by
``scripts/make_golden_archives.py`` from hand-written payloads
(:mod:`repro.testing.golden`).  These tests load the *files as committed*,
so any future format change that would silently break archives already on
disk fails here first.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.serialization import load_quantized_model, verify_archive
from repro.testing import golden

DATA_DIR = Path(__file__).resolve().parents[1] / "data"

pytestmark = pytest.mark.parametrize("version", golden.GOLDEN_VERSIONS)


def _path(version: int) -> Path:
    path = golden.golden_path(DATA_DIR, version)
    assert path.exists(), (
        f"missing golden fixture {path}; run scripts/make_golden_archives.py"
    )
    return path


def test_golden_archive_loads(version):
    model = load_quantized_model(_path(version))
    assert model.fc_names == (golden.TENSOR_NAME,)
    assert model.embedding_names == ()
    assert set(model.quantized) == {golden.TENSOR_NAME}
    assert set(model.fp32) == {golden.FP32_NAME}


def test_golden_tensor_reconstructs_exactly(version):
    """Centroids/outliers were chosen float32-exact, so the decode is exact."""
    model = load_quantized_model(_path(version))
    expected = golden.expected_state_dict()
    state = model.state_dict(dtype=np.float64)
    assert set(state) == set(expected)
    for name, value in expected.items():
        np.testing.assert_array_equal(state[name], value, err_msg=name)


def test_golden_tensor_metadata(version):
    tensor = load_quantized_model(_path(version)).quantized[golden.TENSOR_NAME]
    assert tensor.shape == golden.SHAPE
    assert tensor.bits == golden.BITS
    np.testing.assert_array_equal(
        tensor.outlier_positions, np.array(golden.OUTLIER_POSITIONS)
    )
    assert tensor.codes().tolist() == list(golden.CODES)


def test_iterations_survive_from_v2_on(version):
    """v1 predates iteration counts; v2+ archives must restore them."""
    model = load_quantized_model(_path(version))
    if version == 1:
        assert model.iterations == {}
    else:
        assert model.iterations == {golden.TENSOR_NAME: golden.ITERATIONS}


def test_verify_archive_classification(version):
    check = verify_archive(_path(version))
    assert check.ok
    assert check.version == version
    assert check.status == ("ok" if version >= 3 else "ok-unchecksummed")


def test_regeneration_is_byte_identical(version, tmp_path):
    """The deterministic writer reproduces the committed fixture exactly.

    If this fails, either the zip writer or the payload layout changed —
    both are format events that need a version bump, not a silent rewrite.
    """
    regenerated = golden.write_golden(tmp_path, version)
    assert regenerated.read_bytes() == _path(version).read_bytes()
