"""Invariants of the GOBO centroid iteration (the paper's stopping rule).

GOBO stops at the first iteration where the total L1 norm fails to improve
(Section IV) — so the recorded trajectory must decrease monotonically up to
the stop, the returned state must be the trajectory minimum, and the final
assignment must be nearest-centroid consistent.  The same facts are checked
through the new observability convergence trace, which must mirror the
in-memory :class:`ConvergenceTrace` exactly.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.binning import assign_to_centroids
from repro.core.clustering import gobo_cluster, kmeans_cluster
from repro.utils.rng import derive_rng

SEEDS = (0, 1, 2)
BITS = (2, 3, 4)


def _values(seed: int, size: int = 4000) -> np.ndarray:
    rng = derive_rng(seed, "clustering-invariants")
    values = rng.normal(0.0, 0.04, size=size)
    values[rng.integers(0, size, size=4)] *= 8.0  # a few outlier-ish tails
    return values


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("bits", BITS)
class TestGoboL1Monotonicity:
    def test_l1_non_increasing_until_stop(self, seed, bits):
        """Every step before the stop improves L1; only the stopping step
        (kept in the trace on purpose) may worsen it."""
        result = gobo_cluster(_values(seed), bits)
        l1 = result.trace.l1_norms
        assert len(l1) >= 1
        for i in range(len(l1) - 2):
            assert l1[i + 1] <= l1[i], f"L1 rose mid-run at iteration {i + 1}: {l1}"

    def test_returned_state_is_trajectory_minimum(self, seed, bits):
        result = gobo_cluster(_values(seed), bits)
        assert result.final_l1 == min(result.trace.l1_norms)
        assert result.l1_norm() <= result.trace.l1_norms[-1]

    def test_final_assignment_is_nearest_centroid(self, seed, bits):
        values = _values(seed)
        result = gobo_cluster(values, bits)
        nearest = assign_to_centroids(values, result.centroids)
        np.testing.assert_array_equal(result.assignment, nearest)

    def test_recomputed_l1_matches_reported(self, seed, bits):
        values = _values(seed)
        result = gobo_cluster(values, bits)
        residual = np.abs(values - result.centroids[result.assignment]).sum()
        assert residual == pytest.approx(result.final_l1, rel=1e-12)


class TestConvergenceObsTrace:
    """The clustering.l1 obs event mirrors the in-memory trace exactly."""

    @pytest.mark.parametrize("cluster,method", [(gobo_cluster, "gobo"), (kmeans_cluster, "kmeans")])
    def test_trace_event_matches_trace(self, cluster, method):
        values = _values(7)
        with obs.scope() as scoped:
            result = cluster(values, 3)
        traces = [e for e in scoped.events if e["name"] == "clustering.l1"]
        assert len(traces) == 1
        event = traces[0]
        assert event["event"] == "trace"
        assert event["values"] == result.trace.l1_norms
        assert event["attrs"]["method"] == method
        assert event["attrs"]["bits"] == 3
        assert event["attrs"]["iterations"] == result.iterations
        assert event["attrs"]["converged"] == result.converged
        assert event["attrs"]["final_l1"] == result.final_l1
        assert not obs.validate_events(scoped.events)

    def test_gobo_trace_minimum_is_final_l1(self):
        with obs.scope() as scoped:
            result = gobo_cluster(_values(11), 3)
        (event,) = [e for e in scoped.events if e["name"] == "clustering.l1"]
        assert min(event["values"]) == result.final_l1
