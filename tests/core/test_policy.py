"""Tests for per-layer bit policies."""

import pytest

from repro.core.policy import LayerPolicy, PolicyRule, mixed_precision_policy
from repro.errors import ConfigError


class TestPolicyRule:
    def test_matches_regex(self):
        rule = PolicyRule(r"encoder\.0\..*\.weight$", 4)
        assert rule.matches("encoder.0.attention.value.weight")
        assert not rule.matches("encoder.10.attention.value.weight")

    def test_invalid_bits(self):
        with pytest.raises(ConfigError):
            PolicyRule("x", 0)

    def test_invalid_pattern(self):
        with pytest.raises(ConfigError):
            PolicyRule("(unclosed", 3)


class TestLayerPolicy:
    def test_uniform(self):
        policy = LayerPolicy.uniform(4)
        assert policy.bits_for("anything") == 4

    def test_first_matching_rule_wins(self):
        policy = LayerPolicy(
            default_bits=3,
            rules=(PolicyRule("value", 4), PolicyRule("value", 5)),
        )
        assert policy.bits_for("attention.value.weight") == 4

    def test_default_when_no_match(self):
        policy = LayerPolicy(default_bits=3, rules=(PolicyRule("value", 4),))
        assert policy.bits_for("attention.query.weight") == 3

    def test_invalid_default(self):
        with pytest.raises(ConfigError):
            LayerPolicy(default_bits=0)


class TestMixedPrecisionPolicy:
    """The paper's RoBERTa recipe: Value + Intermediate of the first half."""

    def test_sensitive_layers_get_more_bits(self):
        policy = mixed_precision_policy(6, sensitive_bits=4, default_bits=3)
        assert policy.bits_for("encoder.0.attention.value.weight") == 4
        assert policy.bits_for("encoder.5.intermediate.weight") == 4

    def test_later_layers_default(self):
        policy = mixed_precision_policy(6)
        assert policy.bits_for("encoder.6.attention.value.weight") == 3
        assert policy.bits_for("encoder.11.intermediate.weight") == 3

    def test_non_sensitive_components_default(self):
        policy = mixed_precision_policy(6)
        assert policy.bits_for("encoder.0.attention.query.weight") == 3
        assert policy.bits_for("encoder.0.output.weight") == 3

    def test_layer_index_not_prefix_matched(self):
        policy = mixed_precision_policy(1)
        assert policy.bits_for("encoder.1.attention.value.weight") == 3
        assert policy.bits_for("encoder.10.attention.value.weight") == 3

    def test_zero_sensitive_layers(self):
        policy = mixed_precision_policy(0)
        assert policy.bits_for("encoder.0.attention.value.weight") == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            mixed_precision_policy(-1)
