"""Tests for input validation / repair and pathological-tensor quantization."""

import numpy as np
import pytest

from repro.core.quantizer import quantize_tensor
from repro.core.validate import (
    VALIDATION_POLICIES,
    diagnose_tensor,
    validate_tensor,
)
from repro.errors import (
    DegenerateTensorError,
    LayerSkipped,
    NonFiniteWeightError,
    QuantizationError,
)


class TestDiagnose:
    def test_healthy_tensor(self, rng):
        diagnosis = diagnose_tensor(rng.normal(0, 0.05, size=(16, 16)))
        assert diagnosis.ok
        assert diagnosis.describe() == "ok"

    def test_empty(self):
        diagnosis = diagnose_tensor(np.array([]))
        assert diagnosis.empty and not diagnosis.ok
        assert "empty" in diagnosis.describe()

    def test_non_finite_counted(self, rng):
        weights = rng.normal(size=100)
        weights[::10] = np.nan
        weights[1] = np.inf
        diagnosis = diagnose_tensor(weights)
        assert diagnosis.non_finite == 11
        assert "non-finite" in diagnosis.describe()

    def test_constant_is_zero_variance(self):
        diagnosis = diagnose_tensor(np.full((4, 4), 0.5))
        assert diagnosis.zero_variance and not diagnosis.ok

    def test_single_element_is_zero_variance(self):
        assert diagnose_tensor(np.array([1.5])).zero_variance


class TestValidatePolicies:
    def test_unknown_policy_rejected(self, rng):
        with pytest.raises(QuantizationError, match="policy"):
            validate_tensor(rng.normal(size=4), policy="lenient")

    def test_strict_passes_healthy_tensor_through(self, rng):
        weights = rng.normal(0, 0.05, size=64)
        outcome = validate_tensor(weights, policy="strict")
        assert outcome.weights is weights or np.shares_memory(outcome.weights, weights)
        assert not outcome.repairs and not outcome.degenerate and not outcome.skipped

    def test_strict_raises_typed_errors(self):
        with pytest.raises(NonFiniteWeightError):
            validate_tensor(np.array([1.0, np.nan]), policy="strict")
        with pytest.raises(DegenerateTensorError):
            validate_tensor(np.full(8, 2.0), policy="strict")
        with pytest.raises(DegenerateTensorError):
            validate_tensor(np.array([]), policy="strict")

    def test_non_finite_error_is_a_value_error(self):
        """Callers that historically caught ValueError keep working."""
        with pytest.raises(ValueError):
            validate_tensor(np.array([1.0, np.nan]), policy="strict")

    def test_repair_sanitizes_non_finite_with_finite_mean(self):
        weights = np.array([1.0, 3.0, np.nan, np.inf])
        outcome = validate_tensor(weights, policy="repair")
        np.testing.assert_array_equal(outcome.weights, [1.0, 3.0, 2.0, 2.0])
        assert outcome.repairs and not outcome.skipped
        # The original tensor is untouched.
        assert np.isnan(weights[2])

    def test_repair_all_non_finite_becomes_zero_and_degenerate(self):
        outcome = validate_tensor(np.full(5, np.nan), policy="repair")
        np.testing.assert_array_equal(outcome.weights, np.zeros(5))
        assert outcome.degenerate

    def test_repair_flags_constant_as_degenerate(self):
        outcome = validate_tensor(np.full(6, 0.25), policy="repair")
        assert outcome.degenerate
        assert any("linear" in note for note in outcome.repairs)

    def test_repair_cannot_fix_empty(self):
        with pytest.raises(DegenerateTensorError):
            validate_tensor(np.array([]), policy="repair")

    def test_skip_never_raises(self):
        for bad in (np.array([]), np.full(3, np.nan), np.full(3, 1.0)):
            outcome = validate_tensor(bad, policy="skip")
            assert outcome.skipped

    def test_skip_accepts_healthy_tensor(self, rng):
        outcome = validate_tensor(rng.normal(size=32), policy="skip")
        assert not outcome.skipped


PATHOLOGICAL = {
    "empty": np.array([]),
    "all-nan": np.full(7, np.nan),
    "single-element": np.array([0.25]),
    "constant": np.full((3, 5), -1.5),
}


class TestQuantizeTensorPathological:
    """Satellite: empty / all-NaN / single-element under each policy."""

    @pytest.mark.parametrize("name", sorted(PATHOLOGICAL))
    def test_strict_raises_quantization_error(self, name):
        with pytest.raises(QuantizationError):
            quantize_tensor(PATHOLOGICAL[name], bits=3, validation="strict")

    @pytest.mark.parametrize("name", sorted(PATHOLOGICAL))
    def test_skip_raises_layer_skipped(self, name):
        with pytest.raises(LayerSkipped):
            quantize_tensor(PATHOLOGICAL[name], bits=3, validation="skip")

    def test_repair_all_nan_reconstructs_zeros(self):
        tensor, result = quantize_tensor(PATHOLOGICAL["all-nan"], bits=3, validation="repair")
        np.testing.assert_array_equal(tensor.dequantize(np.float64), np.zeros(7))
        assert result.converged

    def test_repair_single_element_exact(self):
        tensor, _ = quantize_tensor(PATHOLOGICAL["single-element"], bits=3, validation="repair")
        np.testing.assert_array_equal(tensor.dequantize(np.float64), [0.25])

    def test_repair_constant_exact(self):
        tensor, _ = quantize_tensor(PATHOLOGICAL["constant"], bits=3, validation="repair")
        np.testing.assert_array_equal(
            tensor.dequantize(np.float64), np.full((3, 5), -1.5)
        )

    def test_repair_empty_still_raises(self):
        with pytest.raises(DegenerateTensorError):
            quantize_tensor(PATHOLOGICAL["empty"], bits=3, validation="repair")

    def test_repair_partial_nan_quantizes_rest_sanely(self, rng):
        weights = rng.normal(0, 0.05, size=512)
        weights[::13] = np.nan
        tensor, _ = quantize_tensor(weights, bits=3, validation="repair")
        restored = tensor.dequantize(np.float64)
        assert np.isfinite(restored).all()
        clean = np.isfinite(weights)
        # Clean entries reconstruct within quantization error of the input.
        assert np.abs(restored[clean] - weights[clean]).max() < 0.1

    def test_default_policy_is_strict(self):
        with pytest.raises(QuantizationError):
            quantize_tensor(np.full(4, 1.0))

    def test_policy_names_exported(self):
        assert VALIDATION_POLICIES == ("strict", "repair", "skip")

    @pytest.mark.parametrize("policy", VALIDATION_POLICIES)
    def test_healthy_tensor_identical_under_every_policy(self, policy, rng):
        weights = rng.normal(0, 0.05, size=600)
        baseline, _ = quantize_tensor(weights, bits=3)
        tensor, _ = quantize_tensor(weights, bits=3, validation=policy)
        assert tensor.packed_codes == baseline.packed_codes
        np.testing.assert_array_equal(tensor.centroids, baseline.centroids)
