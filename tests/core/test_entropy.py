"""Tests for the index-stream entropy analysis."""

import numpy as np
import pytest

from repro.core.binning import assign_to_centroids, linear_centroids
from repro.core.clustering import gobo_cluster
from repro.core.entropy import code_entropy


class TestCodeEntropy:
    def test_uniform_stream_is_max_entropy(self):
        assignment = np.repeat(np.arange(8), 100)
        report = code_entropy(assignment, bits=3)
        assert report.entropy_bits == pytest.approx(3.0)
        assert report.huffman_headroom_bits == pytest.approx(0.0)
        assert report.uniformity == pytest.approx(1.0)

    def test_constant_stream_is_zero_entropy(self):
        report = code_entropy(np.zeros(100, dtype=int), bits=3)
        assert report.entropy_bits == 0.0
        assert report.huffman_headroom_bits == pytest.approx(3.0)

    def test_counts_and_usage(self):
        report = code_entropy(np.array([0, 0, 1, 3]), bits=2)
        assert report.counts.tolist() == [2, 1, 0, 1]
        assert report.usage.sum() == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            code_entropy(np.array([8]), bits=3)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            code_entropy(np.array([0]), bits=0)

    def test_empty_stream(self):
        report = code_entropy(np.array([], dtype=int), bits=3)
        assert report.entropy_bits == 0.0


class TestGoboCodesNearMaxEntropy:
    """The design property: equal-population codes leave no Huffman headroom."""

    @pytest.fixture(scope="class")
    def gaussian(self):
        return np.random.default_rng(0).normal(0, 0.04, size=100_000)

    def test_gobo_codes_nearly_uniform(self, gaussian):
        # The L1 iteration drifts the outer bins a little off equal
        # population, but the stream stays within ~0.1 bit of maximal.
        result = gobo_cluster(gaussian, bits=3)
        report = code_entropy(result.assignment, bits=3)
        assert report.uniformity > 0.95
        assert report.huffman_headroom_bits < 0.15

    def test_linear_codes_far_from_uniform(self, gaussian):
        """Uniform-interval codes on a Gaussian are heavily skewed —
        Deep Compression's reason for a Huffman stage."""
        centroids = linear_centroids(gaussian, 8)
        assignment = assign_to_centroids(gaussian, centroids)
        report = code_entropy(assignment, bits=3)
        assert report.huffman_headroom_bits > 0.3

    def test_gobo_headroom_below_linear(self, gaussian):
        gobo = code_entropy(gobo_cluster(gaussian, 3).assignment, 3)
        centroids = linear_centroids(gaussian, 8)
        linear = code_entropy(assign_to_centroids(gaussian, centroids), 3)
        assert gobo.huffman_headroom_bits < linear.huffman_headroom_bits
