"""Tests for tensor-level GOBO quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantizer import quantization_error, quantize_tensor
from repro.errors import QuantizationError


@pytest.fixture(scope="module")
def layer_weights():
    rng = np.random.default_rng(0)
    weights = rng.normal(0, 0.04, size=(300, 300))
    idx = rng.choice(weights.size, size=90, replace=False)
    flat = weights.ravel()
    flat[idx] = 0.5 * np.sign(rng.normal(size=90))
    return weights


class TestQuantizeTensor:
    def test_shape_preserved(self, layer_weights):
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        assert quantized.shape == layer_weights.shape
        assert quantized.dequantize().shape == layer_weights.shape

    def test_outliers_stored_exactly(self, layer_weights):
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        restored = quantized.dequantize(dtype=np.float64).ravel()
        original = layer_weights.ravel()
        np.testing.assert_array_equal(
            restored[quantized.outlier_positions], original[quantized.outlier_positions]
        )

    def test_g_weights_map_to_centroids(self, layer_weights):
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        restored = quantized.dequantize(dtype=np.float64).ravel()
        mask = np.zeros(restored.size, dtype=bool)
        mask[quantized.outlier_positions] = True
        gaussian_restored = restored[~mask]
        assert set(np.unique(gaussian_restored)) <= set(quantized.centroids)

    def test_centroid_table_size(self, layer_weights):
        for bits in (2, 3, 4):
            quantized, _ = quantize_tensor(layer_weights, bits=bits)
            assert quantized.centroids.size == 1 << bits

    def test_counts_partition(self, layer_weights):
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        assert quantized.gaussian_count + quantized.outlier_count == layer_weights.size
        assert 0 < quantized.outlier_fraction < 0.01

    def test_reconstruction_error_bounded_by_bin_spread(self, layer_weights):
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        errors = quantization_error(layer_weights, quantized)
        assert errors["mean_abs"] < 0.01
        assert errors["max_abs"] < 0.08

    def test_more_bits_less_error(self, layer_weights):
        previous = np.inf
        for bits in (2, 3, 4, 5):
            quantized, _ = quantize_tensor(layer_weights, bits=bits)
            error = quantization_error(layer_weights, quantized)["mean_abs"]
            assert error < previous
            previous = error

    def test_compression_ratio_near_potential(self, layer_weights):
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        # 32/3 = 10.67 potential; overheads cost a little.
        assert 9.0 < quantized.compression_ratio() < 10.67

    def test_methods_share_outliers(self, layer_weights):
        gobo, _ = quantize_tensor(layer_weights, bits=3, method="gobo")
        kmeans, _ = quantize_tensor(layer_weights, bits=3, method="kmeans")
        linear, _ = quantize_tensor(layer_weights, bits=3, method="linear")
        np.testing.assert_array_equal(gobo.outlier_positions, kmeans.outlier_positions)
        np.testing.assert_array_equal(gobo.outlier_positions, linear.outlier_positions)

    def test_gobo_beats_linear_on_gaussian_l1(self, layer_weights):
        gobo, _ = quantize_tensor(layer_weights, bits=3, method="gobo")
        linear, _ = quantize_tensor(layer_weights, bits=3, method="linear")
        gobo_err = quantization_error(layer_weights, gobo)["mean_abs"]
        linear_err = quantization_error(layer_weights, linear)["mean_abs"]
        assert gobo_err < 0.8 * linear_err

    def test_unknown_method_rejected(self, layer_weights):
        with pytest.raises(QuantizationError):
            quantize_tensor(layer_weights, bits=3, method="magic")

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_tensor(np.array([]), bits=3)

    def test_1d_tensor(self, rng):
        weights = rng.normal(size=1000)
        quantized, _ = quantize_tensor(weights, bits=3)
        assert quantized.dequantize().shape == (1000,)

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_properties(self, bits, seed):
        weights = np.random.default_rng(seed).normal(0, 0.05, size=600)
        quantized, _ = quantize_tensor(weights, bits=bits)
        restored = quantized.dequantize(dtype=np.float64)
        # Reconstruction never widens the value range.
        assert restored.min() >= weights.min() - 1e-12
        assert restored.max() <= weights.max() + 1e-12
        # Codes round-trip through the packed representation.
        assert quantized.codes().size == quantized.gaussian_count


class TestDequantizeDtype:
    def test_default_is_float32(self, layer_weights):
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        assert quantized.dequantize().dtype == np.float32

    def test_dtype_parameter_honored(self, layer_weights):
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        assert quantized.dequantize(dtype=np.float64).dtype == np.float64
        assert quantized.dequantize(dtype=np.float16).dtype == np.float16

    def test_float32_is_cast_of_float64(self, layer_weights):
        """The decode computes in float64 and casts once, so the float32
        output is exactly the rounded float64 reconstruction."""
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        exact = quantized.dequantize(dtype=np.float64)
        np.testing.assert_array_equal(
            quantized.dequantize(), exact.astype(np.float32)
        )


class TestQuantizationError:
    def test_zero_for_lossless(self, rng):
        # 4 distinct values, 2-bit codes: exactly representable.
        weights = rng.choice([-0.2, -0.1, 0.1, 0.2], size=1000)
        quantized, _ = quantize_tensor(weights, bits=2)
        errors = quantization_error(weights, quantized)
        assert errors["max_abs"] == pytest.approx(0.0, abs=1e-12)

    def test_relative_error_field(self, layer_weights):
        quantized, _ = quantize_tensor(layer_weights, bits=3)
        errors = quantization_error(layer_weights, quantized)
        expected = errors["mean_abs"] / np.abs(layer_weights).mean()
        assert errors["relative_mean_abs"] == pytest.approx(expected)
