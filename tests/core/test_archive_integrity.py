"""Tests for durable storage: atomic writes, checksums, verify_archive."""

import numpy as np
import pytest

from repro.core.model_quantizer import quantize_model
from repro.core.serialization import (
    CHECKSUM_KEY,
    FORMAT_VERSION,
    load_quantized_model,
    payload_checksum,
    save_quantized_model,
    verify_archive,
)
from repro.errors import (
    ChecksumMismatchError,
    SerializationError,
    TruncatedArchiveError,
)
from repro.models.heads import BertForSequenceClassification
from repro.testing.faults import corrupt_bytes, truncate_file
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def quantized():
    model = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)
    return quantize_model(model, weight_bits=3, embedding_bits=4)


@pytest.fixture
def archive(quantized, tmp_path):
    path = tmp_path / "model.npz"
    save_quantized_model(quantized, path)
    return path


class TestAtomicWrite:
    def test_no_temporary_files_left(self, quantized, tmp_path):
        save_quantized_model(quantized, tmp_path / "model.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_overwrite_is_all_or_nothing(self, quantized, archive, tmp_path):
        """A failed re-save leaves the previous archive fully intact and
        cleans up its temporary file."""
        before = archive.read_bytes()

        class Explosive:
            def __array__(self, *args, **kwargs):
                raise RuntimeError("boom mid-write")

        from repro.utils.atomic import atomic_savez

        with pytest.raises(RuntimeError, match="boom"):
            atomic_savez(archive, {"x": Explosive()})
        assert archive.read_bytes() == before
        assert verify_archive(archive).ok
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_reported_size_matches_file(self, quantized, tmp_path):
        size = save_quantized_model(quantized, tmp_path / "model.npz")
        assert size == (tmp_path / "model.npz").stat().st_size


class TestChecksum:
    def test_version_3_written_with_checksum(self, archive):
        with np.load(archive) as arrays:
            assert int(arrays["index::version"][0]) == FORMAT_VERSION == 3
            assert CHECKSUM_KEY in arrays.files
            assert arrays[CHECKSUM_KEY].size == 32  # SHA-256

    def test_checksum_is_deterministic(self, quantized, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        save_quantized_model(quantized, a)
        save_quantized_model(quantized, b)
        with np.load(a) as one, np.load(b) as two:
            np.testing.assert_array_equal(one[CHECKSUM_KEY], two[CHECKSUM_KEY])

    def test_payload_checksum_sensitive_to_renames(self, rng):
        data = rng.normal(size=8)
        assert payload_checksum({"a": data}) != payload_checksum({"b": data})

    def test_payload_checksum_sensitive_to_dtype(self):
        data = np.arange(4, dtype=np.float64)
        assert payload_checksum({"a": data}) != payload_checksum(
            {"a": data.astype(np.float32)}
        )


class TestVerifyArchive:
    def test_intact(self, archive):
        check = verify_archive(archive)
        assert check.ok and check.status == "ok" and check.version == 3
        assert "checksum verified" in check.detail

    def test_missing(self, tmp_path):
        check = verify_archive(tmp_path / "absent.npz")
        assert not check.ok and check.status == "missing"

    def test_truncated(self, archive):
        truncate_file(archive, 0.6)
        check = verify_archive(archive)
        assert not check.ok and check.status == "truncated"

    def test_empty_file_is_truncated(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        assert verify_archive(path).status == "truncated"

    def test_garbage_is_truncated(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip archive")
        assert verify_archive(path).status == "truncated"

    def test_bit_flip_in_data_is_checksum_mismatch(self, archive):
        corrupt_bytes(archive, archive.stat().st_size // 2)
        check = verify_archive(archive)
        assert check.status == "checksum-mismatch"

    def test_future_version_unknown(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(path, **{"index::version": np.array([99], dtype=np.int64)})
        check = verify_archive(path)
        assert check.status == "version-unknown" and check.version == 99

    def test_legacy_v2_ok_unchecksummed(self, tmp_path):
        path = tmp_path / "v2.npz"
        np.savez(path, **{
            "index::version": np.array([2], dtype=np.int64),
            "index::fc": np.array([], dtype=np.str_),
            "index::embeddings": np.array([], dtype=np.str_),
        })
        check = verify_archive(path)
        assert check.ok and check.status == "ok-unchecksummed" and check.version == 2


class TestLoadRejectsCorruption:
    def test_truncated_raises_typed_error(self, archive):
        truncate_file(archive, 0.5)
        with pytest.raises(TruncatedArchiveError):
            load_quantized_model(archive)

    def test_bit_flip_raises_checksum_error(self, archive):
        corrupt_bytes(archive, archive.stat().st_size // 2)
        with pytest.raises(ChecksumMismatchError):
            load_quantized_model(archive)

    def test_both_are_serialization_errors(self, archive):
        """Existing except-SerializationError callers keep working."""
        truncate_file(archive, 10)
        with pytest.raises(SerializationError):
            load_quantized_model(archive)

    def test_v3_without_checksum_rejected(self, tmp_path):
        path = tmp_path / "bad3.npz"
        np.savez(path, **{
            "index::version": np.array([3], dtype=np.int64),
            "index::fc": np.array([], dtype=np.str_),
            "index::embeddings": np.array([], dtype=np.str_),
        })
        with pytest.raises(ChecksumMismatchError, match="no checksum"):
            load_quantized_model(path)

    def test_legacy_v2_loads_without_checksum(self, quantized, tmp_path):
        """Backward compatibility: a v2 archive (same layout, no checksum)
        still loads its tensors."""
        path = tmp_path / "model.npz"
        save_quantized_model(quantized, path)
        with np.load(path) as arrays:
            payload = {k: arrays[k] for k in arrays.files if k != CHECKSUM_KEY}
        payload["index::version"] = np.array([2], dtype=np.int64)
        legacy = tmp_path / "legacy.npz"
        np.savez(legacy, **payload)
        loaded = load_quantized_model(legacy)
        assert set(loaded.quantized) == set(quantized.quantized)
        name = next(iter(quantized.quantized))
        np.testing.assert_array_equal(
            loaded.quantized[name].codes(), quantized.quantized[name].codes()
        )
