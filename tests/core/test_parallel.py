"""Tests for the layer-parallel quantization engine."""

import os

import numpy as np
import pytest

from repro.core.model_quantizer import quantize_model, quantize_state_dict, select_parameters
from repro.core.parallel import (
    LayerJob,
    QuantizationReport,
    WORKERS_ENV,
    default_workers,
    quantize_layers,
    resolve_workers,
)
from repro.errors import QuantizationError
from repro.models.heads import BertForSequenceClassification
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def model():
    return BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)


@pytest.fixture(scope="module")
def state_and_selection(model):
    return model.state_dict(), select_parameters(model)


class TestWorkerResolution:
    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_one_is_serial(self):
        assert resolve_workers(1) == 1

    def test_zero_means_all_cores(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(QuantizationError):
            resolve_workers(-1)

    def test_non_int_rejected(self):
        with pytest.raises(QuantizationError):
            resolve_workers(2.5)

    def test_none_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_none_reads_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5
        assert default_workers() == 5

    def test_bad_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(QuantizationError):
            default_workers()


class TestQuantizeLayers:
    def test_parallel_bit_identical_to_serial(self, state_and_selection):
        state, selection = state_and_selection
        jobs = [LayerJob(name, 3) for name in selection.fc_names]
        serial, serial_iters, _ = quantize_layers(state, jobs, workers=1)
        parallel, parallel_iters, _ = quantize_layers(state, jobs, workers=3)
        assert serial_iters == parallel_iters
        assert list(serial) == list(parallel)  # job order preserved
        for name in serial:
            assert serial[name].packed_codes == parallel[name].packed_codes
            np.testing.assert_array_equal(serial[name].centroids, parallel[name].centroids)
            np.testing.assert_array_equal(
                serial[name].outlier_values, parallel[name].outlier_values
            )

    def test_missing_tensor_rejected(self, state_and_selection):
        state, _ = state_and_selection
        with pytest.raises(QuantizationError, match="missing"):
            quantize_layers(state, [LayerJob("absent", 3)])

    def test_empty_jobs(self, state_and_selection):
        state, _ = state_and_selection
        quantized, iterations, report = quantize_layers(state, [], workers=4)
        assert quantized == {} and iterations == {}
        assert report.layers == []
        assert report.compression_ratio == float("inf")

    def test_report_records_every_layer(self, state_and_selection):
        state, selection = state_and_selection
        jobs = [LayerJob(name, 3) for name in selection.fc_names[:4]]
        quantized, iterations, report = quantize_layers(state, jobs, workers=2)
        assert [r.name for r in report.layers] == [job.name for job in jobs]
        for record in report.layers:
            tensor = quantized[record.name]
            assert record.seconds > 0
            assert record.bits == 3
            assert record.iterations == iterations[record.name]
            assert record.outlier_fraction == tensor.outlier_fraction
            assert record.compressed_bytes == tensor.storage().compressed_bytes
            assert record.original_bytes == 4 * tensor.total_count
        assert report.wall_seconds > 0
        assert report.layer_seconds == pytest.approx(
            sum(r.seconds for r in report.layers)
        )


class TestQuantizedModelIntegration:
    def test_state_dicts_bit_identical_across_workers(self, model):
        serial = quantize_model(model, weight_bits=3, embedding_bits=4, workers=1)
        parallel = quantize_model(model, weight_bits=3, embedding_bits=4, workers=4)
        serial_state, parallel_state = serial.state_dict(), parallel.state_dict()
        assert set(serial_state) == set(parallel_state)
        for name in serial_state:
            np.testing.assert_array_equal(serial_state[name], parallel_state[name])

    def test_report_attached(self, model):
        quantized = quantize_model(model, weight_bits=3, embedding_bits=4, workers=2)
        assert isinstance(quantized.report, QuantizationReport)
        assert quantized.report.workers == 2
        assert set(r.name for r in quantized.report.layers) == set(quantized.quantized)

    def test_report_respects_policy_bits(self, model):
        quantized = quantize_model(model, weight_bits=2, embedding_bits=4, workers=1)
        by_name = {r.name: r for r in quantized.report.layers}
        for name in quantized.fc_names:
            assert by_name[name].bits == 2
        for name in quantized.embedding_names:
            assert by_name[name].bits == 4

    def test_workers_none_uses_environment(self, model, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        quantized = quantize_model(model, weight_bits=3, embedding_bits=None, workers=None)
        assert quantized.report.workers == 2

    def test_state_dict_ignores_report(self, state_and_selection):
        state, selection = state_and_selection
        quantized = quantize_state_dict(
            state, fc_names=selection.fc_names[:2], embedding_names=(), workers=2
        )
        assert set(quantized.state_dict()) == set(state)

    def test_render_mentions_layers_and_totals(self, model):
        quantized = quantize_model(model, weight_bits=3, embedding_bits=None, workers=1)
        text = quantized.report.render()
        assert "Per-layer quantization report" in text
        for name in quantized.fc_names:
            assert name in text
        assert "workers=1" in text and "wall=" in text
