"""Tests for storage accounting and compression ratios."""

import pytest

from repro.core.formats import (
    compression_curve,
    potential_compression_ratio,
    storage_report,
)


class TestPotentialRatio:
    """The paper's 'Potential Comp. Ratio' column of Table IV."""

    @pytest.mark.parametrize(
        "bits,expected",
        [(2, 16.0), (3, 32 / 3), (4, 8.0), (5, 6.4), (6, 32 / 6), (7, 32 / 7)],
    )
    def test_matches_paper(self, bits, expected):
        assert potential_compression_ratio(bits) == pytest.approx(expected)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            potential_compression_ratio(0)


class TestStorageReport:
    def test_byte_breakdown(self):
        report = storage_report(total_weights=1000, outliers=10, bits=3)
        assert report.gaussian_weights == 990
        assert report.code_bytes == (990 * 3 + 7) // 8
        assert report.outlier_value_bytes == 40
        assert report.outlier_position_bytes == 40
        assert report.table_bytes == 8 * 4

    def test_compression_ratio_definition(self):
        report = storage_report(1000, 10, 3)
        assert report.compression_ratio == pytest.approx(
            4000 / report.compressed_bytes
        )

    def test_large_layer_approaches_potential(self):
        report = storage_report(10_000_000, 10_000, 3)  # 0.1% outliers
        assert report.compression_ratio == pytest.approx(10.4, abs=0.2)
        assert report.effective_bits_per_weight == pytest.approx(3.07, abs=0.05)

    def test_no_outliers_no_overhead(self):
        report = storage_report(1 << 20, 0, 4)
        assert report.compression_ratio == pytest.approx(8.0, rel=0.001)

    def test_zero_weights(self):
        report = storage_report(0, 0, 3)
        assert report.compressed_bytes == 32  # just the table
        assert report.effective_bits_per_weight == 0.0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            storage_report(10, 11, 3)
        with pytest.raises(ValueError):
            storage_report(-1, 0, 3)

    def test_invalid_bits_rejected(self):
        # Widths 9-16 are legal (group-table encodings pack wider global
        # code spaces); past the bitpack limit is not.
        with pytest.raises(ValueError):
            storage_report(10, 0, 17)
        with pytest.raises(ValueError):
            storage_report(10, 0, 0)

    def test_wide_group_table_widths_accepted(self):
        report = storage_report(1024, 0, 10)
        assert report.code_bytes == 1024 * 10 // 8


class TestCompressionCurve:
    def test_ratio_grows_with_group_size(self):
        curve = compression_curve(3, [4, 64, 1024, 1 << 20])
        ratios = [ratio for _, ratio in curve]
        assert ratios == sorted(ratios)

    def test_asymptote_is_potential_ratio(self):
        (_, ratio), = compression_curve(3, [1 << 26])
        assert ratio == pytest.approx(32 / 3, rel=0.001)

    def test_small_groups_dominated_by_table(self):
        (_, ratio), = compression_curve(6, [4])
        assert ratio < 1.0  # 64-entry FP32 table for 4 weights

    def test_outlier_fraction_lowers_ratio(self):
        (_, clean), = compression_curve(3, [1 << 20], outlier_fraction=0.0)
        (_, dirty), = compression_curve(3, [1 << 20], outlier_fraction=0.01)
        assert dirty < clean
