"""Tests for centroid initialization and assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binning import (
    assign_to_centroids,
    equal_population_centroids,
    linear_centroids,
)
from repro.errors import QuantizationError


class TestEqualPopulationCentroids:
    def test_count_and_order(self, rng):
        centroids = equal_population_centroids(rng.normal(size=10000), 8)
        assert centroids.size == 8
        assert np.all(np.diff(centroids) >= 0)

    def test_equal_population(self, rng):
        values = rng.normal(size=8000)
        centroids = equal_population_centroids(values, 8)
        assignment = assign_to_centroids(values, centroids)
        counts = np.bincount(assignment, minlength=8)
        # Populations are approximately equal by construction.
        assert counts.min() > 0.7 * counts.max()

    def test_dense_regions_get_more_centroids(self, rng):
        values = rng.normal(0, 1.0, size=10000)
        centroids = equal_population_centroids(values, 8)
        # More than half the centroids within 1 sigma of the mean.
        assert (np.abs(centroids) < 1.0).sum() >= 5

    def test_fewer_distinct_values_than_bins(self):
        centroids = equal_population_centroids(np.array([1.0, 2.0]), 4)
        assert centroids.size == 4
        assert set(np.round(centroids, 6)) <= {1.0, 1.5, 2.0}

    def test_single_value(self):
        centroids = equal_population_centroids(np.full(10, 3.0), 4)
        np.testing.assert_array_equal(centroids, np.full(4, 3.0))

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            equal_population_centroids(np.array([]), 4)

    def test_invalid_bins_rejected(self):
        with pytest.raises(QuantizationError):
            equal_population_centroids(np.ones(4), 0)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10000))
    @settings(max_examples=30, deadline=None)
    def test_centroids_within_value_range(self, bits, seed):
        values = np.random.default_rng(seed).normal(size=200)
        centroids = equal_population_centroids(values, 1 << bits)
        assert centroids.min() >= values.min() - 1e-12
        assert centroids.max() <= values.max() + 1e-12


class TestLinearCentroids:
    def test_uniform_spacing(self, rng):
        values = rng.uniform(-1, 1, size=1000)
        centroids = linear_centroids(values, 4)
        gaps = np.diff(centroids)
        np.testing.assert_allclose(gaps, gaps[0])

    def test_bin_centers_cover_range(self):
        centroids = linear_centroids(np.array([0.0, 8.0]), 4)
        np.testing.assert_allclose(centroids, [1.0, 3.0, 5.0, 7.0])

    def test_constant_values(self):
        np.testing.assert_array_equal(linear_centroids(np.full(5, 2.0), 4), np.full(4, 2.0))

    def test_ignores_distribution(self, rng):
        skewed = np.concatenate([rng.normal(0, 0.01, 10000), [1.0]])
        centroids = linear_centroids(skewed, 8)
        # Linear wastes most centroids on the empty range toward 1.0.
        assert (centroids > 0.1).sum() >= 6


class TestAssignToCentroids:
    def test_nearest_assignment(self):
        centroids = np.array([0.0, 1.0, 2.0])
        values = np.array([-5.0, 0.4, 0.6, 1.6, 99.0])
        np.testing.assert_array_equal(
            assign_to_centroids(values, centroids), [0, 0, 1, 2, 2]
        )

    def test_matches_bruteforce(self, rng):
        values = rng.normal(size=500)
        centroids = np.sort(rng.normal(size=8))
        fast = assign_to_centroids(values, centroids)
        brute = np.argmin(np.abs(values[:, None] - centroids[None, :]), axis=1)
        np.testing.assert_array_equal(fast, brute)

    def test_single_centroid(self, rng):
        assignment = assign_to_centroids(rng.normal(size=10), np.array([0.5]))
        np.testing.assert_array_equal(assignment, np.zeros(10))

    def test_empty_centroids_rejected(self, rng):
        with pytest.raises(QuantizationError):
            assign_to_centroids(rng.normal(size=4), np.array([]))

    @given(st.integers(min_value=0, max_value=10000))
    @settings(max_examples=30, deadline=None)
    def test_l1_and_l2_nearest_coincide_in_1d(self, seed):
        """In 1-D the nearest centroid under L1 and L2 is identical."""
        gen = np.random.default_rng(seed)
        values = gen.normal(size=100)
        centroids = np.sort(gen.normal(size=4))
        assignment = assign_to_centroids(values, centroids)
        l2 = np.argmin((values[:, None] - centroids[None, :]) ** 2, axis=1)
        np.testing.assert_array_equal(assignment, l2)
