"""Tests for the on-disk GOBO archive format."""

import numpy as np
import pytest

from repro.core.model_quantizer import quantize_model
from repro.core.serialization import load_quantized_model, save_quantized_model
from repro.errors import SerializationError
from repro.models.heads import BertForSequenceClassification
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def quantized():
    model = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)
    return model, quantize_model(model, weight_bits=3, embedding_bits=4)


class TestRoundTrip:
    def test_state_dicts_identical(self, quantized, tmp_path):
        _, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        loaded = load_quantized_model(path)
        original_state = original.state_dict()
        loaded_state = loaded.state_dict()
        assert set(original_state) == set(loaded_state)
        for name in original_state:
            # FP32 storage precision: exact at float32 resolution.
            np.testing.assert_allclose(
                loaded_state[name], original_state[name], rtol=1e-6, atol=1e-7
            )

    def test_quantized_fields_preserved(self, quantized, tmp_path):
        _, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        loaded = load_quantized_model(path)
        assert set(loaded.quantized) == set(original.quantized)
        name = next(iter(original.quantized))
        assert loaded.quantized[name].bits == original.quantized[name].bits
        np.testing.assert_array_equal(
            loaded.quantized[name].codes(), original.quantized[name].codes()
        )
        assert loaded.fc_names == original.fc_names
        assert loaded.embedding_names == original.embedding_names

    def test_loaded_model_applies(self, quantized, tmp_path):
        model, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        probe = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=1)
        load_quantized_model(path).apply_to(probe)

    def test_file_realizes_compression(self, tmp_path):
        """At a realistic (non-micro) size, the archive on disk is several
        times smaller than float32 storage of the whole model."""
        from repro.models import TINY_BERT_BASE

        model = BertForSequenceClassification(TINY_BERT_BASE, num_labels=3, rng=0)
        quantized = quantize_model(model, weight_bits=3, embedding_bits=3)
        size = save_quantized_model(quantized, tmp_path / "model.npz")
        fp32_bytes = 4 * model.num_parameters()
        assert size < fp32_bytes / 4


class TestPathNormalization:
    def test_suffixless_path_round_trips(self, quantized, tmp_path):
        """np.savez appends .npz when absent; save must report the real file."""
        _, original = quantized
        target = tmp_path / "model"  # no suffix
        size = save_quantized_model(original, target)
        written = tmp_path / "model.npz"
        assert written.exists()
        assert size == written.stat().st_size
        loaded = load_quantized_model(written)
        assert set(loaded.quantized) == set(original.quantized)

    def test_other_suffix_gets_npz_appended(self, quantized, tmp_path):
        _, original = quantized
        save_quantized_model(original, tmp_path / "model.v2")
        assert (tmp_path / "model.v2.npz").exists()

    def test_npz_suffix_unchanged(self, quantized, tmp_path):
        _, original = quantized
        size = save_quantized_model(original, tmp_path / "model.npz")
        assert size == (tmp_path / "model.npz").stat().st_size


class TestPickleFreeFormat:
    def test_loads_without_allow_pickle(self, quantized, tmp_path):
        _, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        with np.load(path, allow_pickle=False) as archive:
            for key in archive.files:
                assert archive[key].dtype != object, key

    def test_index_arrays_are_unicode(self, quantized, tmp_path):
        _, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        with np.load(path) as archive:
            assert archive["index::fc"].dtype.kind == "U"
            assert archive["index::embeddings"].dtype.kind == "U"

    def test_empty_index_round_trips(self, tmp_path):
        """Embedding-only model: the fc index is an empty (non-object) array."""
        model = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)
        original = quantize_model(
            model, weight_bits=3, embedding_bits=3, quantize_weights=False
        )
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        loaded = load_quantized_model(path)
        assert loaded.fc_names == ()
        assert loaded.embedding_names == original.embedding_names


class TestIterationsPreserved:
    def test_iterations_survive_round_trip(self, quantized, tmp_path):
        _, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        loaded = load_quantized_model(path)
        assert loaded.iterations == original.iterations
        assert set(loaded.iterations) == set(loaded.quantized)

    def test_version_tag_written(self, quantized, tmp_path):
        from repro.core.serialization import FORMAT_VERSION

        _, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        with np.load(path) as archive:
            assert int(archive["index::version"][0]) == FORMAT_VERSION


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_quantized_model(tmp_path / "absent.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(SerializationError):
            load_quantized_model(path)

    def test_unsupported_future_version(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(path, **{"index::version": np.array([99], dtype=np.int64)})
        with pytest.raises(SerializationError, match="version"):
            load_quantized_model(path)
