"""Tests for the on-disk GOBO archive format."""

import numpy as np
import pytest

from repro.core.model_quantizer import quantize_model
from repro.core.serialization import load_quantized_model, save_quantized_model
from repro.errors import SerializationError
from repro.models.heads import BertForSequenceClassification
from tests.conftest import MICRO_CONFIG


@pytest.fixture(scope="module")
def quantized():
    model = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)
    return model, quantize_model(model, weight_bits=3, embedding_bits=4)


class TestRoundTrip:
    def test_state_dicts_identical(self, quantized, tmp_path):
        _, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        loaded = load_quantized_model(path)
        original_state = original.state_dict()
        loaded_state = loaded.state_dict()
        assert set(original_state) == set(loaded_state)
        for name in original_state:
            # FP32 storage precision: exact at float32 resolution.
            np.testing.assert_allclose(
                loaded_state[name], original_state[name], rtol=1e-6, atol=1e-7
            )

    def test_quantized_fields_preserved(self, quantized, tmp_path):
        _, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        loaded = load_quantized_model(path)
        assert set(loaded.quantized) == set(original.quantized)
        name = next(iter(original.quantized))
        assert loaded.quantized[name].bits == original.quantized[name].bits
        np.testing.assert_array_equal(
            loaded.quantized[name].codes(), original.quantized[name].codes()
        )
        assert loaded.fc_names == original.fc_names
        assert loaded.embedding_names == original.embedding_names

    def test_loaded_model_applies(self, quantized, tmp_path):
        model, original = quantized
        path = tmp_path / "model.npz"
        save_quantized_model(original, path)
        probe = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=1)
        load_quantized_model(path).apply_to(probe)

    def test_file_realizes_compression(self, tmp_path):
        """At a realistic (non-micro) size, the archive on disk is several
        times smaller than float32 storage of the whole model."""
        from repro.models import TINY_BERT_BASE

        model = BertForSequenceClassification(TINY_BERT_BASE, num_labels=3, rng=0)
        quantized = quantize_model(model, weight_bits=3, embedding_bits=3)
        size = save_quantized_model(quantized, tmp_path / "model.npz")
        fp32_bytes = 4 * model.num_parameters()
        assert size < fp32_bytes / 4


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_quantized_model(tmp_path / "absent.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(SerializationError):
            load_quantized_model(path)
