"""Zero-copy lazy loading: mmap views, on-demand decode, bytes-touched.

Covers :class:`~repro.core.npzmap.MmapNpzReader` (member views over one
shared map, eager fallback for compressed members) and
``load_quantized_model(..., lazy=True)`` — including the satellite
requirement that lazy and eager loads are equivalent over the golden
v1/v2/v3 fixtures, and that bytes-touched is observable via obs counters.
"""

import gc
import os
import struct
import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.model_quantizer import quantize_model
from repro.core.npzmap import MmapNpzReader
from repro.core.serialization import (
    LazyQuantizedTensors,
    load_quantized_model,
    save_quantized_model,
)
from repro.errors import (
    ChecksumMismatchError,
    SerializationError,
    TruncatedArchiveError,
)
from repro.kernels import LookupKernel, dequantize_matmul
from repro.models import BertModel, attach_quantized_linears
from repro.testing.faults import corrupt_bytes
from repro.testing.golden import GOLDEN_VERSIONS, golden_path, write_golden
from tests.conftest import MICRO_CONFIG

DATA_DIR = Path(__file__).resolve().parents[1] / "data"


def member_data_offset(path: Path, member: str) -> tuple[int, int]:
    """(data offset, data size) of a stored zip member, from its local header."""
    with zipfile.ZipFile(path) as zf:
        info = zf.getinfo(member)
    raw = path.read_bytes()
    name_len, extra_len = struct.unpack_from("<HH", raw, info.header_offset + 26)
    return info.header_offset + 30 + name_len + extra_len, info.file_size


def write_npy_member(path: Path, name: str, npy_bytes: bytes) -> None:
    """A one-member ZIP_STORED archive holding raw ``npy_bytes``."""
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as zf:
        zf.writestr(f"{name}.npy", npy_bytes)


def npy_v1_bytes(array: np.ndarray, pad: int = 0, version: bytes = b"\x01\x00") -> bytes:
    """Hand-rolled npy v1 encoding with ``pad`` extra header padding bytes."""
    header = (
        f"{{'descr': '{array.dtype.str}', 'fortran_order': False, "
        f"'shape': {array.shape!r}, }}"
    )
    header = header + " " * pad
    header = header + " " * (63 - (10 + len(header)) % 64) + "\n"
    return (
        b"\x93NUMPY" + version + struct.pack("<H", len(header))
        + header.encode("latin1") + array.tobytes()
    )


@pytest.fixture(scope="module")
def saved_archive(tmp_path_factory):
    model = BertModel(MICRO_CONFIG, rng=20260807).eval()
    qmodel = quantize_model(model, weight_bits=3, embedding_bits=4)
    path = tmp_path_factory.mktemp("lazy") / "model.npz"
    save_quantized_model(qmodel, path)
    return qmodel, path


class TestMmapNpzReader:
    def test_members_match_np_load(self, saved_archive):
        _, path = saved_archive
        with np.load(path) as expected:
            reader = MmapNpzReader(path)
            assert sorted(reader.keys()) == sorted(expected.files)
            for key in expected.files:
                np.testing.assert_array_equal(reader.read(key), expected[key])

    def test_stored_members_are_views_not_copies(self, saved_archive):
        """ZIP_STORED members come back as read-only views over the map."""
        _, path = saved_archive
        reader = MmapNpzReader(path)
        key = next(k for k in reader.keys() if k.endswith("::codes"))
        array = reader.read(key)
        assert array.flags.writeable is False
        assert array.base is not None  # borrowed buffer, not owned memory

    def test_compressed_archive_falls_back_to_eager(self, tmp_path, rng):
        path = tmp_path / "compressed.npz"
        payload = {"a": rng.normal(size=(7, 5)), "b": np.arange(12, dtype=np.int64)}
        np.savez_compressed(path, **payload)
        reader = MmapNpzReader(path)
        for key, value in payload.items():
            np.testing.assert_array_equal(reader.read(key), value)

    def test_missing_member_raises(self, saved_archive):
        _, path = saved_archive
        with pytest.raises(KeyError):
            MmapNpzReader(path).read("no::such::member")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            MmapNpzReader(tmp_path / "absent.npz")

    def test_not_a_zip_raises(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(TruncatedArchiveError):
            MmapNpzReader(path)

    def test_bytes_mapped_counter(self, saved_archive):
        _, path = saved_archive
        reader = MmapNpzReader(path)
        key = next(k for k in reader.keys() if k.endswith("::codes"))
        with obs.scope() as trace:
            array = reader.read(key)
        mapped = [e for e in trace.events if e["name"] == "npzmap.bytes_mapped"]
        assert len(mapped) == 1
        assert mapped[0]["value"] == array.nbytes


class TestFdLifecycle:
    """Satellite regression: close() must release the file descriptor even
    while live views pin the map — a hot-swapping server must not leak one
    fd per reload."""

    @staticmethod
    def count_fds() -> int:
        return len(os.listdir("/proc/self/fd"))

    def test_file_closed_even_with_live_views(self, saved_archive):
        _, path = saved_archive
        reader = MmapNpzReader(path)
        key = next(k for k in reader.keys() if k.endswith("::codes"))
        view = reader.read(key)
        reader.close()
        assert reader._file.closed
        # The map's dup'd descriptor keeps the view valid after close.
        np.testing.assert_array_equal(view, view.copy())

    @pytest.mark.skipif(
        not os.path.isdir("/proc/self/fd"), reason="needs /proc (Linux)"
    )
    def test_no_fd_growth_across_model_swaps(self, saved_archive):
        _, path = saved_archive
        gc.collect()
        baseline = self.count_fds()
        for _ in range(8):
            reader = MmapNpzReader(path)
            key = next(k for k in reader.keys() if k.endswith("::codes"))
            view = reader.read(key)
            # Close while the view is alive: the old buggy path returned
            # early on BufferError and leaked reader._file forever.
            reader.close()
            del view, reader
            gc.collect()
        assert self.count_fds() <= baseline


class TestLazyVerify:
    """Satellite: verify="lazy" closes the documented lazy-load integrity
    gap with per-member CRC checks on first access."""

    @pytest.fixture()
    def corrupt_archive(self, tmp_path):
        """A golden v3 archive with one flipped byte inside the codes member."""
        path = write_golden(tmp_path, 3)
        offset, size = member_data_offset(path, "gobo::w::codes.npy")
        corrupt_bytes(path, offset + size - 1)  # last data byte: the codes
        return path

    def test_corrupt_member_raises_on_first_access(self, corrupt_archive):
        model = load_quantized_model(corrupt_archive, lazy=True, verify="lazy")
        with pytest.raises(ChecksumMismatchError, match="CRC"):
            model.quantized["w"]

    def test_lazy_default_catches_corruption_on_access(self, corrupt_archive):
        # The historical gap is closed: a bare lazy load defaults to
        # per-member CRC verification and refuses the flipped byte.
        model = load_quantized_model(corrupt_archive, lazy=True)
        with pytest.raises(ChecksumMismatchError, match="CRC"):
            model.quantized["w"]

    def test_corrupt_member_silently_loads_with_verify_none(self, corrupt_archive):
        # The opt-out keeps the old behavior reachable: no verification
        # means the flipped byte decodes into wrong codes without error.
        model = load_quantized_model(corrupt_archive, lazy=True, verify="none")
        tensor = model.quantized["w"]  # no error raised
        assert tensor.shape == (4, 5)

    def test_eager_load_always_catches_it(self, corrupt_archive):
        with pytest.raises(ChecksumMismatchError):
            load_quantized_model(corrupt_archive)

    def test_intact_members_still_load_lazily(self, corrupt_archive):
        """Only the corrupt member fails; fp32/meta members verify clean."""
        model = load_quantized_model(corrupt_archive, lazy=True, verify="lazy")
        np.testing.assert_allclose(model.fp32["bias"], [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_verify_full_on_lazy_load(self, corrupt_archive, tmp_path):
        with pytest.raises(ChecksumMismatchError):
            load_quantized_model(corrupt_archive, lazy=True, verify="full")
        clean = write_golden(tmp_path / "clean", 3)
        model = load_quantized_model(clean, lazy=True, verify="full")
        assert model.quantized["w"].shape == (4, 5)

    def test_clean_archive_verifies_and_counts(self, tmp_path):
        path = write_golden(tmp_path, 3)
        model = load_quantized_model(path, lazy=True, verify="lazy")
        with obs.scope() as trace:
            model.quantized["w"]
            model.quantized["w"]  # cached: no second verification
        verified = [
            e for e in trace.events if e["name"] == "npzmap.members_verified"
        ]
        assert len(verified) == 4  # codes, centroids, positions, outliers

    def test_invalid_verify_value_rejected(self, tmp_path):
        path = write_golden(tmp_path, 3)
        with pytest.raises(ValueError, match="verify"):
            load_quantized_model(path, verify="paranoid")


class TestNpyHeaderParsing:
    """Satellite: header-length-exact parsing and clear version errors."""

    def test_long_header_member(self, tmp_path, rng):
        """A header longer than any fixed prefix must still parse (the old
        4096-byte slice failed inside numpy on such members)."""
        array = np.arange(24, dtype=np.int64)
        path = tmp_path / "long_header.npz"
        write_npy_member(path, "big", npy_v1_bytes(array, pad=8000))
        reader = MmapNpzReader(path)
        np.testing.assert_array_equal(reader.read("big"), array)

    def test_unsupported_npy_version_named(self, tmp_path):
        array = np.arange(4, dtype=np.int64)
        path = tmp_path / "future.npz"
        write_npy_member(path, "odd", npy_v1_bytes(array, version=b"\x07\x00"))
        reader = MmapNpzReader(path)
        with pytest.raises(SerializationError, match=r"7\.0"):
            reader.read("odd")

    def test_not_npy_member_rejected(self, tmp_path):
        path = tmp_path / "junk_member.npz"
        with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as zf:
            zf.writestr("junk.npy", b"not numpy at all, definitely")
        with pytest.raises(SerializationError, match="not a .npy"):
            MmapNpzReader(path).read("junk")

    def test_truncated_header_rejected(self, tmp_path):
        array = np.arange(4, dtype=np.int64)
        raw = npy_v1_bytes(array)
        # Claim a header far longer than the stored bytes.
        truncated = raw[:8] + struct.pack("<H", 60000) + raw[10:]
        path = tmp_path / "torn.npz"
        write_npy_member(path, "torn", truncated)
        with pytest.raises(TruncatedArchiveError, match="header"):
            MmapNpzReader(path).read("torn")


class TestLazyEagerEquivalence:
    @pytest.mark.parametrize("version", GOLDEN_VERSIONS)
    def test_golden_archives(self, version, tmp_path):
        """Satellite: lazy == eager over every archived format version."""
        committed = golden_path(DATA_DIR, version)
        path = committed if committed.exists() else write_golden(tmp_path, version)
        eager = load_quantized_model(path)
        lazy = load_quantized_model(path, lazy=True)
        assert set(lazy.quantized) == set(eager.quantized)
        assert lazy.fc_names == eager.fc_names
        assert lazy.embedding_names == eager.embedding_names
        assert lazy.iterations == eager.iterations
        for name, expected in eager.quantized.items():
            tensor = lazy.quantized[name]
            assert tensor.shape == expected.shape
            assert tensor.bits == expected.bits
            assert bytes(tensor.packed_codes) == bytes(expected.packed_codes)
            np.testing.assert_array_equal(
                tensor.dequantize(np.float64), expected.dequantize(np.float64)
            )
        for name, expected in eager.fp32.items():
            np.testing.assert_array_equal(lazy.fp32[name], expected)

    def test_round_trip_micro_model(self, saved_archive):
        qmodel, path = saved_archive
        lazy = load_quantized_model(path, lazy=True)
        state = lazy.state_dict(dtype=np.float32)
        expected = load_quantized_model(path).state_dict(dtype=np.float32)
        assert set(state) == set(expected)
        for name in expected:
            np.testing.assert_array_equal(state[name], expected[name])

    def test_lazy_tensor_feeds_lookup_kernel(self, saved_archive):
        """Serving straight from the map: kernel over a lazy tensor."""
        _, path = saved_archive
        lazy = load_quantized_model(path, lazy=True)
        name = lazy.fc_names[0]
        tensor = lazy.quantized[name]
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, tensor.shape[1]))
        np.testing.assert_allclose(
            LookupKernel(tensor).matmul(x),
            dequantize_matmul(x, tensor),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_attach_quantized_linears_from_lazy_model(self, saved_archive):
        _, path = saved_archive
        lazy = load_quantized_model(path, lazy=True)
        model = attach_quantized_linears(BertModel(MICRO_CONFIG, rng=1), lazy)
        input_ids = np.random.default_rng(5).integers(0, MICRO_CONFIG.vocab_size, size=(1, 6))
        hidden, pooled = model(input_ids)
        assert hidden.shape == (1, 6, MICRO_CONFIG.hidden_size)
        assert np.isfinite(pooled.data).all()


class TestBytesTouched:
    def test_load_reads_only_metadata(self, saved_archive):
        """The defining property: the load itself touches index/meta/fp32,
        not the packed codes that dominate the archive."""
        _, path = saved_archive
        total = path.stat().st_size
        with obs.scope() as trace:
            lazy = load_quantized_model(path, lazy=True)
        touched = sum(
            e["value"] for e in trace.events if e["name"] == "npzmap.bytes_mapped"
        )
        assert 0 < touched < total / 2
        assert isinstance(lazy.quantized, LazyQuantizedTensors)

    def test_layer_access_is_counted_and_cached(self, saved_archive):
        _, path = saved_archive
        lazy = load_quantized_model(path, lazy=True)
        name = lazy.fc_names[0]
        with obs.scope() as trace:
            first = lazy.quantized[name]
            second = lazy.quantized[name]
        assert first is second
        decoded = [
            e for e in trace.events if e["name"] == "serialization.lazy_layers_decoded"
        ]
        assert len(decoded) == 1

    def test_unknown_layer_raises(self, saved_archive):
        _, path = saved_archive
        lazy = load_quantized_model(path, lazy=True)
        with pytest.raises(KeyError):
            lazy.quantized["encoder.99.bogus.weight"]
