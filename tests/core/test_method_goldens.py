"""Golden fixtures for the method zoo's archive layouts.

``tests/data/golden_method_{zeroshot,gwq,mixed}.npz`` are checked-in v3
archives built by ``scripts/make_golden_archives.py`` from hand-written
payloads (:mod:`repro.testing.golden`): a uniform-grid/clip-outlier tensor
(zeroshot), a saliency-positioned-outlier tensor (gwq), and two tensors at
different bit widths (mixed).  They pin the on-disk layouts the new methods
emit — any format drift breaks these loads before it breaks users' archives.
The classic ``golden_v{1,2,3}.npz`` back-compat locks live in
``test_golden_archives.py`` and must stay green alongside these.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.serialization import load_quantized_model, verify_archive
from repro.testing import golden

DATA_DIR = Path(__file__).resolve().parents[1] / "data"

pytestmark = pytest.mark.parametrize("method", golden.METHOD_GOLDENS)


def _path(method: str) -> Path:
    path = golden.method_golden_path(DATA_DIR, method)
    assert path.exists(), (
        f"missing golden fixture {path}; run scripts/make_golden_archives.py"
    )
    return path


def test_method_golden_is_valid_v3(method):
    check = verify_archive(_path(method))
    assert check.ok and check.status == "ok" and check.version == 3


def test_method_golden_loads_and_reconstructs(method):
    model = load_quantized_model(_path(method))
    expected = golden.expected_method_state(method)
    assert set(model.quantized) == set(golden.method_golden_tensors(method))
    state = model.state_dict(dtype=np.float64)
    assert set(state) == set(expected)
    for name, value in expected.items():
        np.testing.assert_array_equal(state[name], value, err_msg=name)


def test_method_golden_tensor_metadata(method):
    model = load_quantized_model(_path(method))
    for name, want in golden.method_golden_tensors(method).items():
        tensor = model.quantized[name]
        assert tensor.bits == want.bits, name
        assert tensor.shape == want.shape, name
        np.testing.assert_array_equal(tensor.centroids, want.centroids)
        np.testing.assert_array_equal(
            tensor.outlier_positions, want.outlier_positions
        )
        assert tensor.codes().tolist() == want.codes().tolist()


def test_mixed_golden_has_two_bit_widths(method):
    if method != "mixed":
        pytest.skip("width-mix property is specific to the mixed golden")
    model = load_quantized_model(_path(method))
    widths = {tensor.bits for tensor in model.quantized.values()}
    assert widths == {2, 3}


def test_regeneration_is_byte_identical(method, tmp_path):
    """The deterministic writer reproduces the committed fixture exactly."""
    regenerated = golden.write_method_golden(tmp_path, method)
    assert regenerated.read_bytes() == _path(method).read_bytes()
