"""Fault-injection tests: every failure policy, end-to-end, any worker count."""

import numpy as np
import pytest

from repro.core.model_quantizer import quantize_model, quantize_state_dict
from repro.core.parallel import (
    LayerJob,
    ON_ERROR_ENV,
    ON_ERROR_POLICIES,
    default_on_error,
    quantize_layers,
    resolve_on_error,
)
from repro.core.serialization import load_quantized_model, save_quantized_model
from repro.errors import QuantizationError
from repro.models.heads import BertForSequenceClassification
from repro.testing.faults import (
    InjectedFault,
    PoisonTensor,
    RaiseNth,
    RaiseOnLayer,
    compose_injectors,
)
from tests.conftest import MICRO_CONFIG

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def state():
    rng = np.random.default_rng(7)
    return {f"layer{i}": rng.normal(0, 0.05, size=(24, 24)) for i in range(6)}


@pytest.fixture(scope="module")
def jobs(state):
    return [LayerJob(name, 3) for name in state]


class TestOnErrorResolution:
    def test_default_is_fail(self, monkeypatch):
        monkeypatch.delenv(ON_ERROR_ENV, raising=False)
        assert resolve_on_error(None) == "fail"
        assert default_on_error() == "fail"

    def test_environment_read(self, monkeypatch):
        monkeypatch.setenv(ON_ERROR_ENV, "fp32-fallback")
        assert resolve_on_error(None) == "fp32-fallback"

    def test_bad_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(ON_ERROR_ENV, "explode")
        with pytest.raises(QuantizationError):
            default_on_error()

    def test_unknown_policy_rejected(self):
        with pytest.raises(QuantizationError, match="on_error"):
            resolve_on_error("panic")

    def test_policies_exported(self):
        assert ON_ERROR_POLICIES == ("fail", "skip", "fp32-fallback", "retry-higher-bits")


class TestFailureIsolation:
    def test_fail_policy_reraises(self, state, jobs):
        with pytest.raises(InjectedFault):
            quantize_layers(state, jobs, fault_injector=RaiseOnLayer("layer2"))

    def test_fail_policy_reraises_parallel(self, state, jobs):
        with pytest.raises(InjectedFault):
            quantize_layers(
                state, jobs, workers=3, fault_injector=RaiseOnLayer("layer2")
            )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_skip_drops_only_the_failing_layer(self, state, jobs, workers):
        quantized, iterations, report = quantize_layers(
            state, jobs, workers=workers,
            on_error="skip", fault_injector=RaiseOnLayer("layer2"),
        )
        assert sorted(quantized) == sorted(set(state) - {"layer2"})
        assert "layer2" not in iterations
        [failure] = report.failures
        assert failure.name == "layer2" and failure.action == "skip"
        assert failure.error_type == "InjectedFault"
        assert failure.dropped and not failure.quantized_anyway
        assert not report.ok

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_fp32_fallback_records_failure(self, state, jobs, workers):
        quantized, _, report = quantize_layers(
            state, jobs, workers=workers,
            on_error="fp32-fallback", fault_injector=RaiseOnLayer("layer4"),
        )
        assert "layer4" not in quantized
        [failure] = report.failures
        assert failure.action == "fp32-fallback" and not failure.dropped

    @pytest.mark.parametrize("failing", [f"layer{i}" for i in range(6)])
    def test_surviving_layers_bit_identical_to_clean_run(self, state, jobs, failing):
        """Acceptance: any single failing layer, every worker count, the
        remaining layers match a clean run bit for bit."""
        clean, clean_iters, _ = quantize_layers(state, jobs, workers=1)
        for workers in WORKER_COUNTS:
            quantized, iterations, report = quantize_layers(
                state, jobs, workers=workers,
                on_error="fp32-fallback", fault_injector=RaiseOnLayer(failing),
            )
            assert report.failed_layer_names == (failing,)
            assert sorted(quantized) == sorted(set(state) - {failing})
            for name, tensor in quantized.items():
                assert tensor.packed_codes == clean[name].packed_codes
                np.testing.assert_array_equal(tensor.centroids, clean[name].centroids)
                np.testing.assert_array_equal(
                    tensor.outlier_values, clean[name].outlier_values
                )
                assert iterations[name] == clean_iters[name]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_transient_fault_fails_exactly_once(self, state, jobs, workers):
        quantized, _, report = quantize_layers(
            state, jobs, workers=workers,
            on_error="skip", fault_injector=RaiseNth(nth=1, times=1),
        )
        assert len(report.failures) == 1
        assert len(quantized) == len(state) - 1

    def test_failure_order_follows_job_order(self, state, jobs):
        quantized, _, report = quantize_layers(
            state, jobs, workers=4, on_error="skip",
            fault_injector=compose_injectors(
                RaiseOnLayer("layer1"), RaiseOnLayer("layer5")
            ),
        )
        assert report.failed_layer_names == ("layer1", "layer5")

    def test_render_includes_failures(self, state, jobs):
        _, _, report = quantize_layers(
            state, jobs, on_error="fp32-fallback",
            fault_injector=RaiseOnLayer("layer0"),
        )
        text = report.render()
        assert "Layer failures" in text and "fp32-fallback" in text
        assert "InjectedFault" in text


class TestRetryHigherBits:
    def test_recovers_at_wider_width(self, state):
        # bits=0 genuinely fails (bits must be >= 1); the first retry at 1
        # succeeds, so the layer ships quantized — wider than requested.
        jobs = [LayerJob("layer0", 0), LayerJob("layer1", 3)]
        quantized, _, report = quantize_layers(
            state, jobs, on_error="retry-higher-bits"
        )
        assert quantized["layer0"].bits == 1
        [failure] = report.failures
        assert failure.action == "retry-higher-bits"
        assert failure.recovered_bits == 1
        assert failure.attempts == (0, 1)
        assert failure.quantized_anyway

    def test_persistent_fault_exhausts_retries_to_fp32(self, state, jobs):
        quantized, _, report = quantize_layers(
            state, jobs, on_error="retry-higher-bits",
            fault_injector=RaiseOnLayer("layer3"),
        )
        assert "layer3" not in quantized
        [failure] = report.failures
        assert failure.action == "fp32-fallback"
        assert failure.recovered_bits is None
        assert failure.attempts == (3, 4, 5, 6, 7, 8)


class TestPoisonedTensors:
    @pytest.mark.parametrize("mode", ["nan", "inf", "constant"])
    def test_strict_validation_fails_poisoned_layer(self, state, jobs, mode):
        quantized, _, report = quantize_layers(
            state, jobs, on_error="fp32-fallback",
            fault_injector=PoisonTensor("layer1", mode=mode),
        )
        assert "layer1" not in quantized
        [failure] = report.failures
        assert failure.error_type in ("NonFiniteWeightError", "DegenerateTensorError")

    def test_repair_validation_recovers_poisoned_layer(self, state, jobs):
        quantized, _, report = quantize_layers(
            state, jobs, validation="repair",
            fault_injector=PoisonTensor("layer1", mode="nan"),
        )
        assert report.ok and len(quantized) == len(state)
        assert np.isfinite(quantized["layer1"].dequantize(np.float64)).all()

    def test_skip_validation_ships_layer_fp32(self, state, jobs):
        quantized, _, report = quantize_layers(
            state, jobs, validation="skip",
            fault_injector=PoisonTensor("layer1", mode="nan"),
        )
        assert "layer1" not in quantized
        [failure] = report.failures
        assert failure.action == "validation-skip"


class TestEndToEndModel:
    """Acceptance: a degraded run still produces a loadable archive."""

    @pytest.fixture(scope="class")
    def model(self):
        return BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=0)

    def test_fp32_fallback_model_round_trips(self, model, tmp_path):
        clean = quantize_model(model, weight_bits=3, embedding_bits=4)
        failing_layer = clean.fc_names[2]
        degraded = quantize_model(
            model, weight_bits=3, embedding_bits=4,
            on_error="fp32-fallback", fault_injector=RaiseOnLayer(failing_layer),
        )
        assert degraded.report.failed_layer_names == (failing_layer,)
        # The failed layer ships FP32 and the state dict stays complete.
        assert failing_layer in degraded.fp32
        assert set(degraded.state_dict()) == set(clean.state_dict())
        # Remaining quantized layers are bit-identical to the clean run.
        for name, tensor in degraded.quantized.items():
            assert tensor.packed_codes == clean.quantized[name].packed_codes
        # The archive round-trips and applies to a fresh model.
        path = tmp_path / "degraded.npz"
        save_quantized_model(degraded, path)
        loaded = load_quantized_model(path)
        probe = BertForSequenceClassification(MICRO_CONFIG, num_labels=3, rng=1)
        loaded.apply_to(probe)
        np.testing.assert_array_equal(
            probe.state_dict()[failing_layer],
            np.asarray(model.state_dict()[failing_layer], dtype=np.float32).astype(np.float64),
        )

    def test_skip_policy_drops_layer_from_state_dict(self, model):
        clean = quantize_model(model, weight_bits=3, embedding_bits=4)
        failing_layer = clean.fc_names[0]
        degraded = quantize_model(
            model, weight_bits=3, embedding_bits=4,
            on_error="skip", fault_injector=RaiseOnLayer(failing_layer),
        )
        assert failing_layer not in degraded.state_dict()
        assert failing_layer not in degraded.fp32

    def test_state_dict_interface_forwards_policies(self, model, monkeypatch):
        monkeypatch.setenv(ON_ERROR_ENV, "fp32-fallback")
        state = model.state_dict()
        from repro.core.model_quantizer import select_parameters

        selection = select_parameters(model)
        quantized = quantize_state_dict(
            state, fc_names=selection.fc_names, embedding_names=(),
            on_error=None,  # defer to REPRO_ON_ERROR
            fault_injector=RaiseOnLayer(selection.fc_names[1]),
        )
        assert quantized.report.on_error == "fp32-fallback"
        assert len(quantized.report.failures) == 1


class TestFaultSpecs:
    """Text fault specs (REPRO_FAULTS) build the right injectors."""

    def test_empty_spec_is_none(self):
        from repro.testing.faults import injector_from_env, injector_from_spec

        assert injector_from_spec("") is None
        assert injector_from_spec("  ,  ") is None
        assert injector_from_env("REPRO_FAULTS_UNSET_FOR_TEST") is None

    def test_single_specs(self):
        from repro.testing.faults import (
            CrashOnCall,
            HangOnLayer,
            PoisonTensor,
            RaiseOnLayer,
            SlowLayer,
            TransientIOFault,
            injector_from_spec,
        )

        assert isinstance(injector_from_spec("raise:layer0"), RaiseOnLayer)
        assert injector_from_spec("raise:2").layer == 2
        hang = injector_from_spec("hang:emb.word")
        assert isinstance(hang, HangOnLayer) and hang.layer == "emb.word"
        slow = injector_from_spec("slow:0.25")
        assert isinstance(slow, SlowLayer)
        assert slow.seconds == 0.25 and slow.layer is None
        assert injector_from_spec("slow:0.1:3").layer == 3
        tio = injector_from_spec("transient-io:layer1:2")
        assert isinstance(tio, TransientIOFault)
        assert tio.layer == "layer1" and tio.times == 2
        assert injector_from_spec("transient-io:0").times == 1
        crash = injector_from_spec("crash:4")
        assert isinstance(crash, CrashOnCall) and crash.nth == 4
        poison = injector_from_spec("poison:layer2:inf")
        assert isinstance(poison, PoisonTensor) and poison.mode == "inf"

    def test_composed_spec(self):
        import numpy as np

        from repro.core.parallel import LayerJob
        from repro.testing.faults import InjectedIOError, injector_from_spec

        injector = injector_from_spec("transient-io:a:1, poison:b:constant")
        weights = np.ones((4, 4))
        with pytest.raises(InjectedIOError):
            injector(0, LayerJob("a", 3), weights)
        poisoned = injector(1, LayerJob("b", 3), weights)
        assert poisoned is not None and np.all(poisoned == 0.5)
        assert injector(2, LayerJob("c", 3), weights) is None

    def test_bad_specs_rejected(self):
        from repro.testing.faults import injector_from_spec

        for bad in ("explode:1", "crash", "crash:soon", "slow", "hang"):
            with pytest.raises(ValueError):
                injector_from_spec(bad)

    def test_env_spec_errors_surface(self, monkeypatch):
        from repro.testing.faults import FAULTS_ENV, injector_from_env

        monkeypatch.setenv(FAULTS_ENV, "bogus:x")
        with pytest.raises(ValueError):
            injector_from_env()
