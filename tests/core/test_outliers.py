"""Tests for Gaussian outlier detection."""

import numpy as np
import pytest

from repro.core.outliers import DEFAULT_LOG_PROB_THRESHOLD, OutlierDetector
from repro.models.zoo import SyntheticWeightSpec, synthetic_layer_weights


@pytest.fixture
def gaussian_with_fringe(rng):
    weights = rng.normal(0, 0.04, size=100000)
    fringe = rng.choice(100000, size=100, replace=False)
    weights[fringe] = 0.4 * np.sign(rng.normal(size=100))
    return weights, fringe


class TestSplit:
    def test_detects_planted_fringe(self, gaussian_with_fringe):
        weights, fringe = gaussian_with_fringe
        split = OutlierDetector().split(weights)
        assert set(fringe).issubset(set(np.flatnonzero(split.outlier_mask)))

    def test_outlier_fraction_near_paper_value(self, gaussian_with_fringe):
        """The paper reports ~0.1% outliers at threshold -4."""
        weights, _ = gaussian_with_fringe
        fraction = OutlierDetector().split(weights).outlier_fraction
        assert 0.0005 < fraction < 0.005

    def test_pure_gaussian_has_tiny_fraction(self, rng):
        # At BERT-like weight scales (sigma ~0.04) the -4 threshold keeps
        # only the far tail, matching the paper's ~0.1% outliers.
        split = OutlierDetector().split(rng.normal(0, 0.04, size=200000))
        assert split.outlier_fraction < 0.002

    def test_threshold_is_scale_aware(self, rng):
        # The log-pdf threshold includes -log(sigma): wider distributions
        # admit more of their tail, matching Eq. 1 applied verbatim.
        narrow = OutlierDetector().split(rng.normal(0, 0.04, 100000)).outlier_fraction
        wide = OutlierDetector().split(rng.normal(0, 1.0, 100000)).outlier_fraction
        assert wide > narrow

    def test_mask_shape_matches_input(self, rng):
        weights = rng.normal(size=(32, 16))
        assert OutlierDetector().split(weights).outlier_mask.shape == (32, 16)

    def test_group_accessors_partition(self, gaussian_with_fringe):
        weights, _ = gaussian_with_fringe
        split = OutlierDetector().split(weights)
        assert split.gaussian_values(weights).size + split.outlier_values(weights).size == weights.size
        assert split.outlier_count == split.outlier_values(weights).size

    def test_outliers_have_larger_magnitude(self, gaussian_with_fringe):
        weights, _ = gaussian_with_fringe
        split = OutlierDetector().split(weights)
        assert np.abs(split.outlier_values(weights)).min() > np.abs(
            split.gaussian_values(weights)
        ).max() * 0.9

    def test_default_threshold(self):
        assert OutlierDetector().log_prob_threshold == DEFAULT_LOG_PROB_THRESHOLD == -4.0


class TestThresholdBehaviour:
    def test_lower_threshold_fewer_outliers(self, gaussian_with_fringe):
        weights, _ = gaussian_with_fringe
        loose = OutlierDetector(-6.0).split(weights).outlier_count
        strict = OutlierDetector(-3.0).split(weights).outlier_count
        assert loose < strict

    def test_synthetic_layer_matches_spec(self):
        spec = SyntheticWeightSpec(outlier_fraction=0.002)
        weights = synthetic_layer_weights((400, 400), spec, rng=0)
        fraction = OutlierDetector().split(weights).outlier_fraction
        assert fraction == pytest.approx(0.002, rel=0.5)


class TestMagnitudeCutoff:
    def test_cutoff_separates_groups(self, gaussian_with_fringe):
        weights, _ = gaussian_with_fringe
        detector = OutlierDetector()
        split = detector.split(weights)
        cutoff = detector.magnitude_cutoff(weights)
        mean = split.fit.mean
        outlier_dist = np.abs(split.outlier_values(weights) - mean)
        gaussian_dist = np.abs(split.gaussian_values(weights) - mean)
        assert outlier_dist.min() >= cutoff * 0.999
        assert gaussian_dist.max() <= cutoff * 1.001

    def test_cutoff_scales_with_std(self, rng):
        detector = OutlierDetector()
        narrow = detector.magnitude_cutoff(rng.normal(0, 0.01, 10000))
        wide = detector.magnitude_cutoff(rng.normal(0, 0.1, 10000))
        assert wide > narrow * 5
