"""Observability must never perturb results.

The hard guarantee of ISSUE 4: quantized output is bit-identical with
tracing off, tracing on, 1 worker or 4 — and the traces themselves are
identical modulo timestamps/durations (and the ``engine.workers`` gauge,
the one event whose payload intentionally encodes the worker count).
Archive comparisons are raw byte comparisons, which the deterministic zip
writer makes meaningful.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.model_quantizer import quantize_state_dict
from repro.core.serialization import save_quantized_model
from repro.utils.rng import derive_rng

FC_NAMES = ("layer0.weight", "layer1.weight", "layer2.weight")
EMB_NAMES = ("embeddings.word",)


@pytest.fixture(scope="module")
def state():
    rng = derive_rng(99, "obs-determinism")
    state = {name: rng.normal(0.0, 0.04, size=(24, 24)) for name in FC_NAMES}
    state[EMB_NAMES[0]] = rng.normal(0.0, 0.05, size=(48, 16))
    state["passthrough.bias"] = rng.normal(0.0, 0.01, size=24)
    return state


def _run(state, tmp_path, tag: str, workers: int, traced: bool):
    """One quantization run; returns (archive bytes, trace events)."""
    sink = obs.MemorySink()
    path = tmp_path / f"{tag}.npz"
    if traced:
        obs.install(sink)
    try:
        model = quantize_state_dict(
            state, fc_names=FC_NAMES, embedding_names=EMB_NAMES,
            weight_bits=3, embedding_bits=4, workers=workers,
        )
        save_quantized_model(model, path)
    finally:
        if traced:
            obs.uninstall(sink)
    return path.read_bytes(), sink.events


def test_archives_bit_identical_across_tracing_and_workers(state, tmp_path):
    baseline, _ = _run(state, tmp_path, "w1-off", workers=1, traced=False)
    for tag, workers, traced in [
        ("w4-off", 4, False),
        ("w1-on", 1, True),
        ("w4-on", 4, True),
    ]:
        archive, _ = _run(state, tmp_path, tag, workers=workers, traced=traced)
        assert archive == baseline, f"archive for {tag} diverged from workers=1 untraced"


def test_traces_identical_modulo_timing(state, tmp_path):
    _, events_1 = _run(state, tmp_path, "t1", workers=1, traced=True)
    _, events_4 = _run(state, tmp_path, "t4", workers=4, traced=True)
    assert events_1 and events_4
    assert not obs.validate_events(events_1)
    assert not obs.validate_events(events_4)
    canonical_1 = obs.canonical_events(events_1, exclude_names=["engine.workers"])
    canonical_4 = obs.canonical_events(events_4, exclude_names=["engine.workers"])
    assert canonical_1 == canonical_4


def test_repeated_run_trace_is_stable(state, tmp_path):
    """Same inputs, same worker count -> the canonical trace is reproducible."""
    _, first = _run(state, tmp_path, "r1", workers=2, traced=True)
    _, second = _run(state, tmp_path, "r2", workers=2, traced=True)
    assert obs.canonical_events(first) == obs.canonical_events(second)


def test_report_metrics_snapshot_populated_without_sinks(state, tmp_path):
    """The engine's metrics snapshot works with tracing off entirely."""
    model = quantize_state_dict(
        state, fc_names=FC_NAMES, embedding_names=EMB_NAMES,
        weight_bits=3, embedding_bits=4, workers=2,
    )
    metrics = model.report.metrics
    layer_count = len(FC_NAMES) + len(EMB_NAMES)
    assert metrics.span("engine.run").count == 1
    assert metrics.span("engine.layer").count == layer_count
    assert metrics.counter("engine.layers.quantized") == layer_count
    assert metrics.gauge("engine.queue.jobs") == layer_count
    assert metrics.gauge("engine.workers") == 2
    histogram = metrics.histogram("quantize.outlier_fraction")
    assert histogram.count == layer_count
    assert 0.0 <= histogram.mean < 0.05
    # Span-derived wall time and the report's wall time come from the same
    # span, so they can no longer disagree.
    assert metrics.span("engine.run").total_seconds == model.report.wall_seconds
    layer_total = metrics.span("engine.layer").total_seconds
    assert layer_total == pytest.approx(model.report.layer_seconds)


def test_trace_events_schema_valid_and_complete(state, tmp_path):
    _, events = _run(state, tmp_path, "schema", workers=2, traced=True)
    assert not obs.validate_events(events)
    names = {event["name"] for event in events}
    assert {"engine.run", "engine.layer", "quantize.tensor", "clustering.l1",
            "serialization.bytes_written", "model.compression_ratio"} <= names
    layer_spans = [
        e for e in events if e["event"] == "span" and e["name"] == "engine.layer"
    ]
    assert {span["attrs"]["layer"] for span in layer_spans} == set(FC_NAMES) | set(EMB_NAMES)
    for span in layer_spans:
        assert span["attrs"]["iterations"] >= 1
        assert span["parent"] == "engine.run"


def test_dequantized_output_identical_with_tracing(state):
    with obs.scope():
        traced = quantize_state_dict(state, fc_names=FC_NAMES, weight_bits=3,
                                     embedding_bits=None, workers=4)
    plain = quantize_state_dict(state, fc_names=FC_NAMES, weight_bits=3,
                                embedding_bits=None, workers=1)
    for name in FC_NAMES:
        np.testing.assert_array_equal(
            traced.quantized[name].dequantize(dtype=np.float64),
            plain.quantized[name].dequantize(dtype=np.float64),
        )
        assert traced.quantized[name].packed_codes == plain.quantized[name].packed_codes
