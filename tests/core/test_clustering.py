"""Tests for GOBO's L1 iteration vs the K-Means baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import gobo_cluster, kmeans_cluster
from repro.errors import QuantizationError


@pytest.fixture(scope="module")
def gaussian_values():
    return np.random.default_rng(0).normal(0, 0.04, size=50000)


class TestGoboCluster:
    def test_converges_quickly(self, gaussian_values):
        """The paper: ~7 iterations suffice for 3-bit quantization."""
        result = gobo_cluster(gaussian_values, 3)
        assert result.converged
        assert result.iterations <= 12

    def test_l1_never_below_final(self, gaussian_values):
        result = gobo_cluster(gaussian_values, 3)
        assert result.l1_norm() == min(result.trace.l1_norms)

    def test_l1_improves_over_init(self, gaussian_values):
        result = gobo_cluster(gaussian_values, 3)
        assert result.l1_norm() < result.trace.l1_norms[0]

    def test_centroids_sorted(self, gaussian_values):
        result = gobo_cluster(gaussian_values, 3)
        assert np.all(np.diff(result.centroids) >= 0)

    def test_assignment_valid(self, gaussian_values):
        result = gobo_cluster(gaussian_values, 2)
        assert result.assignment.min() >= 0
        assert result.assignment.max() < 4
        assert result.assignment.size == gaussian_values.size

    def test_respects_initial_centroids(self, gaussian_values):
        init = np.array([-0.1, -0.01, 0.01, 0.1])
        result = gobo_cluster(gaussian_values, 2, initial_centroids=init)
        assert result.iterations >= 1

    def test_wrong_initial_centroid_count_rejected(self, gaussian_values):
        with pytest.raises(QuantizationError):
            gobo_cluster(gaussian_values, 3, initial_centroids=np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            gobo_cluster(np.array([]), 3)

    def test_invalid_bits_rejected(self, gaussian_values):
        with pytest.raises(QuantizationError):
            gobo_cluster(gaussian_values, 0)
        with pytest.raises(QuantizationError):
            gobo_cluster(gaussian_values, 9)

    def test_constant_input(self):
        result = gobo_cluster(np.full(100, 1.5), 2)
        assert result.l1_norm() == pytest.approx(0.0)

    def test_fewer_values_than_clusters(self):
        result = gobo_cluster(np.array([1.0, 2.0, 3.0]), 3)
        assert result.l1_norm() == pytest.approx(0.0)


class TestKmeansCluster:
    def test_runs_to_assignment_fixpoint(self, gaussian_values):
        result = kmeans_cluster(gaussian_values, 3)
        assert result.converged

    def test_l2_nonincreasing(self, gaussian_values):
        result = kmeans_cluster(gaussian_values, 3)
        l2 = result.trace.l2_norms
        assert all(b <= a + 1e-9 for a, b in zip(l2, l2[1:]))

    def test_max_iterations_exhausted_not_converged(self, gaussian_values):
        """Budget too small to reach the assignment fixpoint: the run stops,
        reports converged=False, and still returns usable state."""
        result = kmeans_cluster(gaussian_values, 3, max_iterations=1)
        assert not result.converged
        assert result.iterations == 2  # init + the single allowed update
        assert result.centroids.size == 8
        assert result.assignment.size == gaussian_values.size
        assert result.final_l1 == result.trace.l1_norms[-1]

    def test_non_converged_still_improves_over_init(self, gaussian_values):
        result = kmeans_cluster(gaussian_values, 3, max_iterations=2)
        assert not result.converged
        assert result.trace.l2_norms[-1] < result.trace.l2_norms[0]


class TestPaperClaims:
    """The comparative claims of Section IV-B and Figure 2."""

    def test_gobo_converges_much_faster(self, gaussian_values):
        gobo = gobo_cluster(gaussian_values, 3)
        kmeans = kmeans_cluster(gaussian_values, 3)
        assert kmeans.iterations >= 4 * gobo.iterations

    def test_gobo_final_l1_not_worse(self, gaussian_values):
        gobo = gobo_cluster(gaussian_values, 3)
        kmeans = kmeans_cluster(gaussian_values, 3)
        assert gobo.l1_norm() <= kmeans.l1_norm() + 1e-9

    def test_same_init_same_first_iteration(self, gaussian_values):
        gobo = gobo_cluster(gaussian_values, 3)
        kmeans = kmeans_cluster(gaussian_values, 3)
        assert gobo.trace.l1_norms[0] == pytest.approx(kmeans.trace.l1_norms[0])

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_more_bits_lower_l1(self, gaussian_values, bits):
        coarse = gobo_cluster(gaussian_values, bits).l1_norm()
        fine = gobo_cluster(gaussian_values, bits + 1).l1_norm()
        assert fine < coarse

    @given(st.integers(min_value=0, max_value=10000))
    @settings(max_examples=20, deadline=None)
    def test_gobo_trajectory_is_kmeans_prefix(self, seed):
        """Same init + same updates: GOBO walks K-Means' trajectory and
        returns the minimum-L1 point of the prefix it visited."""
        values = np.random.default_rng(seed).normal(size=2000)
        gobo = gobo_cluster(values, 3)
        kmeans = kmeans_cluster(values, 3)
        overlap = min(gobo.trace.iterations, kmeans.trace.iterations)
        np.testing.assert_allclose(
            gobo.trace.l1_norms[:overlap], kmeans.trace.l1_norms[:overlap]
        )
        assert gobo.l1_norm() == pytest.approx(min(gobo.trace.l1_norms))


class TestTrace:
    def test_as_series(self, gaussian_values):
        result = gobo_cluster(gaussian_values, 2)
        series = result.trace.as_series()
        assert len(series) == result.trace.iterations
        iteration, l1, l2 = series[0]
        assert iteration == 0 and l1 > 0 and l2 > 0
